//! # mcmm-model-kokkos — a Kokkos-style frontend
//!
//! Kokkos (descriptions 13, 14, 28, 42) is the community performance-
//! portability ecosystem: `View`s carry data with a memory layout,
//! execution spaces select a backend, and `parallel_for` /
//! `parallel_reduce` / `parallel_scan` express the algorithms. The
//! frontend mirrors that shape:
//!
//! * [`ExecSpace`] — the backend: CUDA / NVHPC / Clang on NVIDIA, HIP /
//!   OpenMP-offload on AMD, the **experimental** SYCL backend on Intel
//!   (description 42 — constructing it works, but the route's efficiency
//!   penalty applies and [`ExecSpace::is_experimental`] reports it).
//! * [`View`] — device data with [`Layout`] (Left = column-major like
//!   Fortran, Right = row-major like C) governing 2-D index linearisation.
//! * [`flcl`] — the Fortran Language Compatibility Layer of description
//!   14: a thin Fortran-convention wrapper (1-based indices).

use mcmm_core::provider::Maintenance;
use mcmm_core::taxonomy::{Language, Model, Vendor};
use mcmm_frontend::{Element, ExecutionSession, Frontend, FrontendError};
use mcmm_gpu_sim::device::{Device, KernelArg};
use mcmm_gpu_sim::ir::{AtomicOp, KernelBuilder, Reg, Type};
use mcmm_gpu_sim::mem::DevicePtr;
use std::fmt;
use std::sync::Arc;

pub use mcmm_gpu_sim::ir::{BinOp, CmpOp, Space, UnOp, Value};

/// Kokkos errors.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings are fully specified per variant
pub enum KokkosError {
    /// No Kokkos backend for this device/language.
    NoBackend { vendor: Vendor, language: Language },
    /// Runtime failure.
    Runtime(String),
}

impl fmt::Display for KokkosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KokkosError::NoBackend { vendor, language } => {
                write!(f, "Kokkos has no {language} backend for {vendor} GPUs")
            }
            KokkosError::Runtime(m) => write!(f, "kokkos: {m}"),
        }
    }
}

impl std::error::Error for KokkosError {}

/// Result alias.
pub type KokkosResult<T> = Result<T, KokkosError>;

/// Memory layout of a rank-2 view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Column-major (`LayoutLeft`, Fortran order) — the GPU default.
    Left,
    /// Row-major (`LayoutRight`, C order).
    Right,
}

/// A Kokkos execution space: device + selected backend route.
pub struct ExecSpace {
    session: ExecutionSession,
}

fn open_error(e: FrontendError) -> KokkosError {
    match e {
        FrontendError::NoRoute { vendor, language, .. } => {
            KokkosError::NoBackend { vendor, language }
        }
        FrontendError::Discontinued { vendor, .. } => {
            KokkosError::NoBackend { vendor, language: Language::Cpp }
        }
        other => KokkosError::Runtime(other.to_string()),
    }
}

impl ExecSpace {
    /// `Kokkos::DefaultExecutionSpace` — the best backend for the device.
    pub fn new(device: Arc<Device>) -> KokkosResult<Self> {
        Self::with_language(device, Language::Cpp)
    }

    fn with_language(device: Arc<Device>, language: Language) -> KokkosResult<Self> {
        let session =
            ExecutionSession::open_on(device, Model::Kokkos, language).map_err(open_error)?;
        Ok(Self { session })
    }

    /// The shared execution session underneath this space.
    pub fn session(&self) -> &ExecutionSession {
        &self.session
    }

    /// The backend toolchain name.
    pub fn backend(&self) -> &'static str {
        self.session.toolchain()
    }

    /// Is the backend experimental (description 42: Intel's SYCL backend)?
    pub fn is_experimental(&self) -> bool {
        self.session.route().maintenance == Maintenance::Experimental
    }

    /// Route efficiency.
    pub fn efficiency(&self) -> f64 {
        self.session.efficiency()
    }

    fn run(
        &self,
        n: usize,
        views: &[DevicePtr],
        extra: &[KernelArg],
        body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]),
    ) -> KokkosResult<()> {
        let mut b = KernelBuilder::new("kokkos_parallel");
        let bases: Vec<Reg> = views.iter().map(|_| b.param(Type::I64)).collect();
        for a in extra {
            match a {
                KernelArg::Ptr(_) | KernelArg::I64(_) => b.param(Type::I64),
                KernelArg::I32(_) => b.param(Type::I32),
                KernelArg::F32(_) => b.param(Type::F32),
                KernelArg::F64(_) => b.param(Type::F64),
            };
        }
        let n_param = b.param(Type::I32);
        let i = b.global_thread_id_x();
        let ok = b.cmp(CmpOp::Lt, i, n_param);
        let mut f = Some(body);
        let bases_ref = &bases;
        b.if_(ok, |b| {
            if let Some(f) = f.take() {
                f(b, i, bases_ref);
            }
        });
        let kernel = b.finish();
        let mut args: Vec<KernelArg> = views.iter().map(|&p| KernelArg::Ptr(p)).collect();
        args.extend_from_slice(extra);
        args.push(KernelArg::I32(n as i32));
        self.session
            .run(&kernel, n as u64, 256, &args)
            .map(|_| ())
            .map_err(|e| KokkosError::Runtime(e.to_string()))
    }

    /// `Kokkos::parallel_for(RangePolicy(0, n), functor)`.
    pub fn parallel_for(
        &self,
        n: usize,
        views: &[&View],
        body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]),
    ) -> KokkosResult<()> {
        let ptrs: Vec<DevicePtr> = views.iter().map(|v| v.ptr).collect();
        self.run(n, &ptrs, &[], body)
    }

    /// `Kokkos::parallel_reduce` with a sum reducer.
    pub fn parallel_reduce_sum(
        &self,
        n: usize,
        views: &[&View],
        body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]) -> Reg,
    ) -> KokkosResult<f64> {
        let cell = self.session.alloc_bytes(8).map_err(|e| KokkosError::Runtime(e.to_string()))?;
        self.session
            .device()
            .memory()
            .store(cell.0, Value::F64(0.0))
            .map_err(|e| KokkosError::Runtime(e.to_string()))?;
        let ptrs: Vec<DevicePtr> = views.iter().map(|v| v.ptr).collect();
        let nviews = ptrs.len();
        self.run(n, &ptrs, &[KernelArg::Ptr(cell)], |b, i, bases| {
            let contribution = body(b, i, bases);
            let cell_reg = Reg(nviews as u16); // param right after the views
            let _ = b.atomic(AtomicOp::Add, Space::Global, cell_reg, contribution);
        })?;
        let out = self
            .session
            .device()
            .memory()
            .load(Type::F64, cell.0)
            .map_err(|e| KokkosError::Runtime(e.to_string()))?;
        self.session.free_bytes(cell, 8);
        match out {
            Value::F64(x) => Ok(x),
            _ => unreachable!("reduction cell is f64"),
        }
    }

    /// Create a rank-1 view from host data.
    pub fn view_from_host(&self, label: &'static str, data: &[f64]) -> KokkosResult<View> {
        let ptr = self.alloc_upload(data)?;
        Ok(View { label, ptr, dims: [data.len(), 1], layout: Layout::Left })
    }

    fn alloc_upload(&self, data: &[f64]) -> KokkosResult<DevicePtr> {
        let ptr = self
            .session
            .alloc_bytes((data.len() * f64::BYTES) as u64)
            .map_err(|e| KokkosError::Runtime(e.to_string()))?;
        self.session.upload_raw(ptr, data).map_err(|e| KokkosError::Runtime(e.to_string()))?;
        Ok(ptr)
    }

    /// Create a zero-filled rank-2 view.
    pub fn view_2d(
        &self,
        label: &'static str,
        rows: usize,
        cols: usize,
        layout: Layout,
    ) -> KokkosResult<View> {
        let ptr = self.alloc_upload(&vec![0.0; rows * cols])?;
        Ok(View { label, ptr, dims: [rows, cols], layout })
    }

    /// `deep_copy` back to the host.
    pub fn deep_copy_to_host(&self, view: &View) -> KokkosResult<Vec<f64>> {
        self.session
            .download_raw::<f64>(view.ptr, view.dims[0] * view.dims[1])
            .map_err(|e| KokkosError::Runtime(e.to_string()))
    }
}

/// [`Frontend`] registration for the shared BabelStream adapter.
pub struct KokkosFrontend;

impl Frontend for KokkosFrontend {
    fn model(&self) -> Model {
        Model::Kokkos
    }

    fn open(&self, vendor: Vendor) -> Result<ExecutionSession, FrontendError> {
        ExecutionSession::open(Model::Kokkos, Language::Cpp, vendor)
    }
}

/// A Kokkos view: labeled device data with layout.
pub struct View {
    /// Kokkos views carry a human-readable label.
    pub label: &'static str,
    ptr: DevicePtr,
    dims: [usize; 2],
    layout: Layout,
}

impl View {
    /// Extent along a rank.
    pub fn extent(&self, rank: usize) -> usize {
        self.dims[rank]
    }

    /// Emit the linearised index of `(i, j)` under this view's layout.
    pub fn index_2d(&self, b: &mut KernelBuilder, i: Reg, j: Reg) -> Reg {
        match self.layout {
            Layout::Left => {
                // column-major: i + j*rows
                let rows = b.imm(Value::I32(self.dims[0] as i32));
                let jr = b.bin(BinOp::Mul, j, rows);
                b.bin(BinOp::Add, i, jr)
            }
            Layout::Right => {
                // row-major: i*cols + j
                let cols = b.imm(Value::I32(self.dims[1] as i32));
                let ic = b.bin(BinOp::Mul, i, cols);
                b.bin(BinOp::Add, ic, j)
            }
        }
    }
}

/// The Fortran Language Compatibility Layer (description 14).
pub mod flcl {
    use super::*;

    /// Bind the FLCL for a device: resolves the Kokkos *Fortran* route
    /// (rated "limited" in the paper — a compatibility layer, not a
    /// Fortran Kokkos).
    pub fn exec_space(device: Arc<Device>) -> KokkosResult<ExecSpace> {
        ExecSpace::with_language(device, Language::Fortran)
    }

    /// Fortran-style `parallel_for` over `1..=n` (1-based indices).
    pub fn parallel_for_1based(
        space: &ExecSpace,
        n: usize,
        views: &[&View],
        body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]),
    ) -> KokkosResult<()> {
        space.parallel_for(n, views, |b, i0, bases| {
            let i = b.bin(BinOp::Add, i0, Value::I32(1));
            body(b, i, bases);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmm_gpu_sim::DeviceSpec;

    #[test]
    fn parallel_for_on_all_three_vendors() {
        // §6: "Kokkos and Alpaka … support all three platform[s]" (Intel
        // via the experimental SYCL backend).
        for spec in DeviceSpec::presets() {
            let name = spec.name;
            let space = ExecSpace::new(Device::new(spec)).unwrap();
            let v = space.view_from_host("v", &vec![1.0; 256]).unwrap();
            space
                .parallel_for(256, &[&v], |b, i, bases| {
                    let x = b.ld_elem(Space::Global, Type::F64, bases[0], i);
                    let y = b.bin(BinOp::Mul, x, Value::F64(7.0));
                    b.st_elem(Space::Global, bases[0], i, y);
                })
                .unwrap();
            let out = space.deep_copy_to_host(&v).unwrap();
            assert!(out.iter().all(|&x| x == 7.0), "{name}");
        }
    }

    #[test]
    fn backends_match_descriptions() {
        let nv = ExecSpace::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        assert_eq!(nv.backend(), "Kokkos CUDA backend (nvcc)");
        assert!(!nv.is_experimental());
        let amd = ExecSpace::new(Device::new(DeviceSpec::amd_mi250x())).unwrap();
        assert_eq!(amd.backend(), "Kokkos HIP backend");
        // Description 42: Intel only through the experimental SYCL backend.
        let intel = ExecSpace::new(Device::new(DeviceSpec::intel_pvc())).unwrap();
        assert_eq!(intel.backend(), "Kokkos SYCL backend (experimental)");
        assert!(intel.is_experimental());
        assert!(intel.efficiency() < nv.efficiency());
    }

    #[test]
    fn parallel_reduce_sum() {
        let space = ExecSpace::new(Device::new(DeviceSpec::amd_mi250x())).unwrap();
        let data: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let v = space.view_from_host("data", &data).unwrap();
        let sum = space
            .parallel_reduce_sum(500, &[&v], |b, i, bases| {
                b.ld_elem(Space::Global, Type::F64, bases[0], i)
            })
            .unwrap();
        assert_eq!(sum, data.iter().sum::<f64>());
    }

    #[test]
    fn layout_left_vs_right() {
        let space = ExecSpace::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        for layout in [Layout::Left, Layout::Right] {
            let m = space.view_2d("m", 4, 8, layout).unwrap();
            // Write m(i, j) = 10*i + j over the flattened 32 elements.
            space
                .parallel_for(32, &[&m], |b, lin, bases| {
                    // i = lin % 4, j = lin / 4
                    let four = b.imm(Value::I32(4));
                    let i = b.bin(BinOp::Rem, lin, four);
                    let j = b.bin(BinOp::Div, lin, four);
                    let idx = m.index_2d(b, i, j);
                    let ten = b.imm(Value::I32(10));
                    let v0 = b.bin(BinOp::Mul, i, ten);
                    let v1 = b.bin(BinOp::Add, v0, j);
                    let v = b.cvt(Type::F64, v1);
                    b.st_elem(Space::Global, bases[0], idx, v);
                })
                .unwrap();
            let host = space.deep_copy_to_host(&m).unwrap();
            // Check a couple of positions according to the layout.
            match layout {
                Layout::Left => {
                    // element (i=2, j=3) lives at 2 + 3*4 = 14
                    assert_eq!(host[14], 23.0);
                }
                Layout::Right => {
                    // element (i=2, j=3) lives at 2*8 + 3 = 19
                    assert_eq!(host[19], 23.0);
                }
            }
        }
    }

    #[test]
    fn flcl_fortran_layer_works_but_is_limited_tier() {
        // Description 14: FLCL on all three platforms.
        for spec in DeviceSpec::presets() {
            let name = spec.name;
            let space = flcl::exec_space(Device::new(spec)).unwrap();
            assert_eq!(
                space.backend(),
                if name.contains("Intel") {
                    "Kokkos FLCL (over SYCL backend)"
                } else {
                    "Kokkos FLCL"
                }
            );
            assert!(space.efficiency() < 0.9, "FLCL binding is not free");
            let v = space.view_from_host("x", &vec![1.0; 64]).unwrap();
            flcl::parallel_for_1based(&space, 64, &[&v], |b, i, bases| {
                let i0 = b.bin(BinOp::Sub, i, Value::I32(1));
                let x = b.ld_elem(Space::Global, Type::F64, bases[0], i0);
                let iv = b.cvt(Type::F64, i);
                let y = b.bin(BinOp::Add, x, iv);
                b.st_elem(Space::Global, bases[0], i0, y);
            })
            .unwrap();
            let out = space.deep_copy_to_host(&v).unwrap();
            for (idx, val) in out.iter().enumerate() {
                assert_eq!(*val, 1.0 + (idx + 1) as f64, "{name}");
            }
        }
    }

    #[test]
    fn view_metadata() {
        let space = ExecSpace::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        let v = space.view_2d("mat", 3, 5, Layout::Right).unwrap();
        assert_eq!(v.label, "mat");
        assert_eq!(v.extent(0), 3);
        assert_eq!(v.extent(1), 5);
    }
}
