//! # mcmm-model-raja — the paper's "most notable exclusion", included
//!
//! §5 Discussion: "The most notable exclusion is certainly RAJA … similar
//! in spirit to, albeit not as popular as Kokkos." This extension crate
//! builds the RAJA-style frontend the paper left out — without touching
//! the published 51-cell matrix (RAJA stays excluded from `mcmm-core`'s
//! dataset; an extension test shows how the matrix *would* grow via
//! `mcmm_core::evolution::Event::AddRoute`).
//!
//! The surface mirrors RAJA's idioms: [`forall`] over a [`RangeSegment`]
//! with a typed execution policy ([`ExecPolicy`]), and reducer objects
//! ([`ReduceSum`], [`ReduceMin`], [`ReduceMax`]) that accumulate during a
//! `forall` and are read with `.get()` afterwards — RAJA's signature
//! difference from Kokkos' return-value reductions.
//!
//! Backend coverage mirrors the real project: CUDA and HIP backends are
//! production, the SYCL backend is newer — modeled experimental here, like
//! Kokkos' (LLNL tracks RAJA SYCL support as maturing).

use mcmm_core::provider::{Maintenance, Provider};
use mcmm_core::route::{Completeness, Directness, Route, RouteKind};
use mcmm_core::taxonomy::{Language, Model, Vendor};
use mcmm_frontend::{Element, ExecutionSession};
use mcmm_gpu_sim::device::{Device, KernelArg, LaunchConfig};
use mcmm_gpu_sim::ir::{AtomicOp, KernelBuilder, Reg, Space, Type};
use mcmm_gpu_sim::mem::DevicePtr;
use std::fmt;
use std::sync::Arc;

pub use mcmm_gpu_sim::ir::{BinOp, CmpOp, UnOp, Value};

/// RAJA execution policies (the subset with GPU backends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings are fully specified per variant
pub enum ExecPolicy {
    /// `RAJA::cuda_exec<BLOCK_SIZE>` — NVIDIA.
    CudaExec { block_size: u32 },
    /// `RAJA::hip_exec<BLOCK_SIZE>` — AMD.
    HipExec { block_size: u32 },
    /// `RAJA::sycl_exec<WORK_GROUP_SIZE>` — Intel (newer backend).
    SyclExec { work_group_size: u32 },
    /// `RAJA::omp_target_parallel_for_exec<THREADS>` — any vendor.
    OmpTargetExec { threads: u32 },
}

impl ExecPolicy {
    /// The default policy for a vendor (`RAJA::expt::ExecPolicy` chooser).
    pub fn default_for(vendor: Vendor) -> ExecPolicy {
        match vendor {
            Vendor::Nvidia => ExecPolicy::CudaExec { block_size: 256 },
            Vendor::Amd => ExecPolicy::HipExec { block_size: 256 },
            Vendor::Intel => ExecPolicy::SyclExec { work_group_size: 256 },
        }
    }

    fn vendor(self) -> Option<Vendor> {
        match self {
            ExecPolicy::CudaExec { .. } => Some(Vendor::Nvidia),
            ExecPolicy::HipExec { .. } => Some(Vendor::Amd),
            ExecPolicy::SyclExec { .. } => Some(Vendor::Intel),
            ExecPolicy::OmpTargetExec { .. } => None, // any vendor
        }
    }

    fn block_size(self) -> u32 {
        match self {
            ExecPolicy::CudaExec { block_size } | ExecPolicy::HipExec { block_size } => block_size,
            ExecPolicy::SyclExec { work_group_size } => work_group_size,
            ExecPolicy::OmpTargetExec { threads } => threads,
        }
    }

    /// The route metadata this backend would carry in an extended matrix.
    pub fn route(self) -> Route {
        match self {
            ExecPolicy::CudaExec { .. } => Route::new(
                "RAJA CUDA backend",
                RouteKind::Library,
                Provider::Community("RAJA"),
                Directness::Direct,
                Completeness::Complete,
            ),
            ExecPolicy::HipExec { .. } => Route::new(
                "RAJA HIP backend",
                RouteKind::Library,
                Provider::Community("RAJA"),
                Directness::Direct,
                Completeness::Complete,
            ),
            ExecPolicy::SyclExec { .. } => Route::new(
                "RAJA SYCL backend",
                RouteKind::Library,
                Provider::Community("RAJA"),
                Directness::Direct,
                Completeness::Majority,
            )
            .maintenance(Maintenance::Experimental),
            ExecPolicy::OmpTargetExec { .. } => Route::new(
                "RAJA OpenMP-target backend",
                RouteKind::Library,
                Provider::Community("RAJA"),
                Directness::Direct,
                Completeness::Majority,
            ),
        }
    }
}

/// RAJA errors.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings are fully specified per variant
pub enum RajaError {
    /// The policy's backend does not target this device.
    PolicyMismatch { policy: ExecPolicy, device_vendor: Vendor },
    /// Runtime failure.
    Runtime(String),
}

impl fmt::Display for RajaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RajaError::PolicyMismatch { policy, device_vendor } => {
                write!(f, "{policy:?} does not execute on {device_vendor} devices")
            }
            RajaError::Runtime(m) => write!(f, "raja: {m}"),
        }
    }
}

impl std::error::Error for RajaError {}

/// Result alias.
pub type RajaResult<T> = Result<T, RajaError>;

/// `RAJA::RangeSegment(begin, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeSegment {
    /// Inclusive start index.
    pub begin: usize,
    /// Exclusive end index.
    pub end: usize,
}

impl RangeSegment {
    /// `RAJA::RangeSegment(begin, end)` — half-open.
    pub fn new(begin: usize, end: usize) -> Self {
        assert!(begin <= end, "RangeSegment must be non-decreasing");
        Self { begin, end }
    }

    /// Number of indices in the segment.
    pub fn len(&self) -> usize {
        self.end - self.begin
    }

    /// Is the segment empty?
    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }
}

/// A RAJA resource: device + policy defaults.
///
/// RAJA is not in the paper's matrix, so the resource rides the spine
/// through [`ExecutionSession::for_route`] with the extension routes
/// declared on [`ExecPolicy`]. The default-policy session carries the
/// transfers; each `forall` opens a per-policy session (the compile
/// cache is process-wide, so repeated launches still hit it).
pub struct Resource {
    session: ExecutionSession,
    vendor: Vendor,
}

/// The nominal model slot extension sessions run under; the paper calls
/// RAJA "similar in spirit to" Kokkos, whose matrix column it borrows.
const HOST_MODEL: Model = Model::Kokkos;

fn session_for(device: Arc<Device>, policy: ExecPolicy) -> RajaResult<ExecutionSession> {
    ExecutionSession::for_route(device, HOST_MODEL, Language::Cpp, policy.route())
        .map_err(|e| RajaError::Runtime(e.to_string()))
}

impl Resource {
    /// Wrap a device.
    pub fn new(device: Arc<Device>) -> Self {
        let vendor = mcmm_toolchain::isa_vendor(device.spec().isa);
        let session = session_for(device, ExecPolicy::default_for(vendor))
            .expect("RAJA default backends are executable routes");
        Self { session, vendor }
    }

    /// The device vendor.
    pub fn vendor(&self) -> Vendor {
        self.vendor
    }

    /// The shared execution session carrying this resource's transfers.
    pub fn session(&self) -> &ExecutionSession {
        &self.session
    }

    /// Allocate + upload a device array.
    pub fn alloc(&self, data: &[f64]) -> RajaResult<DevicePtr> {
        let ptr = self
            .session
            .alloc_bytes((data.len() * f64::BYTES) as u64)
            .map_err(|e| RajaError::Runtime(e.to_string()))?;
        self.session.upload_raw(ptr, data).map_err(|e| RajaError::Runtime(e.to_string()))?;
        Ok(ptr)
    }

    /// Read back a device array.
    pub fn to_host(&self, ptr: DevicePtr, n: usize) -> RajaResult<Vec<f64>> {
        self.session.download_raw::<f64>(ptr, n).map_err(|e| RajaError::Runtime(e.to_string()))
    }
}

/// A reducer kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReduceKind {
    Sum,
    Min,
    Max,
}

/// A RAJA reducer object: create before `forall`, combined inside the
/// kernel by the `forall_reduce_*` helpers, read with `.get()` afterwards.
pub struct Reducer {
    cell: DevicePtr,
    device: Arc<Device>,
}

/// `RAJA::ReduceSum<reduce_policy, double>`.
pub struct ReduceSum(Reducer);
/// `RAJA::ReduceMin<reduce_policy, double>`.
pub struct ReduceMin(Reducer);
/// `RAJA::ReduceMax<reduce_policy, double>`.
pub struct ReduceMax(Reducer);

impl Reducer {
    fn new(res: &Resource, kind: ReduceKind, init: f64) -> RajaResult<Self> {
        let cell = res.session.alloc_bytes(8).map_err(|e| RajaError::Runtime(e.to_string()))?;
        res.session
            .device()
            .memory()
            .store(cell.0, Value::F64(init))
            .map_err(|e| RajaError::Runtime(e.to_string()))?;
        let _ = kind; // identity is fixed by the initial value + combine op
        Ok(Self { cell, device: Arc::clone(res.session.device()) })
    }

    /// Emit the combine of `v` into this reducer inside a kernel body.
    /// `cell_reg` is the register carrying the reducer's device address
    /// (provided by [`forall_reduce`]).
    fn combine_ir(kind: ReduceKind, b: &mut KernelBuilder, cell_reg: Reg, v: Reg) {
        let op = match kind {
            ReduceKind::Sum => AtomicOp::Add,
            ReduceKind::Min => AtomicOp::Min,
            ReduceKind::Max => AtomicOp::Max,
        };
        let _ = b.atomic(op, Space::Global, cell_reg, v);
    }

    fn get(&self) -> RajaResult<f64> {
        match self
            .device
            .memory()
            .load(Type::F64, self.cell.0)
            .map_err(|e| RajaError::Runtime(e.to_string()))?
        {
            Value::F64(x) => Ok(x),
            _ => unreachable!("reducer cell is f64"),
        }
    }
}

impl ReduceSum {
    /// Create a sum reducer with the given initial value.
    pub fn new(res: &Resource, init: f64) -> RajaResult<Self> {
        Ok(Self(Reducer::new(res, ReduceKind::Sum, init)?))
    }
    /// `.get()` — host-side read after the forall.
    pub fn get(&self) -> RajaResult<f64> {
        self.0.get()
    }
}

impl ReduceMin {
    /// Create a min reducer with the given initial value.
    pub fn new(res: &Resource, init: f64) -> RajaResult<Self> {
        Ok(Self(Reducer::new(res, ReduceKind::Min, init)?))
    }
    /// `.get()` — host-side read after the forall.
    pub fn get(&self) -> RajaResult<f64> {
        self.0.get()
    }
}

impl ReduceMax {
    /// Create a max reducer with the given initial value.
    pub fn new(res: &Resource, init: f64) -> RajaResult<Self> {
        Ok(Self(Reducer::new(res, ReduceKind::Max, init)?))
    }
    /// `.get()` — host-side read after the forall.
    pub fn get(&self) -> RajaResult<f64> {
        self.0.get()
    }
}

fn launch(
    res: &Resource,
    policy: ExecPolicy,
    seg: RangeSegment,
    arrays: &[DevicePtr],
    extra_cell: Option<DevicePtr>,
    body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg], Option<Reg>),
) -> RajaResult<()> {
    if let Some(required) = policy.vendor() {
        if required != res.vendor {
            return Err(RajaError::PolicyMismatch { policy, device_vendor: res.vendor });
        }
    }
    if seg.is_empty() {
        return Ok(());
    }
    let route = policy.route();
    let mut b = KernelBuilder::new("raja_forall");
    let bases: Vec<Reg> = arrays.iter().map(|_| b.param(Type::I64)).collect();
    let cell_reg = extra_cell.map(|_| b.param(Type::I64));
    let begin = b.param(Type::I32);
    let end = b.param(Type::I32);
    let t = b.global_thread_id_x();
    let i = b.bin(BinOp::Add, t, begin);
    let ok = b.cmp(CmpOp::Lt, i, end);
    let mut f = Some(body);
    let bases_ref = &bases;
    b.if_(ok, |b| {
        if let Some(f) = f.take() {
            f(b, i, bases_ref, cell_reg);
        }
    });
    let kernel = b.finish();
    let session = if route == *res.session.route() {
        None
    } else {
        Some(session_for(Arc::clone(res.session.device()), policy)?)
    };
    let session = session.as_ref().unwrap_or(&res.session);
    let module = session.compile(&kernel).map_err(|e| RajaError::Runtime(e.to_string()))?;
    let mut args: Vec<KernelArg> = arrays.iter().map(|&p| KernelArg::Ptr(p)).collect();
    if let Some(c) = extra_cell {
        args.push(KernelArg::Ptr(c));
    }
    args.push(KernelArg::I32(seg.begin as i32));
    args.push(KernelArg::I32(seg.end as i32));
    let cfg = LaunchConfig::linear(seg.len() as u64, policy.block_size())
        .with_efficiency(session.efficiency());
    session.launch(&module, cfg, &args).map_err(|e| RajaError::Runtime(e.to_string()))?;
    Ok(())
}

/// `RAJA::forall<policy>(segment, [=](int i) { ... })`.
pub fn forall(
    res: &Resource,
    policy: ExecPolicy,
    seg: RangeSegment,
    arrays: &[DevicePtr],
    body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]),
) -> RajaResult<()> {
    launch(res, policy, seg, arrays, None, |b, i, bases, _| body(b, i, bases))
}

/// A `forall` that feeds a [`ReduceSum`]/[`ReduceMin`]/[`ReduceMax`]: the
/// body returns the per-iteration contribution register.
pub fn forall_reduce_sum(
    res: &Resource,
    policy: ExecPolicy,
    seg: RangeSegment,
    arrays: &[DevicePtr],
    reducer: &ReduceSum,
    body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]) -> Reg,
) -> RajaResult<()> {
    launch(res, policy, seg, arrays, Some(reducer.0.cell), |b, i, bases, cell| {
        let v = body(b, i, bases);
        Reducer::combine_ir(ReduceKind::Sum, b, cell.expect("cell present"), v);
    })
}

/// The min variant.
pub fn forall_reduce_min(
    res: &Resource,
    policy: ExecPolicy,
    seg: RangeSegment,
    arrays: &[DevicePtr],
    reducer: &ReduceMin,
    body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]) -> Reg,
) -> RajaResult<()> {
    launch(res, policy, seg, arrays, Some(reducer.0.cell), |b, i, bases, cell| {
        let v = body(b, i, bases);
        Reducer::combine_ir(ReduceKind::Min, b, cell.expect("cell present"), v);
    })
}

/// The max variant.
pub fn forall_reduce_max(
    res: &Resource,
    policy: ExecPolicy,
    seg: RangeSegment,
    arrays: &[DevicePtr],
    reducer: &ReduceMax,
    body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]) -> Reg,
) -> RajaResult<()> {
    launch(res, policy, seg, arrays, Some(reducer.0.cell), |b, i, bases, cell| {
        let v = body(b, i, bases);
        Reducer::combine_ir(ReduceKind::Max, b, cell.expect("cell present"), v);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmm_gpu_sim::DeviceSpec;
    use mcmm_toolchain::efficiency::route_efficiency;

    #[test]
    fn forall_daxpy_on_all_vendors() {
        // RAJA reaches all three platforms, like Kokkos (§5: "similar in
        // spirit").
        for spec in DeviceSpec::presets() {
            let name = spec.name;
            let res = Resource::new(Device::new(spec));
            let policy = ExecPolicy::default_for(res.vendor());
            let n = 512;
            let x = res.alloc(&(0..n).map(|i| i as f64).collect::<Vec<_>>()).unwrap();
            let y = res.alloc(&vec![1.0; n]).unwrap();
            forall(&res, policy, RangeSegment::new(0, n), &[x, y], |b, i, p| {
                let xv = b.ld_elem(Space::Global, Type::F64, p[0], i);
                let yv = b.ld_elem(Space::Global, Type::F64, p[1], i);
                let ax = b.bin(BinOp::Mul, xv, Value::F64(2.0));
                let s = b.bin(BinOp::Add, ax, yv);
                b.st_elem(Space::Global, p[1], i, s);
            })
            .unwrap();
            let out = res.to_host(y, n).unwrap();
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, 2.0 * i as f64 + 1.0, "{name}");
            }
        }
    }

    #[test]
    fn range_segments_respect_begin() {
        // Only [100, 200) gets written.
        let res = Resource::new(Device::new(DeviceSpec::nvidia_a100()));
        let n = 300;
        let y = res.alloc(&vec![0.0; n]).unwrap();
        forall(
            &res,
            ExecPolicy::CudaExec { block_size: 64 },
            RangeSegment::new(100, 200),
            &[y],
            |b, i, p| {
                b.st_elem(Space::Global, p[0], i, Value::F64(1.0));
            },
        )
        .unwrap();
        let out = res.to_host(y, n).unwrap();
        for (i, v) in out.iter().enumerate() {
            let expect = if (100..200).contains(&i) { 1.0 } else { 0.0 };
            assert_eq!(*v, expect, "index {i}");
        }
    }

    #[test]
    fn reducer_objects_accumulate() {
        let res = Resource::new(Device::new(DeviceSpec::amd_mi250x()));
        let policy = ExecPolicy::HipExec { block_size: 128 };
        let n = 1000;
        let data: Vec<f64> = (0..n).map(|i| ((i * 31) % 97) as f64).collect();
        let x = res.alloc(&data).unwrap();

        let sum = ReduceSum::new(&res, 0.0).unwrap();
        forall_reduce_sum(&res, policy, RangeSegment::new(0, n), &[x], &sum, |b, i, p| {
            b.ld_elem(Space::Global, Type::F64, p[0], i)
        })
        .unwrap();
        assert_eq!(sum.get().unwrap(), data.iter().sum::<f64>());

        let min = ReduceMin::new(&res, f64::INFINITY).unwrap();
        forall_reduce_min(&res, policy, RangeSegment::new(0, n), &[x], &min, |b, i, p| {
            b.ld_elem(Space::Global, Type::F64, p[0], i)
        })
        .unwrap();
        assert_eq!(min.get().unwrap(), data.iter().copied().fold(f64::INFINITY, f64::min));

        let max = ReduceMax::new(&res, f64::NEG_INFINITY).unwrap();
        forall_reduce_max(&res, policy, RangeSegment::new(0, n), &[x], &max, |b, i, p| {
            b.ld_elem(Space::Global, Type::F64, p[0], i)
        })
        .unwrap();
        assert_eq!(max.get().unwrap(), data.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn policy_vendor_mismatch_is_rejected() {
        let res = Resource::new(Device::new(DeviceSpec::intel_pvc()));
        let err = forall(
            &res,
            ExecPolicy::CudaExec { block_size: 256 },
            RangeSegment::new(0, 8),
            &[],
            |_, _, _| {},
        )
        .unwrap_err();
        assert!(matches!(err, RajaError::PolicyMismatch { device_vendor: Vendor::Intel, .. }));
    }

    #[test]
    fn omp_target_policy_is_portable() {
        for spec in DeviceSpec::presets() {
            let res = Resource::new(Device::new(spec));
            let y = res.alloc(&vec![0.0; 64]).unwrap();
            forall(
                &res,
                ExecPolicy::OmpTargetExec { threads: 64 },
                RangeSegment::new(0, 64),
                &[y],
                |b, i, p| {
                    let iv = b.cvt(Type::F64, i);
                    b.st_elem(Space::Global, p[0], i, iv);
                },
            )
            .unwrap();
            let out = res.to_host(y, 64).unwrap();
            assert!(out.iter().enumerate().all(|(i, &v)| v == i as f64));
        }
    }

    #[test]
    fn sycl_backend_is_experimental_with_penalty() {
        let route = ExecPolicy::SyclExec { work_group_size: 128 }.route();
        assert_eq!(route.maintenance, Maintenance::Experimental);
        assert!(
            route_efficiency(&route)
                < route_efficiency(&ExecPolicy::CudaExec { block_size: 128 }.route())
        );
    }

    #[test]
    fn empty_segment_is_a_noop() {
        let res = Resource::new(Device::new(DeviceSpec::nvidia_a100()));
        forall(
            &res,
            ExecPolicy::default_for(res.vendor()),
            RangeSegment::new(5, 5),
            &[],
            |_, _, _| panic!("must not build a body for an empty segment"),
        )
        .unwrap();
    }
}
