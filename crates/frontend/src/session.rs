//! The execution session: one vendor-bound spine instance.
//!
//! An [`ExecutionSession`] is what every model frontend *is* underneath:
//! a device, a resolved toolchain route, a compile cache, and (optionally)
//! a fault injector. The session owns the mechanics — allocation, typed
//! transfer, cached+linted compilation, launch — while the model crates
//! keep their paper-faithful surfaces and map [`FrontendError`] into their
//! idiomatic error enums.
//!
//! ## Route resolution
//!
//! [`ExecutionSession::open`] resolves the best *executable* route for
//! (model, language, vendor) from the paper registry: ranked like the
//! failover router ranks them, but additionally filtered by
//! `Route::is_executable` — a frontend refuses cells whose only support
//! is a source translator, an unmaintained project, or a research-class
//! translation shim (chipStar), even though those routes legitimately
//! appear in the matrix. This is exactly the accept/refuse pattern of the
//! BabelStream sweep and is verified cell-by-cell by the conformance
//! suite against `mcmm_core::query`.

use crate::element::Element;
use crate::error::FrontendError;
use mcmm_chaos::{AttemptCtx, AttemptFaults, FaultInjector};
use mcmm_core::route::Route;
use mcmm_core::taxonomy::{Language, Model, Vendor};
use mcmm_gpu_sim::device::{Device, KernelArg, LaunchConfig, LaunchReport};
use mcmm_gpu_sim::ir::KernelIr;
use mcmm_gpu_sim::isa::Module;
use mcmm_gpu_sim::mem::DevicePtr;
use mcmm_gpu_sim::timing::ModeledTime;
use mcmm_toolchain::{isa_vendor, vendor_device_spec, CompileCache, Registry, VirtualCompiler};
use parking_lot::Mutex;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

/// The process-wide compile cache every session uses unless it is given
/// a private one. Sharing is the point: ten frontends lowering the same
/// structural kernel through the same route hit the same artifact, and
/// a repeated BabelStream sweep compiles nothing at all.
pub fn shared_cache() -> Arc<CompileCache> {
    static CACHE: OnceLock<Arc<CompileCache>> = OnceLock::new();
    Arc::clone(CACHE.get_or_init(|| Arc::new(CompileCache::default())))
}

/// Fault-injection state for one session: the injector, the job identity
/// faults are rolled under, and the current attempt's undrained faults.
struct Chaos {
    injector: Arc<FaultInjector>,
    job: u64,
    attempt: AtomicU32,
    pending: Mutex<AttemptFaults>,
}

impl Chaos {
    fn roll(&self, model: Model, language: Language, vendor: Vendor, route: &str) {
        let faults = self.injector.decide(&AttemptCtx {
            job: self.job,
            attempt: self.attempt.load(Ordering::Relaxed),
            model,
            language,
            vendor,
            route,
        });
        *self.pending.lock() = faults;
    }
}

/// A tracked, typed device allocation. Freed on drop — the session's
/// answer to the manual `alloc`/`free` pairs the model crates used to
/// carry.
pub struct DeviceBuffer<T: Element> {
    device: Arc<Device>,
    ptr: DevicePtr,
    len: usize,
    _elem: PhantomData<T>,
}

impl<T: Element> DeviceBuffer<T> {
    /// The raw device pointer (for kernel arguments and crates whose
    /// public API hands out pointers).
    pub fn ptr(&self) -> DevicePtr {
        self.ptr
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes on the device.
    pub fn byte_len(&self) -> u64 {
        (self.len * T::BYTES) as u64
    }

    /// This buffer as a kernel pointer argument.
    pub fn arg(&self) -> KernelArg {
        KernelArg::Ptr(self.ptr)
    }
}

impl<T: Element> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.device.free(self.ptr, self.byte_len());
    }
}

/// One model × language frontend bound to one vendor's device, with the
/// route, cache, and fault hooks resolved. See the module docs.
pub struct ExecutionSession {
    device: Arc<Device>,
    model: Model,
    language: Language,
    vendor: Vendor,
    compiler: VirtualCompiler,
    cache: Arc<CompileCache>,
    chaos: Option<Chaos>,
}

impl std::fmt::Debug for ExecutionSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionSession")
            .field("model", &self.model)
            .field("language", &self.language)
            .field("vendor", &self.vendor)
            .field("toolchain", &self.compiler.name)
            .field("chaos", &self.chaos.is_some())
            .finish()
    }
}

impl ExecutionSession {
    /// Open a session on a fresh simulated device of `vendor`, resolving
    /// the best executable route for (model, language) — or refuse with a
    /// [`FrontendError::NoRoute`] naming the vendor, exactly where the
    /// matrix refuses.
    pub fn open(model: Model, language: Language, vendor: Vendor) -> Result<Self, FrontendError> {
        Self::open_on(Device::new(vendor_device_spec(vendor)), model, language)
    }

    /// Open a session on an existing device (its vendor is implied by the
    /// ISA it executes).
    pub fn open_on(
        device: Arc<Device>,
        model: Model,
        language: Language,
    ) -> Result<Self, FrontendError> {
        let vendor = isa_vendor(device.spec().isa);
        let compiler = resolve_best(model, language, vendor)?;
        Ok(Self::assemble_session(device, model, language, vendor, compiler))
    }

    /// Open a session through a *named* toolchain (the SYCL
    /// implementations, OpenMP's per-vendor compilers, Python's backend
    /// packages). Refuses with [`FrontendError::Discontinued`] when the
    /// route exists but is unmaintained, and [`FrontendError::NoRoute`]
    /// when the name is not an executable route of the cell.
    pub fn open_with_toolchain(
        model: Model,
        language: Language,
        vendor: Vendor,
        toolchain: &str,
    ) -> Result<Self, FrontendError> {
        Self::open_with_toolchain_on(
            Device::new(vendor_device_spec(vendor)),
            model,
            language,
            toolchain,
        )
    }

    /// [`ExecutionSession::open_with_toolchain`] on an existing device.
    pub fn open_with_toolchain_on(
        device: Arc<Device>,
        model: Model,
        language: Language,
        toolchain: &str,
    ) -> Result<Self, FrontendError> {
        let vendor = isa_vendor(device.spec().isa);
        let compiler = resolve_named(model, language, vendor, toolchain)?;
        Ok(Self::assemble_session(device, model, language, vendor, compiler))
    }

    /// Open a session over an *extension* route that is not part of the
    /// paper's matrix (RAJA's backends). The route is taken at face
    /// value; it must still be executable.
    pub fn for_route(
        device: Arc<Device>,
        model: Model,
        language: Language,
        route: Route,
    ) -> Result<Self, FrontendError> {
        let vendor = isa_vendor(device.spec().isa);
        if !route.is_executable() {
            return Err(FrontendError::NoRoute {
                model,
                language,
                vendor,
                detail: format!("extension route {} is not executable", route.toolchain),
            });
        }
        let compiler = VirtualCompiler {
            name: route.toolchain,
            accepts: vec![(model, language)],
            targets: vec![vendor],
            route,
        };
        Ok(Self::assemble_session(device, model, language, vendor, compiler))
    }

    fn assemble_session(
        device: Arc<Device>,
        model: Model,
        language: Language,
        vendor: Vendor,
        compiler: VirtualCompiler,
    ) -> Self {
        Self { device, model, language, vendor, compiler, cache: shared_cache(), chaos: None }
    }

    /// Use a private compile cache instead of the process-wide one.
    pub fn with_cache(mut self, cache: Arc<CompileCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Thread a fault injector through every subsequent transfer,
    /// compile, and launch of this session, rolling faults under the
    /// given job identity. The injector decides at most one fault per
    /// attempt; [`ExecutionSession::next_attempt`] re-rolls after a
    /// failure so retries are not doomed.
    pub fn with_chaos(mut self, injector: Arc<FaultInjector>, job: u64) -> Self {
        let chaos = Chaos {
            injector,
            job,
            attempt: AtomicU32::new(0),
            pending: Mutex::new(AttemptFaults::none()),
        };
        chaos.roll(self.model, self.language, self.vendor, self.compiler.name);
        self.chaos = Some(chaos);
        self
    }

    /// Begin the next attempt: re-roll the fault decision for the new
    /// attempt number. A no-op without chaos.
    pub fn next_attempt(&self) {
        if let Some(c) = &self.chaos {
            c.attempt.fetch_add(1, Ordering::Relaxed);
            c.roll(self.model, self.language, self.vendor, self.compiler.name);
        }
    }

    // ───────────────────────── accessors ─────────────────────────

    /// The device this session executes on.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// The vendor lane.
    pub fn vendor(&self) -> Vendor {
        self.vendor
    }

    /// The programming model.
    pub fn model(&self) -> Model {
        self.model
    }

    /// The source language.
    pub fn language(&self) -> Language {
        self.language
    }

    /// Name of the resolved toolchain route.
    pub fn toolchain(&self) -> &'static str {
        self.compiler.name
    }

    /// The resolved route's metadata.
    pub fn route(&self) -> &Route {
        &self.compiler.route
    }

    /// The route's efficiency factor (feeds the timing model).
    pub fn efficiency(&self) -> f64 {
        self.compiler.efficiency()
    }

    /// The compile cache this session fills and hits.
    pub fn cache(&self) -> &Arc<CompileCache> {
        &self.cache
    }

    /// The device's modeled clock.
    pub fn modeled_clock(&self) -> ModeledTime {
        self.device.modeled_clock()
    }

    // ────────────────── allocation and transfer ──────────────────

    /// Allocate a tracked, typed device buffer of `len` elements.
    pub fn alloc<T: Element>(&self, len: usize) -> Result<DeviceBuffer<T>, FrontendError> {
        let ptr = self.device.alloc((len * T::BYTES) as u64)?;
        Ok(DeviceBuffer { device: Arc::clone(&self.device), ptr, len, _elem: PhantomData })
    }

    /// Allocate a buffer and upload `data` into it.
    pub fn upload<T: Element>(&self, data: &[T]) -> Result<DeviceBuffer<T>, FrontendError> {
        let buf = self.alloc(data.len())?;
        self.upload_into(&buf, data)?;
        Ok(buf)
    }

    /// Upload `data` into an existing buffer (from its start).
    pub fn upload_into<T: Element>(
        &self,
        buf: &DeviceBuffer<T>,
        data: &[T],
    ) -> Result<ModeledTime, FrontendError> {
        self.upload_raw(buf.ptr, data)
    }

    /// Download the whole buffer back to the host.
    pub fn download<T: Element>(&self, buf: &DeviceBuffer<T>) -> Result<Vec<T>, FrontendError> {
        self.download_raw(buf.ptr, buf.len)
    }

    /// Typed upload to a raw device pointer — the primitive under the
    /// model crates' (deprecated) `memcpy_*`/`memcpy_*_f64` pairs.
    pub fn upload_raw<T: Element>(
        &self,
        dst: DevicePtr,
        data: &[T],
    ) -> Result<ModeledTime, FrontendError> {
        let fault = self.chaos.as_ref().and_then(|c| c.pending.lock().upload.take());
        let bytes = T::to_device_bytes(data);
        Ok(self.device.memcpy_h2d_faulted(dst, &bytes, fault.as_ref())?)
    }

    /// Typed download of `len` elements from a raw device pointer.
    pub fn download_raw<T: Element>(
        &self,
        src: DevicePtr,
        len: usize,
    ) -> Result<Vec<T>, FrontendError> {
        let fault = self.chaos.as_ref().and_then(|c| c.pending.lock().read_back.take());
        let (bytes, _) =
            self.device.memcpy_d2h_faulted(src, (len * T::BYTES) as u64, fault.as_ref())?;
        Ok(T::from_device_bytes(&bytes))
    }

    /// Untracked byte allocation, for crates whose public surface owns
    /// raw pointers (SYCL USM). Pair with [`ExecutionSession::free_bytes`].
    pub fn alloc_bytes(&self, bytes: u64) -> Result<DevicePtr, FrontendError> {
        Ok(self.device.alloc(bytes)?)
    }

    /// Free an untracked allocation from [`ExecutionSession::alloc_bytes`].
    pub fn free_bytes(&self, ptr: DevicePtr, bytes: u64) {
        self.device.free(ptr, bytes);
    }

    // ─────────────────── compilation and launch ───────────────────

    /// Compile a kernel through the resolved route: served from the
    /// shared cache when resident, otherwise lint-gated and assembled
    /// once. Chaos may fail a cold compile with a transient fault.
    pub fn compile(&self, kernel: &KernelIr) -> Result<Arc<Module>, FrontendError> {
        let fault = self.chaos.as_ref().and_then(|c| c.pending.lock().compile.take());
        let (module, _hit) = self.cache.compile_faulted(
            &self.compiler,
            kernel,
            self.model,
            self.language,
            self.vendor,
            fault.as_deref(),
        )?;
        Ok(module)
    }

    /// A linear launch configuration carrying the route's efficiency —
    /// how translated/experimental routes end up slower than native ones
    /// on the same silicon.
    pub fn launch_config(&self, n: u64, block_dim: u32) -> LaunchConfig {
        LaunchConfig::linear(n, block_dim).with_efficiency(self.efficiency())
    }

    /// Launch a compiled module. Chaos may refuse, stall, or crash a
    /// block of the launch.
    pub fn launch(
        &self,
        module: &Module,
        cfg: LaunchConfig,
        args: &[KernelArg],
    ) -> Result<LaunchReport, FrontendError> {
        let fault = self.chaos.as_ref().and_then(|c| c.pending.lock().launch.take());
        Ok(self.device.launch_faulted(module, cfg, args, fault.as_ref())?)
    }

    /// Compile-and-launch over `n` linear elements with the route's
    /// efficiency applied — the common path of every frontend's
    /// `parallel_for`.
    pub fn run(
        &self,
        kernel: &KernelIr,
        n: u64,
        block_dim: u32,
        args: &[KernelArg],
    ) -> Result<LaunchReport, FrontendError> {
        let module = self.compile(kernel)?;
        self.launch(&module, self.launch_config(n, block_dim), args)
    }
}

/// Best executable route for a cell, or a refusal naming the vendor.
fn resolve_best(
    model: Model,
    language: Language,
    vendor: Vendor,
) -> Result<VirtualCompiler, FrontendError> {
    let registry = Registry::paper();
    if let Some(c) =
        registry.ranked(model, language, vendor).into_iter().find(|c| c.route.is_executable())
    {
        return Ok(c.clone());
    }
    Err(FrontendError::NoRoute {
        model,
        language,
        vendor,
        detail: no_route_detail(&registry, model, language, vendor),
    })
}

/// A named route of the cell, refusing unmaintained or non-executable
/// toolchains the way the ecosystem refuses them.
fn resolve_named(
    model: Model,
    language: Language,
    vendor: Vendor,
    toolchain: &str,
) -> Result<VirtualCompiler, FrontendError> {
    let registry = Registry::paper();
    let Some(c) =
        registry.select(model, language, vendor).into_iter().find(|c| c.name == toolchain)
    else {
        return Err(FrontendError::NoRoute {
            model,
            language,
            vendor,
            detail: format!("the matrix records no toolchain named \"{toolchain}\" for this cell"),
        });
    };
    if !c.is_available() {
        return Err(FrontendError::Discontinued { toolchain: toolchain.to_owned(), vendor });
    }
    if !c.route.is_executable() {
        return Err(FrontendError::NoRoute {
            model,
            language,
            vendor,
            detail: format!(
                "\"{toolchain}\" is a {} route a frontend cannot drive",
                c.route.kind.label()
            ),
        });
    }
    Ok(c.clone())
}

/// Explain a refusal in the paper's terms: name what the matrix *does*
/// record for the cell.
fn no_route_detail(
    registry: &Registry,
    model: Model,
    language: Language,
    vendor: Vendor,
) -> String {
    let all = registry.select(model, language, vendor);
    if all.is_empty() {
        return "the matrix records no route at all".to_owned();
    }
    let names: Vec<String> =
        all.iter().map(|c| format!("{} ({})", c.name, c.route.kind.label())).collect();
    format!("only non-executable routes exist: {}", names.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmm_chaos::ChaosConfig;
    use mcmm_gpu_sim::ir::{BinOp, CmpOp, KernelBuilder, Space, Type};

    /// y[i] = a * x[i] + y[i] over f64.
    fn daxpy_kernel() -> KernelIr {
        let mut k = KernelBuilder::new("daxpy");
        let a = k.param(Type::F64);
        let x = k.param(Type::I64);
        let y = k.param(Type::I64);
        let n = k.param(Type::I32);
        let i = k.global_thread_id_x();
        let ok = k.cmp(CmpOp::Lt, i, n);
        k.if_(ok, |k| {
            let xi = k.ld_elem(Space::Global, Type::F64, x, i);
            let yi = k.ld_elem(Space::Global, Type::F64, y, i);
            let ax = k.bin(BinOp::Mul, a, xi);
            let s = k.bin(BinOp::Add, ax, yi);
            k.st_elem(Space::Global, y, i, s);
        });
        k.finish()
    }

    #[test]
    fn native_cells_open_and_execute() {
        for (model, vendor, toolchain) in [
            (Model::Cuda, Vendor::Nvidia, "CUDA Toolkit (nvcc)"),
            (Model::Hip, Vendor::Amd, "hipcc (ROCm/Clang AMDGPU)"),
            (Model::Sycl, Vendor::Intel, "Intel oneAPI DPC++ (icpx -fsycl)"),
        ] {
            let s = ExecutionSession::open(model, Language::Cpp, vendor).unwrap();
            assert_eq!(s.toolchain(), toolchain);
            assert_eq!(s.vendor(), vendor);
            assert_eq!(s.efficiency(), 1.0);

            let n = 512usize;
            let xs = vec![2.0f64; n];
            let ys = vec![1.0f64; n];
            let dx = s.upload(&xs).unwrap();
            let dy = s.upload(&ys).unwrap();
            s.run(
                &daxpy_kernel(),
                n as u64,
                128,
                &[KernelArg::F64(3.0), dx.arg(), dy.arg(), KernelArg::I32(n as i32)],
            )
            .unwrap();
            let out = s.download(&dy).unwrap();
            assert!(out.iter().all(|&v| (v - 7.0).abs() < 1e-12), "{model} on {vendor}");
        }
    }

    #[test]
    fn refused_cells_name_the_vendor() {
        // CUDA C++ on AMD: HIPIFY only — a source translator.
        let err = ExecutionSession::open(Model::Cuda, Language::Cpp, Vendor::Amd).unwrap_err();
        assert!(err.is_refusal());
        assert!(err.to_string().contains("AMD"), "{err}");
        // HIP C++ on Intel: chipStar is registry-usable but a research
        // shim — the frontend still refuses.
        let err = ExecutionSession::open(Model::Hip, Language::Cpp, Vendor::Intel).unwrap_err();
        assert!(err.is_refusal());
        assert!(err.to_string().contains("Intel"), "{err}");
        assert!(err.to_string().contains("chipStar"), "refusal should cite the shim: {err}");
    }

    #[test]
    fn named_toolchains_resolve_and_discontinued_ones_refuse() {
        let s = ExecutionSession::open_with_toolchain(
            Model::Sycl,
            Language::Cpp,
            Vendor::Nvidia,
            "Open SYCL",
        )
        .unwrap();
        assert_eq!(s.toolchain(), "Open SYCL");

        let err = ExecutionSession::open_with_toolchain(
            Model::Sycl,
            Language::Cpp,
            Vendor::Nvidia,
            "ComputeCpp",
        )
        .unwrap_err();
        assert!(matches!(err, FrontendError::Discontinued { .. }), "{err}");
        assert!(err.to_string().contains("NVIDIA"));
    }

    #[test]
    fn sessions_share_the_process_cache() {
        let k = daxpy_kernel();
        let a = ExecutionSession::open(Model::Cuda, Language::Cpp, Vendor::Nvidia).unwrap();
        let before = a.cache().stats();
        a.compile(&k).unwrap();
        let b = ExecutionSession::open(Model::Cuda, Language::Cpp, Vendor::Nvidia).unwrap();
        b.compile(&k).unwrap();
        let after = b.cache().stats();
        assert!(after.hits > before.hits, "second session must hit the artifact the first filled");
    }

    #[test]
    fn chaos_faults_surface_as_injected_errors() {
        let mut cfg = ChaosConfig::quiet(7);
        cfg.upload_p = 1.0; // every attempt's first roll is an upload abort
        cfg.budget = 64; // quiet() zeroes the budget; give the faults room
        let injector = Arc::new(FaultInjector::new(cfg));
        let s = ExecutionSession::open(Model::Cuda, Language::Cpp, Vendor::Nvidia)
            .unwrap()
            .with_chaos(Arc::clone(&injector), 0);
        let buf = s.alloc::<f64>(16).unwrap();
        let err = s.upload_into(&buf, &[1.0f64; 16]).unwrap_err();
        assert!(err.is_injected(), "{err}");
        // The fault is consumed: the same attempt does not fault twice.
        s.upload_into(&buf, &[1.0f64; 16]).unwrap();
        // The next attempt re-rolls (p = 1.0, so it faults again).
        s.next_attempt();
        let err = s.upload_into(&buf, &[1.0f64; 16]).unwrap_err();
        assert!(err.is_injected(), "{err}");
        assert!(!injector.records().is_empty());
    }

    #[test]
    fn extension_routes_run_outside_the_matrix() {
        use mcmm_core::provider::Provider;
        use mcmm_core::route::{Completeness, Directness, RouteKind};
        let route = Route::new(
            "RAJA CUDA backend",
            RouteKind::Library,
            Provider::Community("RAJA"),
            Directness::Direct,
            Completeness::Complete,
        );
        let device = Device::new(vendor_device_spec(Vendor::Nvidia));
        let s = ExecutionSession::for_route(device, Model::Cuda, Language::Cpp, route).unwrap();
        assert_eq!(s.toolchain(), "RAJA CUDA backend");
        let dx = s.upload(&vec![1.0f64; 64]).unwrap();
        let dy = s.upload(&vec![0.5f64; 64]).unwrap();
        s.run(
            &daxpy_kernel(),
            64,
            64,
            &[KernelArg::F64(2.0), dx.arg(), dy.arg(), KernelArg::I32(64)],
        )
        .unwrap();
        let out = s.download(&dy).unwrap();
        assert!(out.iter().all(|&v| (v - 2.5).abs() < 1e-12));
    }
}
