//! The layered frontend error taxonomy.
//!
//! Every model frontend fails in the same three layers, in pipeline
//! order:
//!
//! 1. **Routing** — the matrix has no executable route for the cell, or a
//!    specifically requested toolchain is discontinued. These are the
//!    paper's compatibility holes made operational: the frontend refuses
//!    the vendor *before* any device work happens.
//! 2. **Toolchain** — an executable route exists but the compile fails
//!    (lint gate, invalid kernel, injected toolchain fault).
//! 3. **Device** — the compiled module fails at transfer or launch time
//!    (ISA walls, OOM, traps, injected transfer/launch faults).
//!
//! Model crates wrap [`FrontendError`] into their idiomatic error enums
//! (`CudaError`, `SyclError`, …) but must keep the cause chain: the
//! variants here implement [`std::error::Error::source`], and refusal
//! messages always name the refusing vendor.

use mcmm_core::taxonomy::{Language, Model, Vendor};
use mcmm_gpu_sim::SimError;
use mcmm_toolchain::CompileError;
use std::fmt;

/// Why an execution-spine operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// Routing layer: the matrix offers no route a runtime frontend can
    /// drive for this cell (only source translators, unmaintained
    /// projects, or minimal-coverage translation shims). The `detail`
    /// names what *does* exist, mirroring the paper's per-cell notes.
    NoRoute {
        /// The programming model that refused.
        model: Model,
        /// Its source language.
        language: Language,
        /// The vendor being refused.
        vendor: Vendor,
        /// What the matrix records instead of an executable route.
        detail: String,
    },
    /// Routing layer: a specific toolchain was requested by name but is
    /// discontinued or unmaintained (ComputeCpp, ZLUDA, Numba-ROCm).
    Discontinued {
        /// The requested toolchain.
        toolchain: String,
        /// The vendor it would have targeted.
        vendor: Vendor,
    },
    /// Toolchain layer: the route exists but compilation failed.
    Compile(CompileError),
    /// Device layer: transfer or launch failed on the simulated device.
    Device(SimError),
}

impl FrontendError {
    /// Is this a matrix-level refusal (routing layer), as opposed to a
    /// failure of an accepted route?
    pub fn is_refusal(&self) -> bool {
        matches!(self, FrontendError::NoRoute { .. } | FrontendError::Discontinued { .. })
    }

    /// Was this failure synthesized by fault injection (and therefore
    /// worth retrying), rather than an organic incompatibility?
    pub fn is_injected(&self) -> bool {
        matches!(self, FrontendError::Compile(CompileError::ToolchainFault { .. }))
            || matches!(self, FrontendError::Device(SimError::FaultInjected(_)))
    }

    /// The vendor involved, when the error identifies one. Refusals
    /// always do — the conformance suite checks refusal messages name
    /// the actual vendor.
    pub fn vendor(&self) -> Option<Vendor> {
        match self {
            FrontendError::NoRoute { vendor, .. } => Some(*vendor),
            FrontendError::Discontinued { vendor, .. } => Some(*vendor),
            FrontendError::Compile(CompileError::UnsupportedTarget { vendor, .. }) => Some(*vendor),
            _ => None,
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::NoRoute { model, language, vendor, detail } => {
                write!(f, "no executable route for {model} ({language}) on {vendor} GPUs: {detail}")
            }
            FrontendError::Discontinued { toolchain, vendor } => {
                write!(f, "{toolchain} targeting {vendor} GPUs is discontinued/unmaintained")
            }
            FrontendError::Compile(e) => write!(f, "compilation failed: {e}"),
            FrontendError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrontendError::Compile(e) => Some(e),
            FrontendError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileError> for FrontendError {
    fn from(e: CompileError) -> Self {
        FrontendError::Compile(e)
    }
}

impl From<SimError> for FrontendError {
    fn from(e: SimError) -> Self {
        FrontendError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn refusals_name_the_vendor() {
        let e = FrontendError::NoRoute {
            model: Model::Cuda,
            language: Language::Cpp,
            vendor: Vendor::Amd,
            detail: "only the HIPIFY source translator".into(),
        };
        assert!(e.is_refusal());
        assert_eq!(e.vendor(), Some(Vendor::Amd));
        assert!(e.to_string().contains("AMD"));
        assert!(e.to_string().contains("CUDA"));

        let e =
            FrontendError::Discontinued { toolchain: "ComputeCpp".into(), vendor: Vendor::Nvidia };
        assert!(e.is_refusal());
        assert!(e.to_string().contains("NVIDIA"));
    }

    #[test]
    fn cause_chain_survives_wrapping() {
        let inner = SimError::Trap("divide by zero".into());
        let e = FrontendError::Device(inner.clone());
        let src = e.source().expect("device errors carry a source");
        assert_eq!(src.to_string(), inner.to_string());
        assert!(!e.is_refusal());
    }

    #[test]
    fn injected_faults_are_recognized() {
        let e = FrontendError::Device(SimError::FaultInjected("h2d abort".into()));
        assert!(e.is_injected());
        let e = FrontendError::Compile(CompileError::ToolchainFault {
            toolchain: "nvcc".into(),
            reason: "crashed".into(),
        });
        assert!(e.is_injected());
        let e = FrontendError::Device(SimError::Trap("real bug".into()));
        assert!(!e.is_injected());
    }
}
