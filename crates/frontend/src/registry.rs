//! The frontend registry: every programming-model surface as one
//! uniform, session-producing object.
//!
//! A [`Frontend`] is the *thin* part of a model crate — the paper's
//! claim, made structural: each model is a vendor-flavored way of
//! opening the same [`ExecutionSession`](crate::ExecutionSession).
//! Benchmarks (BabelStream) and conformance suites iterate a
//! [`FrontendRegistry`] instead of hand-maintaining per-model adapters.

use crate::error::FrontendError;
use crate::session::ExecutionSession;
use mcmm_core::taxonomy::{Language, Model, Vendor};

/// One programming-model frontend, as seen by the execution spine.
///
/// Implementations live in the `model-*` crates, where the model's own
/// vendor-refusal semantics (and per-model choices such as Python's
/// backend package or OpenMP's per-vendor compiler) are applied before
/// the session is handed back.
pub trait Frontend: Send + Sync {
    /// The programming model this frontend implements.
    fn model(&self) -> Model;

    /// The source language of the surface.
    fn language(&self) -> Language {
        Language::Cpp
    }

    /// Display name for benchmarks and reports — the Figure 1 column
    /// header by default.
    fn name(&self) -> &'static str {
        self.model().name()
    }

    /// Open a session on a vendor, refusing exactly where the matrix
    /// refuses. Refusal errors name the vendor (see
    /// [`FrontendError::is_refusal`]).
    fn open(&self, vendor: Vendor) -> Result<ExecutionSession, FrontendError>;
}

/// An ordered collection of frontends (Figure 1 column order by
/// convention: the native models first, Python last).
#[derive(Default)]
pub struct FrontendRegistry {
    entries: Vec<Box<dyn Frontend>>,
}

impl FrontendRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a frontend (builder style).
    pub fn with(mut self, frontend: Box<dyn Frontend>) -> Self {
        self.entries.push(frontend);
        self
    }

    /// Append a frontend.
    pub fn register(&mut self, frontend: Box<dyn Frontend>) {
        self.entries.push(frontend);
    }

    /// Iterate the registered frontends in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Frontend> {
        self.entries.iter().map(|b| b.as_ref())
    }

    /// Number of registered frontends.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The frontend for a model, if registered.
    pub fn get(&self, model: Model) -> Option<&dyn Frontend> {
        self.iter().find(|f| f.model() == model)
    }

    /// Consume the registry, yielding the frontends in registration
    /// order (for callers that wrap each one, like the BabelStream
    /// blanket adapter).
    pub fn into_frontends(self) -> Vec<Box<dyn Frontend>> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Plain(Model);
    impl Frontend for Plain {
        fn model(&self) -> Model {
            self.0
        }
        fn language(&self) -> Language {
            if self.0 == Model::Python {
                Language::Python
            } else {
                Language::Cpp
            }
        }
        fn open(&self, vendor: Vendor) -> Result<ExecutionSession, FrontendError> {
            ExecutionSession::open(self.0, self.language(), vendor)
        }
    }

    #[test]
    fn registry_preserves_order_and_lookup() {
        let reg = FrontendRegistry::new()
            .with(Box::new(Plain(Model::Cuda)))
            .with(Box::new(Plain(Model::Python)));
        assert_eq!(reg.len(), 2);
        let names: Vec<_> = reg.iter().map(|f| f.name()).collect();
        assert_eq!(names, vec!["CUDA", "etc (Python)"]);
        assert!(reg.get(Model::Python).is_some());
        assert!(reg.get(Model::Hip).is_none());
    }

    #[test]
    fn default_name_is_the_figure_column_header() {
        assert_eq!(Plain(Model::Alpaka).name(), "ALPAKA");
        assert_eq!(Plain(Model::Standard).name(), "Standard");
    }

    #[test]
    fn plain_frontend_agrees_with_the_matrix() {
        let cuda = Plain(Model::Cuda);
        assert!(cuda.open(Vendor::Nvidia).is_ok());
        assert!(cuda.open(Vendor::Amd).unwrap_err().is_refusal());
    }
}
