//! Typed device-transfer elements.
//!
//! Every model frontend moves `f32`/`f64` slices across the host↔device
//! boundary; before the spine existed each crate carried a hand-written
//! `memcpy_*`/`memcpy_*_f64` method *pair* per direction. [`Element`]
//! collapses the pairs: one generic transfer path, with the per-type
//! byte layout confined to these impls.

/// A plain-old-data element a device buffer can hold.
///
/// The contract mirrors what the simulated devices expect: fixed-size,
/// little-endian storage with natural alignment equal to the size.
pub trait Element: Copy + Send + Sync + 'static {
    /// Bytes one element occupies in device memory.
    const BYTES: usize;
    /// Type name for diagnostics ("f32", "f64").
    const NAME: &'static str;

    /// Serialize a slice into the device's little-endian byte layout.
    fn to_device_bytes(items: &[Self]) -> Vec<u8>;

    /// Deserialize from the device's byte layout. `bytes.len()` must be a
    /// multiple of [`Element::BYTES`]; trailing partial elements are a
    /// logic error upstream and are dropped.
    fn from_device_bytes(bytes: &[u8]) -> Vec<Self>;
}

impl Element for f32 {
    const BYTES: usize = 4;
    const NAME: &'static str = "f32";

    fn to_device_bytes(items: &[Self]) -> Vec<u8> {
        items.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn from_device_bytes(bytes: &[u8]) -> Vec<Self> {
        bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect()
    }
}

impl Element for f64 {
    const BYTES: usize = 8;
    const NAME: &'static str = "f64";

    fn to_device_bytes(items: &[Self]) -> Vec<u8> {
        items.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn from_device_bytes(bytes: &[u8]) -> Vec<Self> {
        bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
    }
}

impl Element for u8 {
    const BYTES: usize = 1;
    const NAME: &'static str = "u8";

    fn to_device_bytes(items: &[Self]) -> Vec<u8> {
        items.to_vec()
    }

    fn from_device_bytes(bytes: &[u8]) -> Vec<Self> {
        bytes.to_vec()
    }
}

impl Element for i32 {
    const BYTES: usize = 4;
    const NAME: &'static str = "i32";

    fn to_device_bytes(items: &[Self]) -> Vec<u8> {
        items.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn from_device_bytes(bytes: &[u8]) -> Vec<Self> {
        bytes.chunks_exact(4).map(|c| i32::from_le_bytes(c.try_into().unwrap())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip() {
        let xs = [1.5f32, -2.25, 0.0, f32::MAX];
        let bytes = f32::to_device_bytes(&xs);
        assert_eq!(bytes.len(), xs.len() * f32::BYTES);
        assert_eq!(f32::from_device_bytes(&bytes), xs);
    }

    #[test]
    fn f64_roundtrip() {
        let xs = [0.1f64, 0.2, -1e300, f64::MIN_POSITIVE];
        let bytes = f64::to_device_bytes(&xs);
        assert_eq!(bytes.len(), xs.len() * f64::BYTES);
        assert_eq!(f64::from_device_bytes(&bytes), xs);
    }

    #[test]
    fn i32_roundtrip() {
        let xs = [i32::MIN, -1, 0, 7, i32::MAX];
        let bytes = i32::to_device_bytes(&xs);
        assert_eq!(i32::from_device_bytes(&bytes), xs);
    }

    #[test]
    fn names_and_sizes_are_coherent() {
        assert_eq!(f32::NAME, "f32");
        assert_eq!(f64::NAME, "f64");
        assert_eq!(f32::BYTES, std::mem::size_of::<f32>());
        assert_eq!(f64::BYTES, std::mem::size_of::<f64>());
    }
}
