//! # mcmm-frontend — the shared execution spine under every model frontend
//!
//! The paper's central observation is that the many programming models
//! are thin, vendor-flavored surfaces over the same launch-and-memcpy
//! reality. This crate is that reality, extracted once:
//!
//! ```text
//! model-cuda  model-hip  model-sycl … model-python      (surfaces)
//!      └──────────┴──────────┴──────────────┘
//!                 ExecutionSession                       (this crate)
//!            │ route resolution (executable routes only)
//!            │ typed H2D/D2H transfer (Element: f32/f64)
//!            │ CompileCache + per-route lint gate
//!            │ launch with route efficiency
//!            │ chaos fault hooks on every stage
//!                 mcmm-gpu-sim devices                   (substrate)
//! ```
//!
//! * [`ExecutionSession`] — device acquisition, tracked buffers, typed
//!   transfers, cached compilation, launch; opened per (model, language,
//!   vendor) and refusing exactly where the matrix refuses.
//! * [`Element`] — the `f32`/`f64` transfer trait that replaces the
//!   per-crate `memcpy_*`/`memcpy_*_f64` method pairs.
//! * [`FrontendError`] — the layered error taxonomy (routing / toolchain
//!   / device) each model maps into its idiomatic error enum without
//!   losing the cause chain.
//! * [`Frontend`] + [`FrontendRegistry`] — the uniform handle benchmarks
//!   iterate instead of hand-written per-model adapters.
//! * [`shared_cache`] — the process-wide [`CompileCache`] all sessions
//!   share by default, so identical kernels compile once across
//!   frontends, sweeps, and repetitions.

mod element;
mod error;
mod registry;
mod session;

pub use element::Element;
pub use error::FrontendError;
pub use registry::{Frontend, FrontendRegistry};
pub use session::{shared_cache, DeviceBuffer, ExecutionSession};

pub use mcmm_toolchain::{
    set_process_exec_tier, set_process_opt_level, CacheStats, CompileCache, ExecTier, OptLevel,
    OptStats, ProgramCacheStats,
};
