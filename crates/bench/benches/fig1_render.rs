//! E1 machinery bench: building the matrix and rendering Figure 1 in each
//! backend format.

use criterion::{criterion_group, criterion_main, Criterion};
use mcmm_core::matrix::CompatMatrix;
use mcmm_core::render;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.bench_function("build_matrix", |b| b.iter(|| black_box(CompatMatrix::paper())));

    let m = CompatMatrix::paper();
    g.bench_function("render_ascii", |b| b.iter(|| black_box(render::ascii::render(&m))));
    g.bench_function("render_markdown", |b| b.iter(|| black_box(render::markdown::render(&m))));
    g.bench_function("render_latex", |b| b.iter(|| black_box(render::latex::render(&m))));
    g.bench_function("render_html", |b| b.iter(|| black_box(render::html::render(&m))));
    g.bench_function("render_json", |b| b.iter(|| black_box(render::json::render(&m))));
    g.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
