//! A3 — the translation pipelines: HIPIFY and SYCLomatic rewriting, the
//! virtual compile step, and the end-to-end translated-program run vs the
//! native run.

use criterion::{criterion_group, criterion_main, Criterion};
use mcmm_gpu_sim::{Device, DeviceSpec};
use mcmm_translate::ast::cuda_saxpy_program;
use mcmm_translate::exec::run_program;
use mcmm_translate::{hipify, syclomatic};
use std::hint::black_box;

fn bench_translation(c: &mut Criterion) {
    let mut g = c.benchmark_group("a3_translation");
    g.sample_size(10);
    let program = cuda_saxpy_program(4096, 2.0);

    g.bench_function("hipify_rewrite", |b| b.iter(|| black_box(hipify::hipify(&program).unwrap())));
    g.bench_function("syclomatic_rewrite", |b| {
        b.iter(|| black_box(syclomatic::syclomatic(&program).unwrap()))
    });

    g.bench_function("native_cuda_on_nvidia", |b| {
        let dev = Device::new(DeviceSpec::nvidia_a100());
        b.iter(|| black_box(run_program(&program, &dev).unwrap()))
    });
    g.bench_function("hipified_on_amd", |b| {
        let dev = Device::new(DeviceSpec::amd_mi250x());
        let hip = hipify::hipify(&program).unwrap();
        b.iter(|| black_box(run_program(&hip, &dev).unwrap()))
    });
    g.bench_function("syclomatic_on_intel", |b| {
        let dev = Device::new(DeviceSpec::intel_pvc());
        let sycl = syclomatic::syclomatic(&program).unwrap().program;
        b.iter(|| black_box(run_program(&sycl, &dev).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);
