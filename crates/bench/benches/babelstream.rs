//! E6 wall-clock bench: BabelStream iterations through selected frontends
//! on each vendor device. (The *modeled* GB/s series comes from the
//! `babelstream` binary; this measures the simulator's own throughput.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcmm_babelstream::adapters::all_backends;
use mcmm_babelstream::StreamBackend;
use mcmm_core::taxonomy::Vendor;
use std::hint::black_box;

const N: usize = 8192;

fn backend(name: &str) -> Box<dyn StreamBackend> {
    all_backends()
        .into_iter()
        .find(|b| b.model_name() == name)
        .unwrap_or_else(|| panic!("no {name} backend registered"))
}

fn bench_streams(c: &mut Criterion) {
    let mut g = c.benchmark_group("babelstream_wallclock");
    g.sample_size(10);

    let sycl = backend("SYCL");
    let openmp = backend("OpenMP");

    let native: Vec<(&'static str, Box<dyn StreamBackend>, Vendor)> = vec![
        ("cuda_on_nvidia", backend("CUDA"), Vendor::Nvidia),
        ("hip_on_amd", backend("HIP"), Vendor::Amd),
        ("sycl_on_intel", backend("SYCL"), Vendor::Intel),
    ];
    for (name, backend, vendor) in &native {
        g.bench_with_input(BenchmarkId::new("native", name), vendor, |b, &v| {
            b.iter(|| black_box(backend.run(v, N, 1).expect("run")))
        });
    }

    // The portable models across all vendors.
    for vendor in Vendor::ALL {
        g.bench_with_input(BenchmarkId::new("sycl", vendor.name()), &vendor, |b, &v| {
            b.iter(|| black_box(sycl.run(v, N, 1).expect("run")))
        });
        g.bench_with_input(BenchmarkId::new("openmp", vendor.name()), &vendor, |b, &v| {
            b.iter(|| black_box(openmp.run(v, N, 1).expect("run")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_streams);
criterion_main!(benches);
