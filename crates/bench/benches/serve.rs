//! Serving-layer bench: cold vs warm compile-cache submission, and
//! end-to-end seeded workload replay through the concurrent service.
//!
//! The headline comparison is `submit/cold_cache` vs `submit/warm_cache`:
//! a cold submission pays route resolution + lint gate + ISA translation,
//! a warm one is a cache lookup plus scheduling. The content-addressed
//! cache must make the warm path at least an order of magnitude faster.

use criterion::{criterion_group, criterion_main, Criterion};
use mcmm_core::taxonomy::{Language, Model, Vendor};
use mcmm_gpu_sim::device::KernelArg;
use mcmm_gpu_sim::ir::{BinOp, CmpOp, KernelBuilder, KernelIr, Space, Type};
use mcmm_serve::workload::{Workload, WorkloadConfig};
use mcmm_serve::{ArgSpec, JobSpec, ServeConfig, Service};
use mcmm_toolchain::Registry;
use std::hint::black_box;

/// A compilation-heavy kernel: an unrolled degree-`depth` Horner chain,
/// `y[i] = (((x·a + x)·a + x)·a + x)…`. Real workloads submit kernels of
/// this size (unrolled stencils, fused element-wise towers); the cold
/// path pays lint + ISA translation proportional to the body, while the
/// warm path is one structural fingerprint plus a map lookup.
fn heavy_kernel(depth: usize) -> KernelIr {
    let mut k = KernelBuilder::new("horner_tower");
    let a = k.param(Type::F32);
    let x = k.param(Type::I64);
    let y = k.param(Type::I64);
    let n = k.param(Type::I32);
    let i = k.global_thread_id_x();
    let ok = k.cmp(CmpOp::Lt, i, n);
    k.if_(ok, |k| {
        let xi = k.ld_elem(Space::Global, Type::F32, x, i);
        let mut v = xi;
        for _ in 0..depth {
            let av = k.bin(BinOp::Mul, a, v);
            v = k.bin(BinOp::Add, av, xi);
        }
        k.st_elem(Space::Global, y, i, v);
    });
    k.finish()
}

fn spec(n: u64) -> JobSpec {
    JobSpec {
        kernel: heavy_kernel(512),
        model: Model::Cuda,
        language: Language::Cpp,
        vendor: Vendor::Nvidia,
        n,
        block_dim: 128,
        args: vec![
            ArgSpec::Scalar(KernelArg::F32(0.5)),
            ArgSpec::In(vec![0u8; n as usize * 4]),
            ArgSpec::In(vec![0u8; n as usize * 4]),
            ArgSpec::Scalar(KernelArg::I32(n as i32)),
        ],
        after: vec![],
        read_back: None,
    }
}

fn bench_submission(c: &mut Criterion) {
    let mut g = c.benchmark_group("submit");
    let n = 64u64;
    // A deep admission queue so the measured path is submission itself;
    // execution drains asynchronously on the stream workers.
    let deep = ServeConfig { queue_depth: 1 << 20, ..ServeConfig::default() };
    let job = spec(n);

    // Cold: every submission sees an empty cache — the full compile path
    // (route resolution, analyzer lint gate, ISA translation) runs.
    g.bench_function("cold_cache", |b| {
        let service = Service::new(deep);
        b.iter(|| {
            service.cache().clear();
            let h = service.submit(job.clone()).unwrap();
            assert!(!h.cache_hit, "cache was cleared; submission must miss");
            black_box(h.id)
        });
        service.drain();
    });

    // Warm: identical job, artifact already cached — the submission is a
    // content-addressed lookup plus scheduling.
    g.bench_function("warm_cache", |b| {
        let service = Service::new(deep);
        service.submit(job.clone()).unwrap().wait();
        b.iter(|| {
            let h = service.submit(job.clone()).unwrap();
            assert!(h.cache_hit, "repeat submission must hit the cache");
            black_box(h.id)
        });
        service.drain();
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    let registry = Registry::paper();
    let workload = Workload::generate(
        WorkloadConfig { jobs: 60, seed: 0xBEEF, n: 64, chain_percent: 40, duplicate_percent: 0 },
        &registry,
    );
    g.bench_function("replay_60_jobs_concurrent", |b| {
        b.iter(|| {
            let service = Service::new(ServeConfig::default());
            let mut ids = Vec::new();
            let mut handles = Vec::new();
            for planned in &workload.jobs {
                let h = service.submit(planned.to_spec(&ids)).unwrap();
                ids.push(h.id);
                handles.push(h);
            }
            for h in handles {
                black_box(h.wait());
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_submission, bench_workload);
criterion_main!(benches);
