//! A1/A2 — simulator ablations.
//!
//! * **A1 (SIMT width)**: the interpreter executes a whole block as a wide
//!   lane vector; launching the same total work as 1-thread blocks forces
//!   scalar-style interpretation, exposing the dispatch amortisation.
//! * **A2 (block scheduling)**: static contiguous partitioning vs dynamic
//!   self-scheduling under a skewed per-block workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcmm_gpu_sim::device::{Device, KernelArg, LaunchConfig};
use mcmm_gpu_sim::ir::{BinOp, CmpOp, KernelBuilder, KernelIr, Space, Type, Value};
use mcmm_gpu_sim::isa::{assemble, IsaKind};
use mcmm_gpu_sim::sched::SchedulePolicy;
use mcmm_gpu_sim::DeviceSpec;
use std::hint::black_box;

fn saxpy() -> KernelIr {
    let mut k = KernelBuilder::new("saxpy");
    let a = k.param(Type::F32);
    let x = k.param(Type::I64);
    let y = k.param(Type::I64);
    let n = k.param(Type::I32);
    let i = k.global_thread_id_x();
    let ok = k.cmp(CmpOp::Lt, i, n);
    k.if_(ok, |k| {
        let xi = k.ld_elem(Space::Global, Type::F32, x, i);
        let yi = k.ld_elem(Space::Global, Type::F32, y, i);
        let ax = k.bin(BinOp::Mul, a, xi);
        let s = k.bin(BinOp::Add, ax, yi);
        k.st_elem(Space::Global, y, i, s);
    });
    k.finish()
}

/// Per-lane trip counts skewed by block: block b loops (b % 64) * 8 times.
fn skewed() -> KernelIr {
    let mut k = KernelBuilder::new("skewed");
    let y = k.param(Type::I64);
    let i = k.global_thread_id_x();
    let bid = k.block_id_x();
    let m = k.bin(BinOp::Rem, bid, Value::I32(64));
    let trips = k.bin(BinOp::Mul, m, Value::I32(8));
    let j = k.imm(Value::I32(0));
    let acc = k.imm(Value::F32(0.0));
    k.while_(
        |k| k.cmp(CmpOp::Lt, j, trips),
        |k| {
            k.bin_assign(BinOp::Add, acc, Value::F32(1.0));
            k.bin_assign(BinOp::Add, j, Value::I32(1));
        },
    );
    k.st_elem(Space::Global, y, i, acc);
    k.finish()
}

fn bench_simt_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("a1_simt_width");
    g.sample_size(10);
    let dev = Device::new(DeviceSpec::nvidia_a100());
    let module = assemble(&saxpy(), IsaKind::PtxLike).unwrap();
    let n = 1 << 14;
    let dx = dev.alloc_copy_f32(&vec![1.0; n]).unwrap();
    let dy = dev.alloc_copy_f32(&vec![1.0; n]).unwrap();
    let args =
        [KernelArg::F32(2.0), KernelArg::Ptr(dx), KernelArg::Ptr(dy), KernelArg::I32(n as i32)];
    for block_dim in [1u32, 32, 256] {
        g.bench_with_input(BenchmarkId::new("block_dim", block_dim), &block_dim, |b, &bd| {
            let cfg = LaunchConfig::linear(n as u64, bd);
            b.iter(|| black_box(dev.launch(&module, cfg, &args).unwrap()))
        });
    }
    g.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    let mut g = c.benchmark_group("a2_scheduling");
    g.sample_size(10);
    let dev = Device::new(DeviceSpec::nvidia_a100());
    let module = assemble(&skewed(), IsaKind::PtxLike).unwrap();
    let blocks = 256u32;
    let bd = 64u32;
    let dy = dev.alloc_copy_f32(&vec![0.0; (blocks * bd) as usize]).unwrap();
    for (name, policy) in [("static", SchedulePolicy::Static), ("dynamic", SchedulePolicy::Dynamic)]
    {
        g.bench_function(name, |b| {
            let cfg = LaunchConfig { grid_dim: blocks, block_dim: bd, policy, efficiency: 1.0 };
            b.iter(|| black_box(dev.launch(&module, cfg, &[KernelArg::Ptr(dy)]).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simt_width, bench_scheduling);
criterion_main!(benches);
