//! E3/E7 machinery bench: the §3 rating engine replayed over the full
//! dataset, plus an evolution event storm.

use criterion::{criterion_group, criterion_main, Criterion};
use mcmm_core::evolution::{apply, Event};
use mcmm_core::matrix::CompatMatrix;
use mcmm_core::provider::Maintenance;
use mcmm_core::rating::rate;
use std::hint::black_box;

fn bench_rating(c: &mut Criterion) {
    let mut g = c.benchmark_group("rating");
    let cells = mcmm_core::dataset::paper_cells();
    g.bench_function("rate_all_51_cells", |b| {
        b.iter(|| {
            for cell in &cells {
                black_box(rate(&cell.routes));
            }
        })
    });

    g.bench_function("evolution_storm", |b| {
        let toolchains: Vec<&'static str> =
            cells.iter().flat_map(|c| c.routes.iter().map(|r| r.toolchain)).collect();
        let events: Vec<Event> = toolchains
            .iter()
            .map(|&t| Event::SetMaintenance { toolchain: t, status: Maintenance::Stale })
            .collect();
        b.iter(|| {
            let mut m = CompatMatrix::paper();
            black_box(apply(&mut m, &events))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_rating);
criterion_main!(benches);
