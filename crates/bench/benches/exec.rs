//! Execution-tier microbenchmark: the BabelStream triad inner loop
//! (`a[i] = b[i] + scalar * c[i]`) through the scalar reference
//! interpreter vs the lowered lane-vector tier, on one simulated A100.
//!
//! The tentpole target is a ≥5× wall-clock speedup for the vectorized
//! tier at `block_dim ≥ 256`; `cargo run -p mcmm-bench --bin exec --
//! --smoke` enforces the weaker monotone form (vectorized ≥ scalar) in
//! CI, where criterion timings would be too noisy to gate on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcmm_babelstream::adapters::stream_kernels;
use mcmm_babelstream::{START_A, START_B, START_C};
use mcmm_gpu_sim::device::{Device, ExecTier, KernelArg, LaunchConfig};
use mcmm_gpu_sim::DeviceSpec;
use std::hint::black_box;

fn bench_triad_tiers(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_tier_triad");
    g.sample_size(10);
    let triad = stream_kernels()[3].clone();
    let n = 1usize << 16;
    for (label, tier) in [("scalar", ExecTier::Scalar), ("vectorized", ExecTier::Vectorized)] {
        let dev = Device::new(DeviceSpec::nvidia_a100());
        dev.set_exec_tier(tier);
        let da = dev.alloc_copy_f64(&vec![START_A; n]).unwrap();
        let db = dev.alloc_copy_f64(&vec![START_B; n]).unwrap();
        let dc = dev.alloc_copy_f64(&vec![START_C; n]).unwrap();
        let dsum = dev.alloc_copy_f64(&[0.0]).unwrap();
        let args = [
            KernelArg::Ptr(da),
            KernelArg::Ptr(db),
            KernelArg::Ptr(dc),
            KernelArg::Ptr(dsum),
            KernelArg::I32(n as i32),
        ];
        let cfg = LaunchConfig::linear(n as u64, 256);
        g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            b.iter(|| black_box(dev.launch_kernel(&triad, cfg, &args).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_triad_tiers);
criterion_main!(benches);
