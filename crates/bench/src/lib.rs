//! # mcmm-bench — the experiment harness
//!
//! Binaries regenerate every table/figure of the paper (see DESIGN.md's
//! experiment index and EXPERIMENTS.md for paper-vs-measured):
//!
//! * `figure1` — **E1**: the compatibility matrix in ASCII, Markdown,
//!   LaTeX, HTML, and JSON.
//! * `stats` — **E2/E5**: the headline counts (51 combinations, 44 unique
//!   descriptions, >50 routes) and the §6 conclusions as computed queries.
//! * `probe` — **E4**: the executable probe regenerating the matrix from
//!   observed compile/run behaviour.
//! * `babelstream` — **E6**: the model × vendor performance sweep the
//!   paper defers to future work.
//! * `topicality` — **E7**: §5 ecosystem-evolution scenarios re-rated by
//!   the engine.
//!
//! Criterion benches (`cargo bench`) measure the machinery itself:
//! rendering, the rating engine, the simulator ablations (A1 SIMT width,
//! A2 scheduling), the translator pipeline (A3), and wall-clock
//! BabelStream runs.

/// Shared default problem size for benchmark binaries (elements per
/// array). 2²⁰ puts the modeled kernels firmly in the bandwidth-bound
/// regime (memory time ≈ 3× launch latency) while the interpreter still
/// sweeps all 27 cells in under a minute in release mode.
pub const DEFAULT_STREAM_N: usize = 1 << 20;

/// Shared default iteration count for BabelStream binaries.
pub const DEFAULT_STREAM_ITERS: usize = 1;

/// Parse `--n <usize>` / `--iters <usize>`-style overrides from argv.
pub fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> =
            ["prog", "--n", "1024", "--iters", "7"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_usize(&args, "--n", 1), 1024);
        assert_eq!(arg_usize(&args, "--iters", 1), 7);
        assert_eq!(arg_usize(&args, "--missing", 42), 42);
        let bad: Vec<String> = ["prog", "--n"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_usize(&bad, "--n", 9), 9);
    }
}
