//! E1 — regenerate Figure 1 in every format.
//!
//! ```text
//! cargo run -p mcmm-bench --bin figure1 [--format ascii|markdown|latex|html|json|descriptions|all]
//! ```

use mcmm_core::matrix::CompatMatrix;
use mcmm_core::render;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let format = args
        .iter()
        .position(|a| a == "--format")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("ascii")
        .to_owned();

    let matrix = CompatMatrix::paper();
    let print = |name: &str, body: String| {
        println!("── Figure 1 ({name}) ──");
        println!("{body}");
    };
    match format.as_str() {
        "ascii" => print("ASCII", render::ascii::render(&matrix)),
        "markdown" => print("Markdown", render::markdown::render(&matrix)),
        "latex" => print("LaTeX", render::latex::render(&matrix)),
        "html" => print("HTML", render::html::render(&matrix)),
        "json" => print("JSON", render::json::render(&matrix)),
        "descriptions" => print("§4 descriptions", render::descriptions::render(&matrix)),
        "all" => {
            print("ASCII", render::ascii::render(&matrix));
            print("Markdown", render::markdown::render(&matrix));
            print("LaTeX", render::latex::render(&matrix));
            print("HTML", render::html::render(&matrix));
            print("JSON", render::json::render(&matrix));
            print("§4 descriptions", render::descriptions::render(&matrix));
        }
        other => {
            eprintln!(
                "unknown format {other}; use ascii|markdown|latex|html|json|descriptions|all"
            );
            std::process::exit(2);
        }
    }
}
