//! X4 — chaos: replay the canonical workload through the execution
//! service under a seeded fault storm (transient faults at every pipeline
//! stage plus one sticky route outage per vendor), with the matrix-driven
//! failover router switched on — then off — and verify the resilience
//! contract:
//!
//! * failover ON: zero lost jobs, every result buffer byte-identical to
//!   fault-free serial execution, at least one retry, one cross-route
//!   failover, and one quarantined route;
//! * failover OFF, same seed: jobs are demonstrably lost;
//! * the whole run replays bit-for-bit from the seed alone.
//!
//! Usage: `cargo run -p mcmm-bench --bin chaos [--] [--smoke] [--jobs N]
//! [--seed S] [--json]`. Exits non-zero on any violated invariant, so
//! this binary doubles as the CI chaos gate.

use mcmm_chaos::{ChaosConfig, FaultInjector};
use mcmm_core::taxonomy::Vendor;
use mcmm_serve::workload::{run_serial, Workload, WorkloadConfig};
use mcmm_serve::{
    FailoverPolicy, FailoverRouter, FailoverStats, ServeConfig, ServeReport, Service,
};
use mcmm_toolchain::Registry;
use std::time::Instant;

/// The canonical storm: every stage can break, and each vendor's
/// first-rated route for one busy cell is down for the whole run —
/// NVIDIA's CUDA C++ toolkit, AMD's and Intel's first-choice SYCL
/// compilers — so every device must exercise real cross-route failover.
fn storm(seed: u64) -> ChaosConfig {
    ChaosConfig::storm(seed)
        .with_outage("CUDA Toolkit (nvcc)", Some(Vendor::Nvidia))
        .with_outage("DPC++ (ROCm plugin)", Some(Vendor::Amd))
        .with_outage("Intel oneAPI DPC++ (icpx -fsycl)", Some(Vendor::Intel))
}

struct Outcome {
    outputs: Vec<Option<Vec<u8>>>,
    stats: FailoverStats,
    report: ServeReport,
    example_trace: Option<String>,
}

/// One full pass: fresh service, fresh injector, sequential failover run.
fn run(jobs: usize, seed: u64, policy: FailoverPolicy) -> Outcome {
    let service = std::sync::Arc::new(Service::new(ServeConfig::default()));
    let injector = std::sync::Arc::new(FaultInjector::new(storm(seed)));
    let workload =
        Workload::generate(WorkloadConfig { jobs, seed, ..Default::default() }, service.registry());
    let mut router = FailoverRouter::new(
        std::sync::Arc::clone(&service),
        std::sync::Arc::clone(&injector),
        policy,
    );
    let wall = Instant::now();
    let outputs = router.run(&workload);
    service.drain();
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let report = ServeReport::collect(&service, router.completions(), seed, wall_ms)
        .with_failover(router.stats().clone());
    let example_trace = router
        .traces()
        .iter()
        .find(|t| {
            t.rating_delta > 0
                && t.final_route.is_some()
                && t.attempts.iter().any(|a| a.error.is_some())
        })
        .map(|t| {
            let steps: Vec<String> = t
                .attempts
                .iter()
                .map(|a| match &a.error {
                    Some(e) => format!("{} ✗ ({e})", a.route),
                    None => format!("{} ✓", a.route),
                })
                .collect();
            format!("job {}: {} (rating delta +{})", t.job, steps.join(" → "), t.rating_delta)
        });
    Outcome { outputs, stats: router.stats().clone(), report, example_trace }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let smoke = flag("--smoke");
    let jobs = value("--jobs")
        .map(|v| v.parse().expect("--jobs takes a number"))
        .unwrap_or(if smoke { 60 } else { 500 });
    let seed =
        value("--seed").map(|v| v.parse().expect("--seed takes a number")).unwrap_or(0xC0FFEE);
    let json = flag("--json");

    let with_failover = run(jobs, seed, FailoverPolicy::default());
    if json {
        println!("{}", with_failover.report.to_json());
    } else {
        println!("── Fault storm over the executable matrix (X4) ──");
        println!("workload: {jobs} jobs, failover ON, storm seed {seed:#x}");
        print!("{}", with_failover.report.render());
        if let Some(t) = &with_failover.example_trace {
            println!("  trace      {t}");
        }
    }

    let mut failed = false;
    let s = &with_failover.stats;
    if s.lost != 0 {
        eprintln!("FAIL: failover lost {} jobs", s.lost);
        failed = true;
    }
    if s.retries == 0 {
        eprintln!("FAIL: the storm forced no retries");
        failed = true;
    }
    if s.failovers == 0 {
        eprintln!("FAIL: the outages forced no cross-route failover");
        failed = true;
    }
    if s.quarantined.is_empty() {
        eprintln!("FAIL: no route tripped the circuit breaker");
        failed = true;
    }

    // Byte identity: a rescued job returns exactly the bytes it would
    // have produced without the storm (routes differ only in rating and
    // modeled efficiency, never in results — the portability argument).
    let registry = Registry::paper();
    let workload =
        Workload::generate(WorkloadConfig { jobs, seed, ..Default::default() }, &registry);
    let serial = run_serial(&workload, &registry);
    let divergent = serial
        .iter()
        .zip(&with_failover.outputs)
        .filter(|(expect, got)| got.as_ref() != Some(expect))
        .count();
    if divergent > 0 {
        eprintln!("FAIL: {divergent} rescued jobs diverged from fault-free serial execution");
        failed = true;
    } else if !json {
        println!("verify: all {} result buffers byte-identical to serial execution", serial.len());
    }

    // The counterfactual: same seed, no safety net → lost jobs.
    let without = run(jobs, seed, FailoverPolicy::disabled());
    if without.stats.lost == 0 {
        eprintln!("FAIL: disabling failover lost nothing — the storm has no teeth");
        failed = true;
    } else if !json {
        println!(
            "verify: failover OFF loses {} of {} jobs under the same storm",
            without.stats.lost, jobs
        );
    }

    // Reproducibility: the whole run replays from the seed alone.
    if !smoke {
        let replay = run(jobs, seed, FailoverPolicy::default());
        let identical = replay.outputs == with_failover.outputs
            && replay.stats.retries == s.retries
            && replay.stats.failovers == s.failovers
            && replay.stats.quarantined == s.quarantined
            && replay.stats.backoff_us_total == s.backoff_us_total;
        if !identical {
            eprintln!("FAIL: same seed, different storm — determinism broken");
            failed = true;
        } else if !json {
            println!("verify: second run of seed {seed:#x} is bit-identical");
        }
    }

    if failed {
        std::process::exit(1);
    }
}
