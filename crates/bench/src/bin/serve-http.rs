//! X8 — the front-door under load: drive a seeded mixed-route workload
//! through the gateway's real HTTP surface with a loopback client pool,
//! twice against the same artifact directory (a cold process and a warm
//! restart), and verify every wire response byte-for-byte against serial
//! in-process execution.
//!
//! Usage: `cargo run --release -p mcmm-bench --bin serve-http -- [--smoke]
//! [--jobs N] [--seed S] [--clients C] [--shards K] [--duplicates P]
//! [--json]`. `--smoke` shrinks the workload for CI; the full run drives
//! ≥100k requests. Writes `BENCH_serve_http.json` (latency percentiles,
//! dedupe ratio, cold-vs-warm cache hit rates) on full runs. Exits
//! non-zero if any invariant fails, so this binary doubles as the
//! end-to-end smoke gate for the gateway.
//!
//! Invariants enforced here:
//! * every request answers 200 and its checksum equals the serial
//!   reference's (the coalescer and the failover router change *when*
//!   work happens, never *what* it computes);
//! * the in-flight coalescer merged at least one duplicate submission
//!   (the workload's `duplicate_percent` knob makes this measurable);
//! * the warm restart's effective cache hit rate is strictly above the
//!   cold process's, and the warm restart compiles nothing
//!   (`disk_fills == 0`) — the disk tier genuinely persists artifacts;
//! * `/v1/stats` reports live memory rows (`mem_traced_launches > 0`) —
//!   the default-on trace pipeline is actually running under load, not
//!   silently disabled;
//! * on the default full workload, p99 latency stays within 20% of the
//!   pre-tracing baseline (`BENCH_serve_http.json` from the gateway PR)
//!   — the production claim that tracing is cheap enough to leave on.
//!   The 20% budget needs cores for the per-block replay to overlap
//!   with; hosts under 4 cores get a regression-backstop budget instead.

use mcmm_gateway::{Gateway, GatewayConfig, HttpClient, SubmitRequest, SubmitResponse};
use mcmm_gateway::{HttpServer, TenantPolicy};
use mcmm_gpu_sim::diffval::fnv1a;
use mcmm_serve::workload::{run_serial, PlannedInput, PlannedJob, Workload, WorkloadConfig};
use mcmm_serve::LatencyStats;
use mcmm_toolchain::Registry;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// Lower a planned job to the gateway's wire vocabulary. Only fresh-input
/// jobs can cross the wire (chains alias in-process device buffers), so
/// the workload is generated with `chain_percent: 0`.
fn to_wire(job: &PlannedJob, tenant: &str) -> SubmitRequest {
    let x = match &job.x {
        PlannedInput::Fresh(data) => data.clone(),
        PlannedInput::ChainedFrom(_) => unreachable!("HTTP workload plans no chains"),
    };
    SubmitRequest {
        tenant: tenant.to_owned(),
        shape: job.shape.name().to_owned(),
        model: job.model.name().to_owned(),
        language: job.language.name().to_owned(),
        vendor: job.vendor.name().to_owned(),
        a: job.a,
        x,
        y: job.y.clone(),
    }
}

/// One run's wire-level outcome.
struct RunOutcome {
    /// Response checksum per plan index.
    checksums: Vec<String>,
    /// Per-request wall-clock latencies (seconds).
    latencies: Vec<f64>,
    /// Non-200 responses, with status and body.
    failures: Vec<(usize, u16, String)>,
    /// Wall-clock of the whole run (seconds).
    wall_s: f64,
}

/// Drive the full workload through `addr` with a pool of persistent
/// keep-alive connections. Plan index `i` goes to client `i % clients`,
/// so a replay of a recent job lands on a *different* connection at
/// nearly the same time — the overlap the coalescer exists to merge.
fn drive(addr: SocketAddr, bodies: &Arc<Vec<String>>, clients: usize) -> RunOutcome {
    let wall = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let bodies = Arc::clone(bodies);
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).expect("client connects");
                let mut results = Vec::new();
                let mut idx = c;
                while idx < bodies.len() {
                    let body = &bodies[idx];
                    let t = Instant::now();
                    let (status, resp) = client
                        .request("POST", "/v1/submit", Some(body.as_bytes()))
                        .expect("exchange completes");
                    let latency = t.elapsed().as_secs_f64();
                    let checksum = if status == 200 {
                        serde_json::from_str::<SubmitResponse>(
                            std::str::from_utf8(&resp).expect("utf8 response"),
                        )
                        .expect("well-formed response")
                        .checksum
                    } else {
                        String::from_utf8_lossy(&resp).into_owned()
                    };
                    results.push((idx, status, checksum, latency));
                    idx += clients;
                }
                results
            })
        })
        .collect();
    let mut checksums = vec![String::new(); bodies.len()];
    let mut latencies = Vec::with_capacity(bodies.len());
    let mut failures = Vec::new();
    for h in handles {
        for (idx, status, payload, latency) in h.join().expect("client thread") {
            latencies.push(latency);
            if status == 200 {
                checksums[idx] = payload;
            } else {
                failures.push((idx, status, payload));
            }
        }
    }
    RunOutcome { checksums, latencies, failures, wall_s: wall.elapsed().as_secs_f64() }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let smoke = flag("--smoke");
    let jobs: usize = value("--jobs")
        .map(|v| v.parse().expect("--jobs takes a number"))
        .unwrap_or(if smoke { 3_000 } else { 100_000 });
    let seed: u64 =
        value("--seed").map(|v| v.parse().expect("--seed takes a number")).unwrap_or(0xFACADE);
    let clients: usize = value("--clients")
        .map(|v| v.parse().expect("--clients takes a number"))
        .unwrap_or(8)
        .max(1);
    let shards: usize =
        value("--shards").map(|v| v.parse().expect("--shards takes a number")).unwrap_or(4).max(1);
    let duplicate_percent: usize = value("--duplicates")
        .map(|v| v.parse().expect("--duplicates takes a percent"))
        .unwrap_or(25);
    let json = flag("--json");

    let registry = Registry::paper();
    let n = 256;
    let workload = Workload::generate(
        WorkloadConfig { jobs, seed, n, chain_percent: 0, duplicate_percent },
        &registry,
    );
    let tenants: Vec<String> = (0..4).map(|t| format!("bench-{t}")).collect();
    let bodies: Arc<Vec<String>> = Arc::new(
        workload
            .jobs
            .iter()
            .enumerate()
            .map(|(i, job)| {
                serde_json::to_string(&to_wire(job, &tenants[i % tenants.len()]))
                    .expect("request serializes")
            })
            .collect(),
    );

    // Serial in-process ground truth: one device per vendor, one job at a
    // time. The gateway's answers must match these bytes exactly.
    let expected: Vec<String> = run_serial(&workload, &registry)
        .iter()
        .map(|bytes| format!("{:016x}", fnv1a(bytes)))
        .collect();

    let dir = std::env::temp_dir().join(format!("mcmm-serve-http-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || GatewayConfig {
        shards,
        // The bench measures serving, not admission: a bucket deep enough
        // that no tenant throttles.
        tenant: TenantPolicy { burst: 1e12, per_second: 1e12 },
        artifact_dir: Some(dir.clone()),
        ..GatewayConfig::default()
    };

    // Cold process: every route compiles once, artifacts persist to disk.
    let (cold, cold_stats, wire_mem_launches) = {
        let gateway = Arc::new(Gateway::new(cfg()).expect("cold gateway up"));
        let server = HttpServer::start("127.0.0.1:0", gateway, clients.min(8)).expect("bind");
        let outcome = drive(server.addr(), &bodies, clients);
        // Read the memory rows over the wire, not in-process: the check
        // is that an operator polling `/v1/stats` sees tracing live.
        let mut probe = HttpClient::connect(server.addr()).expect("stats client connects");
        let (status, body) = probe.request("GET", "/v1/stats", None).expect("stats exchange");
        assert_eq!(status, 200, "/v1/stats answers 200");
        let wire: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&body).expect("utf8 stats"))
                .expect("well-formed stats JSON");
        let wire_mem_launches =
            wire["mem_traced_launches"].as_u64().expect("stats carry mem_traced_launches");
        let stats = server.gateway().stats();
        server.shutdown();
        (outcome, stats, wire_mem_launches)
    };
    // Warm restart: a new process image over the same artifact directory.
    let (warm, warm_stats) = {
        let gateway = Arc::new(Gateway::new(cfg()).expect("warm gateway up"));
        let server = HttpServer::start("127.0.0.1:0", gateway, clients.min(8)).expect("bind");
        let outcome = drive(server.addr(), &bodies, clients);
        let stats = server.gateway().stats();
        server.shutdown();
        (outcome, stats)
    };
    let _ = std::fs::remove_dir_all(&dir);

    let effective_hit_rate = |hits: u64, disk_hits: u64, misses: u64| {
        (hits + disk_hits) as f64 / ((hits + misses).max(1)) as f64
    };
    let cold_hit_rate =
        effective_hit_rate(cold_stats.cache_hits, cold_stats.disk_hits, cold_stats.cache_misses);
    let warm_hit_rate =
        effective_hit_rate(warm_stats.cache_hits, warm_stats.disk_hits, warm_stats.cache_misses);
    let cold_latency = LatencyStats::from_seconds(&cold.latencies);
    let warm_latency = LatencyStats::from_seconds(&warm.latencies);
    let requests_total = cold.latencies.len() + warm.latencies.len();
    let dedupe_joins = cold_stats.coalesce_joins + warm_stats.coalesce_joins;
    let dedupe_ratio = dedupe_joins as f64
        / (cold_stats.coalesce_leads + warm_stats.coalesce_leads + dedupe_joins).max(1) as f64;

    let report = format!(
        concat!(
            "{{\n",
            "  \"jobs\": {jobs},\n",
            "  \"seed\": {seed},\n",
            "  \"n\": {n},\n",
            "  \"clients\": {clients},\n",
            "  \"shards\": {shards},\n",
            "  \"duplicate_percent\": {dup},\n",
            "  \"requests_total\": {requests_total},\n",
            "  \"dedupe_ratio\": {dedupe_ratio:.4},\n",
            "  \"cold\": {{ \"p50_us\": {c50:.1}, \"p99_us\": {c99:.1}, ",
            "\"throughput_rps\": {crps:.0}, \"effective_hit_rate\": {chr:.4}, ",
            "\"coalesce_joins\": {cj}, \"disk_hits\": {cdh}, \"disk_fills\": {cdf} }},\n",
            "  \"warm\": {{ \"p50_us\": {w50:.1}, \"p99_us\": {w99:.1}, ",
            "\"throughput_rps\": {wrps:.0}, \"effective_hit_rate\": {whr:.4}, ",
            "\"coalesce_joins\": {wj}, \"disk_hits\": {wdh}, \"disk_fills\": {wdf} }},\n",
            "  \"checksums_match\": {ok}\n",
            "}}"
        ),
        jobs = jobs,
        seed = seed,
        n = n,
        clients = clients,
        shards = shards,
        dup = duplicate_percent,
        requests_total = requests_total,
        dedupe_ratio = dedupe_ratio,
        c50 = cold_latency.p50_us,
        c99 = cold_latency.p99_us,
        crps = jobs as f64 / cold.wall_s,
        chr = cold_hit_rate,
        cj = cold_stats.coalesce_joins,
        cdh = cold_stats.disk_hits,
        cdf = cold_stats.disk_fills,
        w50 = warm_latency.p50_us,
        w99 = warm_latency.p99_us,
        wrps = jobs as f64 / warm.wall_s,
        whr = warm_hit_rate,
        wj = warm_stats.coalesce_joins,
        wdh = warm_stats.disk_hits,
        wdf = warm_stats.disk_fills,
        ok = cold.failures.is_empty()
            && warm.failures.is_empty()
            && cold.checksums == expected
            && warm.checksums == expected,
    );

    if json {
        println!("{report}");
    } else {
        println!("── Serving the matrix over HTTP (X7) ──");
        println!(
            "workload: {jobs} jobs ({duplicate_percent}% duplicates) × 2 runs = \
             {requests_total} requests over {clients} connections → {shards} shards"
        );
        println!(
            "cold:  p50 {:.0}µs  p99 {:.0}µs  {:.0} req/s  hit rate {:.1}%  \
             ({} coalesced, {} disk fills)",
            cold_latency.p50_us,
            cold_latency.p99_us,
            jobs as f64 / cold.wall_s,
            cold_hit_rate * 100.0,
            cold_stats.coalesce_joins,
            cold_stats.disk_fills,
        );
        println!(
            "warm:  p50 {:.0}µs  p99 {:.0}µs  {:.0} req/s  hit rate {:.1}%  \
             ({} coalesced, {} disk hits)",
            warm_latency.p50_us,
            warm_latency.p99_us,
            jobs as f64 / warm.wall_s,
            warm_hit_rate * 100.0,
            warm_stats.coalesce_joins,
            warm_stats.disk_hits,
        );
    }

    if !smoke {
        std::fs::write("BENCH_serve_http.json", format!("{report}\n"))
            .expect("write BENCH_serve_http.json");
        eprintln!("wrote BENCH_serve_http.json");
    }

    // Invariants — the CI gate.
    let mut failed = false;
    for (name, outcome) in [("cold", &cold), ("warm", &warm)] {
        for (idx, status, body) in outcome.failures.iter().take(5) {
            eprintln!("FAIL: {name} request {idx} answered {status}: {body}");
        }
        if !outcome.failures.is_empty() {
            eprintln!("FAIL: {name} run had {} non-200 responses", outcome.failures.len());
            failed = true;
        }
        let divergent =
            outcome.checksums.iter().zip(&expected).filter(|(got, want)| got != want).count();
        if divergent > 0 {
            eprintln!("FAIL: {name} run diverged from serial execution on {divergent} jobs");
            failed = true;
        } else if !json {
            println!(
                "verify: {name} run byte-identical to serial execution ({} checksums)",
                expected.len()
            );
        }
    }
    if dedupe_joins == 0 {
        eprintln!(
            "FAIL: {duplicate_percent}% duplicate submissions but the coalescer merged nothing"
        );
        failed = true;
    }
    if warm_hit_rate <= cold_hit_rate {
        eprintln!(
            "FAIL: warm restart hit rate {:.3} must beat cold {:.3}",
            warm_hit_rate, cold_hit_rate
        );
        failed = true;
    }
    if warm_stats.disk_fills != 0 {
        eprintln!("FAIL: warm restart recompiled {} artifacts", warm_stats.disk_fills);
        failed = true;
    }
    if wire_mem_launches == 0 {
        eprintln!(
            "FAIL: /v1/stats reports mem_traced_launches = 0 after {} requests — \
             default-on tracing is not reaching the shard devices",
            cold.latencies.len()
        );
        failed = true;
    }
    // Latency regression gate against the pre-tracing gateway baseline
    // (BENCH_serve_http.json as of the gateway PR, same default workload:
    // 100k jobs, 8 clients, 4 shards). Tracing on by default must not
    // move p99 by more than 20% — when there are cores for the per-block
    // replay to overlap with. On a narrower host every replay cycle
    // comes straight out of request throughput, so the budget is only a
    // backstop against gross regressions there. Only meaningful when the
    // workload knobs are at their defaults — a custom --jobs/--clients
    // run measures a different distribution.
    const BASELINE_COLD_P99_US: f64 = 3997.1;
    const BASELINE_WARM_P99_US: f64 = 4873.8;
    if smoke {
        // The smoke workload is too small to compare against the full
        // baseline, but a traced-by-default gateway melting down (lock
        // storms, unbounded replay) still shows up as a p99 blowout.
        const SMOKE_P99_CEILING_US: f64 = 25_000.0;
        for (name, p99) in [("cold", cold_latency.p99_us), ("warm", warm_latency.p99_us)] {
            if p99 > SMOKE_P99_CEILING_US {
                eprintln!(
                    "FAIL: {name} smoke p99 {p99:.1}µs exceeds the \
                     {SMOKE_P99_CEILING_US:.0}µs sanity ceiling"
                );
                failed = true;
            }
        }
    }
    if !smoke && jobs == 100_000 && clients == 8 && shards == 4 {
        let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
        let budget = if host_cores >= 4 { 1.2 } else { 2.5 };
        for (name, p99, baseline) in [
            ("cold", cold_latency.p99_us, BASELINE_COLD_P99_US),
            ("warm", warm_latency.p99_us, BASELINE_WARM_P99_US),
        ] {
            if p99 > baseline * budget {
                eprintln!(
                    "FAIL: {name} p99 {p99:.1}µs exceeds the pre-tracing baseline \
                     {baseline:.1}µs by more than {:.0}% ({host_cores} host cores)",
                    (budget - 1.0) * 100.0
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
