//! E2/E5 — the paper's headline numbers and §6 conclusions, computed.

use mcmm_core::matrix::CompatMatrix;
use mcmm_core::stats;
use mcmm_core::support::Support;
use mcmm_core::taxonomy::{Language, Vendor};

fn main() {
    let m = CompatMatrix::paper();
    let s = stats::stats(&m);

    println!("── Headline numbers (paper §1/§3) ──");
    println!("combinations explored:        {} (paper: 51)", s.combinations);
    println!("unique descriptions:          {} (paper: 44)", s.unique_descriptions);
    println!("routes encoded:               {} (paper: 'more than 50 routes')", s.routes);

    println!("\n── Cells per category ──");
    for (cat, n) in &s.by_category {
        println!("{:>2} × {} {}", n, cat.symbol(), cat.category_name());
    }

    println!("\n── Vendor comprehensiveness (score sum, best rating per cell) ──");
    for (v, score) in &s.vendor_scores {
        println!("{:>7}: {score}", v.name());
    }
    println!(
        "most comprehensive: {} (paper §6: 'support for NVIDIA GPUs … most comprehensive')",
        stats::most_comprehensive_vendor(&m)
    );

    println!("\n── Language gap (paper §6: Fortran 'severely different') ──");
    let (cpp, fortran) = stats::language_gap(&m);
    println!("average C++ cell score:     {cpp:.2}");
    println!("average Fortran cell score: {fortran:.2}");

    println!("\n── Models vendor-supported on all three platforms ──");
    for lang in [Language::Cpp, Language::Fortran] {
        let models = stats::models_vendor_supported_everywhere(&m, lang);
        let names: Vec<_> = models.iter().map(|m| m.name()).collect();
        println!("{lang}: {}", if names.is_empty() { "none".into() } else { names.join(", ") });
    }
    println!("(paper §6: for Fortran, 'the only natively supported programming model on all");
    println!(" three platforms is OpenMP')");

    println!("\n── Models usable everywhere (any provider) ──");
    for (label, bar) in
        [("≥ non-vendor good", Support::NonVendorGood), ("≥ limited", Support::Limited)]
    {
        let models = stats::models_supported_everywhere(&m, Language::Cpp, bar);
        let names: Vec<_> = models.iter().map(|m| m.name()).collect();
        println!("C++ {label}: {}", names.join(", "));
    }

    println!("\n── OpenACC on Intel (paper §6: 'support for Intel GPUs does not exist') ──");
    let cell = m
        .cell(Vendor::Intel, mcmm_core::taxonomy::Model::OpenAcc, Language::Cpp)
        .expect("cell exists");
    println!("Intel · OpenACC · C++: {} — {}", cell.support, cell.rationale);
}
