//! V&V suites — the ECP-BoF-style compiler coverage tables the paper's
//! §2/§5 lean on ([7, 8, 9, 50, 51]), regenerated against the virtual
//! toolchains.

use mcmm_core::taxonomy::Vendor;
use mcmm_vandv::openacc_suite;
use mcmm_vandv::openmp_suite;
use mcmm_vandv::report::{bof_table, completeness_from_coverage, CompilerReport, Coverage};

fn main() {
    println!("══ OpenMP offload V&V (after SOLLVE V&V / ECP BoF 2022) ══\n");
    for vendor in Vendor::ALL {
        let reports: Vec<CompilerReport> = openmp_suite::compilers_for(vendor)
            .into_iter()
            .map(|tc| CompilerReport {
                suite: "openmp",
                vendor,
                toolchain: tc.to_owned(),
                results: openmp_suite::run(vendor, tc),
            })
            .collect();
        println!("── {vendor} ──");
        println!("{}", bof_table(&reports));
        for r in &reports {
            let c = r.coverage();
            println!(
                "  {}: {} → completeness class {:?}",
                r.toolchain,
                c,
                completeness_from_coverage(c)
            );
        }
        println!();
    }

    println!("══ OpenACC V&V (after Jarmusch et al.) ══\n");
    for vendor in Vendor::ALL {
        let results = openacc_suite::run(vendor);
        let c = Coverage::from_results(&results);
        println!("── {vendor}: {c} ──");
        for r in &results {
            println!("  {:<32} {}", r.case.name, r.outcome);
        }
        println!();
    }
}
