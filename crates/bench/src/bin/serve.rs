//! X3 — serve the matrix: replay a seeded mixed workload (all 9 frontends
//! × 3 devices) through the concurrent execution service, verify the
//! results byte-for-byte against serial single-stream execution, and
//! print the serving report.
//!
//! Usage: `cargo run -p mcmm-bench --bin serve [--] [--smoke] [--jobs N]
//! [--seed S] [--json]`. `--smoke` shrinks the workload for CI; `--json`
//! prints the machine-readable report instead of the human one. Exits
//! non-zero if any serving invariant is violated, so this binary doubles
//! as an end-to-end smoke test.

use mcmm_analyze::portability::portability;
use mcmm_analyze::AnalysisOptions;
use mcmm_serve::workload::{run_serial, KernelShape, Workload, WorkloadConfig};
use mcmm_serve::{
    JobCompletion, JobId, PortabilityRow, ServeConfig, ServeReport, Service, SubmitError,
};
use mcmm_toolchain::Registry;
use std::collections::VecDeque;
use std::time::Instant;

/// Per-device portability verdicts for every workload kernel shape: the
/// serving layer stays analyzer-free, so the rows are computed here and
/// attached to the report.
fn portability_rows() -> Vec<PortabilityRow> {
    let opts = AnalysisOptions::default();
    KernelShape::ALL
        .iter()
        .flat_map(|shape| {
            let report = portability(&shape.kernel(), &opts);
            report
                .verdicts
                .into_iter()
                .map(|v| PortabilityRow {
                    kernel: report.kernel.clone(),
                    device: v.device.to_string(),
                    warp_width: v.warp_width,
                    gate_clean: v.gate_clean(),
                    codes: v.codes().into_iter().map(str::to_string).collect(),
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let smoke = flag("--smoke");
    let jobs = value("--jobs")
        .map(|v| v.parse().expect("--jobs takes a number"))
        .unwrap_or(if smoke { 60 } else { 500 });
    let seed =
        value("--seed").map(|v| v.parse().expect("--seed takes a number")).unwrap_or(0xC0FFEE);
    let json = flag("--json");

    let registry = Registry::paper();
    let cfg = WorkloadConfig { jobs, seed, ..Default::default() };
    let workload = Workload::generate(cfg, &registry);
    let (models, vendors) = workload.coverage();

    let service = Service::new(ServeConfig::default());
    let wall = Instant::now();
    let (completions, retries) = replay(&service, &workload);
    service.drain();
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

    let report = ServeReport::collect(&service, &completions, seed, wall_ms)
        .with_portability(portability_rows());
    if json {
        println!("{}", report.to_json());
    } else {
        println!("── Serving the executable matrix (X3) ──");
        println!(
            "workload: {} jobs over {} frontends × {} devices ({} admission retries)",
            jobs,
            models.len(),
            vendors.len(),
            retries
        );
        print!("{}", report.render());
    }

    // Invariants — the same contract the acceptance test enforces.
    let mut failed = false;
    let counts = service.counts();
    if counts.completed + counts.failed != counts.submitted {
        eprintln!(
            "FAIL: {} submitted but only {} retired",
            counts.submitted,
            counts.completed + counts.failed
        );
        failed = true;
    }
    if counts.failed > 0 {
        eprintln!("FAIL: {} workload jobs failed", counts.failed);
        failed = true;
    }
    // The 80% floor is a consequence of the key budget (4 shapes × ~24
    // routable combos ≈ 97 distinct cache keys), so it only holds once the
    // workload is large enough to amortize the compulsory misses.
    let hit_rate = service.cache().stats().hit_rate();
    if jobs >= 500 && hit_rate <= 0.80 {
        eprintln!("FAIL: cache hit rate {:.1}% ≤ 80%", hit_rate * 100.0);
        failed = true;
    }
    let serial = run_serial(&workload, &registry);
    let divergent = serial
        .iter()
        .zip(&completions)
        .filter(|(expect, got)| got.output.as_ref() != Some(expect))
        .count();
    if divergent > 0 {
        eprintln!("FAIL: {divergent} jobs diverged from serial single-stream execution");
        failed = true;
    } else if !json {
        println!("verify: all {} result buffers byte-identical to serial execution", serial.len());
    }
    // Every served kernel shape must be portable across all three vendor
    // devices — a BREAKS verdict here means the workload generator and
    // the portability suite disagree about our own kernels.
    let breaking = report.portability.iter().filter(|r| !r.gate_clean).count();
    if breaking > 0 {
        eprintln!("FAIL: {breaking} workload kernel-device verdicts break the portability gate");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// Submit the plan, absorbing admission-control rejections by retiring
/// the oldest outstanding job and retrying. Returns completions in plan
/// order and the number of retries.
fn replay(service: &Service, workload: &Workload) -> (Vec<JobCompletion>, u64) {
    let mut ids: Vec<JobId> = Vec::with_capacity(workload.jobs.len());
    let mut outstanding: VecDeque<(usize, mcmm_serve::JobHandle)> = VecDeque::new();
    let mut completions: Vec<Option<JobCompletion>> = Vec::new();
    completions.resize_with(workload.jobs.len(), || None);
    let mut retries = 0u64;
    for (i, planned) in workload.jobs.iter().enumerate() {
        let spec = planned.to_spec(&ids);
        loop {
            match service.submit(spec.clone()) {
                Ok(handle) => {
                    ids.push(handle.id);
                    outstanding.push_back((i, handle));
                    break;
                }
                Err(SubmitError::QueueFull { .. }) => {
                    retries += 1;
                    let (idx, handle) =
                        outstanding.pop_front().expect("queue full with nothing outstanding");
                    completions[idx] = Some(handle.wait());
                }
                Err(e) => {
                    eprintln!("FAIL: planned job {i} refused: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    for (idx, handle) in outstanding {
        completions[idx] = Some(handle.wait());
    }
    (completions.into_iter().map(|c| c.expect("every job completes")).collect(), retries)
}
