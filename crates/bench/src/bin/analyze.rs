//! X2 — the static-analyzer report: run `mcmm-analyze` over the
//! seeded-defect corpus (every diagnostic must fire) and over every real
//! kernel the repo ships (none may fire), show which check subset each
//! route's lint gate enforces, and run the vendor-portability suite
//! (MCA006–MCA010) over its own seeded corpus.
//!
//! With `--smoke`, additionally *differentially validates* the
//! portability suite: every portability-corpus kernel is executed on all
//! three simulated vendor devices under both execution tiers, and each
//! static breaks-on-vendor claim must match the observed behavior —
//! refused launch, barrier deadlock, or checksum divergence — with zero
//! false positives on the clean twins.
//!
//! Always writes `BENCH_analyze.json` (per-code counts, analysis
//! throughput, differential tally). Exits non-zero on any miss, false
//! positive, or static/dynamic disagreement, so this binary doubles as a
//! CI gate for the whole analyzer.

use mcmm_analyze::corpus::{BreakMode, PortabilityKernel};
use mcmm_analyze::portability::portability;
use mcmm_analyze::{analyze, corpus, AnalysisOptions};
use mcmm_babelstream::adapters::stream_kernels;
use mcmm_gpu_sim::device::ExecTier;
use mcmm_gpu_sim::diffval::{observe, Observation};
use mcmm_gpu_sim::DeviceSpec;
use mcmm_toolchain::probe::smoke_kernel;
use mcmm_toolchain::Registry;
use std::collections::BTreeMap;
use std::time::Instant;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut failed = false;

    println!("── mcmm-analyze report (X2) ──");
    println!();
    println!("Seeded-defect corpus (every kernel must be flagged with its code):");
    let mut per_code: BTreeMap<&'static str, usize> = BTreeMap::new();
    for entry in corpus::seeded_defects() {
        let report = analyze(&entry.kernel, &entry.opts);
        let hit = report.has_code(entry.expect);
        if hit {
            *per_code.entry(entry.expect).or_default() += 1;
        } else {
            failed = true;
        }
        println!(
            "  {:<22} expect {}  →  {}",
            entry.kernel.name,
            entry.expect,
            if hit { "flagged" } else { "MISSED" }
        );
        for d in &report.diagnostics {
            println!("      {d}");
        }
    }
    println!(
        "  per-code coverage: {}",
        per_code.iter().map(|(c, n)| format!("{c}×{n}")).collect::<Vec<_>>().join(", ")
    );

    println!();
    println!("Real kernels (all must be clean):");
    let mut real: Vec<_> = vec![
        smoke_kernel(),
        mcmm_translate::ast::cuda_saxpy_program(1024, 2.0).kernels[0].ir.clone(),
    ];
    real.extend(stream_kernels());
    for kernel in &real {
        let report = analyze(kernel, &AnalysisOptions::default());
        if report.is_clean() {
            println!("  {:<22} clean", kernel.name);
        } else {
            failed = true;
            println!("  {:<22} FLAGGED:", kernel.name);
            for d in &report.diagnostics {
                println!("      {d}");
            }
        }
    }

    println!();
    println!("Vendor-portability corpus (per-device verdicts, MCA006–MCA010):");
    let port_corpus = corpus::portability_corpus();
    for entry in &port_corpus {
        let report = portability(&entry.kernel, &entry.opts);
        let ok = match entry.expect {
            Some(code) => {
                report.codes().contains(code) && report.breaking_devices() == entry.breaks_on
            }
            None => report.is_clean(),
        };
        if !ok {
            failed = true;
        }
        for code in report.codes() {
            *per_code.entry(code).or_default() += 1;
        }
        let verdicts: Vec<String> = report
            .verdicts
            .iter()
            .map(|v| {
                let codes: Vec<&str> = v.codes().into_iter().collect();
                format!(
                    "w{}:{}",
                    v.warp_width,
                    if codes.is_empty() { "ok".to_string() } else { codes.join("+") }
                )
            })
            .collect();
        println!(
            "  {:<24} {:<14} →  {}  [{}]",
            entry.kernel.name,
            entry.expect.unwrap_or("clean twin"),
            if ok { "as predicted" } else { "WRONG VERDICT" },
            verdicts.join(" ")
        );
    }

    println!();
    println!("Per-route lint gates (checks follow route maturity; P = portability gate):");
    for c in Registry::paper().entries() {
        let mut checks: Vec<String> =
            c.lint_checks().into_iter().map(|ch| ch.code().to_string()).collect();
        if c.gates_portability() {
            checks.push("P".to_string());
        }
        println!("  {:<40} {}", c.name, checks.join(" "));
    }

    let mut differential_cells = 0usize;
    if smoke {
        println!();
        println!("Differential validation (3 devices × 2 tiers per corpus kernel):");
        for entry in &port_corpus {
            match validate_against_execution(entry) {
                Ok(cells) => {
                    differential_cells += cells;
                    println!("  {:<24} static claims confirmed by execution", entry.kernel.name);
                }
                Err(why) => {
                    failed = true;
                    println!("  {:<24} DISAGREES: {why}", entry.kernel.name);
                }
            }
        }
    }

    // Throughput: full analysis (vendor-neutral + portability) over every
    // corpus kernel, enough repetitions to dominate timer noise.
    let kernels: Vec<(mcmm_gpu_sim::ir::KernelIr, AnalysisOptions)> = corpus::seeded_defects()
        .into_iter()
        .map(|e| (e.kernel, e.opts))
        .chain(port_corpus.iter().map(|e| (e.kernel.clone(), e.opts.clone())))
        .collect();
    const REPS: usize = 50;
    let t0 = Instant::now();
    for _ in 0..REPS {
        for (kernel, opts) in &kernels {
            std::hint::black_box(analyze(kernel, opts));
            std::hint::black_box(portability(kernel, opts));
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let analyses = (REPS * kernels.len()) as f64;
    let throughput = analyses / elapsed;
    println!();
    println!(
        "throughput: {throughput:.0} kernel analyses/s ({analyses:.0} runs in {:.1} ms)",
        elapsed * 1e3
    );

    let code_json: Vec<String> =
        per_code.iter().map(|(c, n)| format!("    \"{c}\": {n}")).collect();
    let json = format!(
        "{{\n  \"per_code\": {{\n{}\n  }},\n  \"corpus_kernels\": {},\n  \
         \"throughput_analyses_per_s\": {throughput:.0},\n  \"smoke\": {smoke},\n  \
         \"differential_cells_checked\": {differential_cells}\n}}",
        code_json.join(",\n"),
        kernels.len()
    );
    std::fs::write("BENCH_analyze.json", format!("{json}\n")).expect("write BENCH_analyze.json");
    eprintln!("wrote BENCH_analyze.json");

    println!();
    if failed {
        println!("ANALYZE REPORT FAILED: see MISSED/FLAGGED/DISAGREES lines above");
        std::process::exit(1);
    }
    println!(
        "ANALYZE REPORT PASSED: {} corpus kernels flagged, {} real kernels clean, \
         {} portability kernels as predicted{}",
        corpus::seeded_defects().len(),
        real.len(),
        port_corpus.len(),
        if smoke {
            format!(", {differential_cells} device×tier cells differentially validated")
        } else {
            String::new()
        }
    );
}

/// Execute one portability-corpus kernel on every preset device under
/// both tiers and check the observations against the entry's static
/// claim. Returns the number of device×tier cells exercised.
fn validate_against_execution(entry: &PortabilityKernel) -> Result<usize, String> {
    let devices = DeviceSpec::presets();
    let mut observations = Vec::new();
    let mut cells = 0usize;
    for spec in &devices {
        let scalar = observe(
            spec,
            ExecTier::Scalar,
            &entry.kernel,
            entry.opts.block_dim,
            entry.opts.grid_dim,
        );
        let vectorized = observe(
            spec,
            ExecTier::Vectorized,
            &entry.kernel,
            entry.opts.block_dim,
            entry.opts.grid_dim,
        );
        cells += 2;
        if scalar != vectorized {
            return Err(format!("tiers disagree on {}: {scalar} vs {vectorized}", spec.name));
        }
        observations.push(scalar);
    }

    let clean_checksums: Vec<u64> = devices
        .iter()
        .zip(&observations)
        .filter(|(spec, _)| !entry.breaks_on.contains(&spec.name))
        .map(|(spec, obs)| match obs {
            Observation::Checksum(c) => Ok(*c),
            other => Err(format!("clean device {} did not complete: {other}", spec.name)),
        })
        .collect::<Result<_, _>>()?;
    if clean_checksums.windows(2).any(|w| w[0] != w[1]) && entry.mode != BreakMode::OrderSensitive {
        return Err("clean devices disagree on output bytes".into());
    }

    for (spec, obs) in devices.iter().zip(&observations) {
        if !entry.breaks_on.contains(&spec.name) {
            continue;
        }
        let confirmed = match entry.mode {
            BreakMode::RefusedLaunch => *obs == Observation::RefusedLaunch,
            BreakMode::Deadlock => *obs == Observation::Deadlock,
            BreakMode::SilentValues => {
                matches!(obs, Observation::Checksum(c) if !clean_checksums.contains(c))
            }
            BreakMode::Portable | BreakMode::OrderSensitive => false,
        };
        if !confirmed {
            return Err(format!("break on {} not observed (saw {obs})", spec.name));
        }
    }
    if entry.mode == BreakMode::OrderSensitive {
        let sums: Vec<u64> = observations
            .iter()
            .map(|o| match o {
                Observation::Checksum(c) => Ok(*c),
                other => Err(format!("order-sensitive kernel did not complete: {other}")),
            })
            .collect::<Result<_, _>>()?;
        for i in 0..sums.len() {
            for j in (i + 1)..sums.len() {
                if sums[i] == sums[j] {
                    return Err(format!(
                        "{} and {} agree — atomic order not width-sensitive",
                        devices[i].name, devices[j].name
                    ));
                }
            }
        }
    }
    Ok(cells)
}
