//! X2 — the static-analyzer report: run `mcmm-analyze` over the
//! seeded-defect corpus (every diagnostic must fire) and over every real
//! kernel the repo ships (none may fire), then show which check subset
//! each route's lint gate enforces.
//!
//! Exits non-zero if the corpus has a miss or a real kernel is flagged,
//! so this binary doubles as a CI smoke test for the analyzer.

use mcmm_analyze::{analyze, corpus, AnalysisOptions, Check};
use mcmm_babelstream::adapters::stream_kernels;
use mcmm_toolchain::probe::smoke_kernel;
use mcmm_toolchain::Registry;
use mcmm_translate::ast::cuda_saxpy_program;
use std::collections::BTreeMap;

fn main() {
    let mut failed = false;

    println!("── mcmm-analyze report (X2) ──");
    println!();
    println!("Seeded-defect corpus (every kernel must be flagged with its code):");
    let mut per_code: BTreeMap<&'static str, usize> = BTreeMap::new();
    for entry in corpus::seeded_defects() {
        let report = analyze(&entry.kernel, &entry.opts);
        let hit = report.has_code(entry.expect);
        if hit {
            *per_code.entry(entry.expect).or_default() += 1;
        } else {
            failed = true;
        }
        println!(
            "  {:<22} expect {}  →  {}",
            entry.kernel.name,
            entry.expect,
            if hit { "flagged" } else { "MISSED" }
        );
        for d in &report.diagnostics {
            println!("      {d}");
        }
    }
    println!(
        "  per-code coverage: {}",
        per_code.iter().map(|(c, n)| format!("{c}×{n}")).collect::<Vec<_>>().join(", ")
    );

    println!();
    println!("Real kernels (all must be clean):");
    let mut real: Vec<_> =
        vec![smoke_kernel(), cuda_saxpy_program(1024, 2.0).kernels[0].ir.clone()];
    real.extend(stream_kernels());
    for kernel in &real {
        let report = analyze(kernel, &AnalysisOptions::default());
        if report.is_clean() {
            println!("  {:<22} clean", kernel.name);
        } else {
            failed = true;
            println!("  {:<22} FLAGGED:", kernel.name);
            for d in &report.diagnostics {
                println!("      {d}");
            }
        }
    }

    println!();
    println!("Per-route lint gates (checks follow route maturity):");
    for c in Registry::paper().entries() {
        let checks: Vec<_> = c.lint_checks().into_iter().map(Check::code).collect();
        println!("  {:<40} {}", c.name, checks.join(" "));
    }

    println!();
    if failed {
        println!("ANALYZE REPORT FAILED: see MISSED/FLAGGED lines above");
        std::process::exit(1);
    }
    println!(
        "ANALYZE REPORT PASSED: {} corpus kernels flagged, {} real kernels clean",
        corpus::seeded_defects().len(),
        real.len()
    );
}
