//! E4 — regenerate the matrix from observed behaviour: compile and run a
//! smoke kernel through every registered route, replay the §3 rating
//! engine on the evidence, and compare against the published figure.

use mcmm_core::matrix::CompatMatrix;
use mcmm_toolchain::probe::probe;

fn main() {
    let matrix = CompatMatrix::paper();
    let report = probe(&matrix);

    println!("── Executable probe of the compatibility matrix (E4) ──");
    println!("{:<28} {:>10} {:>10}  functional routes", "combination", "derived", "encoded");
    for cell in &report.cells {
        println!(
            "{:<28} {:>10} {:>10}  {}",
            format!("{} · {} · {}", cell.vendor, cell.model, cell.language),
            cell.derived.symbol(),
            cell.encoded.symbol(),
            if cell.functional_routes.is_empty() {
                "-".to_owned()
            } else {
                cell.functional_routes.join(", ")
            }
        );
    }
    println!();
    println!("cells matching the published figure: {}/51", report.matching());
    println!("functionally verified routes:        {}", report.functional_route_count());
    let mismatches = report.mismatches();
    if mismatches.is_empty() {
        println!("PROBE PASSED: derived matrix equals Figure 1 on all 51 cells");
    } else {
        println!("PROBE FAILED on {} cells:", mismatches.len());
        for m in mismatches {
            println!(
                "  {} · {} · {}: derived {} vs encoded {}",
                m.vendor, m.model, m.language, m.derived, m.encoded
            );
        }
        std::process::exit(1);
    }
}
