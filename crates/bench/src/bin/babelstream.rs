//! E6 — the BabelStream model × vendor sweep (the performance evaluation
//! the paper names as the natural extension, §5).
//!
//! ```text
//! cargo run --release -p mcmm-bench --bin babelstream [--n 65536] [--iters 2] [--model SYCL]
//! ```
//!
//! Numbers are **modeled** GB/s from the analytic timing model against
//! public-spec device attributes — shapes, not measurements.

use mcmm_babelstream::report::{kernel_series, run_table, sweep_table};
use mcmm_babelstream::runner::{sweep, unsupported_count, verified_count};
use mcmm_bench::{arg_usize, DEFAULT_STREAM_ITERS, DEFAULT_STREAM_N};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "--n", DEFAULT_STREAM_N);
    let iters = arg_usize(&args, "--iters", DEFAULT_STREAM_ITERS);
    let model_filter =
        args.iter().position(|a| a == "--model").and_then(|i| args.get(i + 1)).cloned();

    eprintln!("running BabelStream sweep: n = {n}, iters = {iters} (modeled timings)…");
    let entries = sweep(n, iters);

    println!("── BabelStream sweep (modeled GB/s; -- = no route in the matrix) ──");
    println!("{}", sweep_table(&entries));
    println!(
        "verified runs: {} / 27; matrix holes: {}",
        verified_count(&entries),
        unsupported_count(&entries)
    );
    println!(
        "shared compile cache: {} hits / {} misses ({:.0}% hit rate)",
        entries.cache_hits,
        entries.cache_misses,
        entries.cache_hit_rate() * 100.0
    );
    println!(
        "lowered-program cache: {} hits / {} misses ({:.0}% hit rate)",
        entries.programs.hits,
        entries.programs.misses,
        entries.programs.hit_rate() * 100.0
    );

    if let Some(model) = model_filter {
        println!();
        println!("{}", kernel_series(&entries, &model));
        for e in entries.iter().filter(|e| e.model == model) {
            println!("{}", run_table(e));
        }
    }
}
