//! E6 — the BabelStream model × vendor sweep (the performance evaluation
//! the paper names as the natural extension, §5).
//!
//! ```text
//! cargo run --release -p mcmm-bench --bin babelstream [--n 65536] [--iters 2] [--model SYCL]
//! ```
//!
//! Numbers are **modeled** GB/s from the analytic timing model against
//! public-spec device attributes — shapes, not measurements.

use mcmm_babelstream::report::{kernel_series, run_table, sweep_table};
use mcmm_babelstream::runner::{sweep, unsupported_count, verified_count};
use mcmm_bench::{arg_usize, DEFAULT_STREAM_ITERS, DEFAULT_STREAM_N};
use mcmm_core::taxonomy::Vendor;
use mcmm_gpu_sim::{set_process_tracing, DeviceSpec};

/// Peak DRAM bandwidth of the vendor's simulated device, for the
/// achieved-vs-peak column.
fn peak_dram_gbps(v: Vendor) -> f64 {
    match v {
        Vendor::Nvidia => DeviceSpec::nvidia_a100().dram_gbps,
        Vendor::Amd => DeviceSpec::amd_mi250x().dram_gbps,
        Vendor::Intel => DeviceSpec::intel_pvc().dram_gbps,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "--n", DEFAULT_STREAM_N);
    let iters = arg_usize(&args, "--iters", DEFAULT_STREAM_ITERS);
    let model_filter =
        args.iter().position(|a| a == "--model").and_then(|i| args.get(i + 1)).cloned();

    // Trace every launch so the report can show cache hit rates; timing
    // stays on the analytic tier unless MCMM_TIMING_TIER overrides it.
    set_process_tracing(Some(true));

    eprintln!("running BabelStream sweep: n = {n}, iters = {iters} (modeled timings)…");
    let entries = sweep(n, iters);

    println!("── BabelStream sweep (modeled GB/s; -- = no route in the matrix) ──");
    println!("{}", sweep_table(&entries));
    println!(
        "verified runs: {} / 27; matrix holes: {}",
        verified_count(&entries),
        unsupported_count(&entries)
    );
    println!(
        "shared compile cache: {} hits / {} misses ({:.0}% hit rate)",
        entries.cache_hits,
        entries.cache_misses,
        entries.cache_hit_rate() * 100.0
    );
    println!(
        "lowered-program cache: {} hits / {} misses ({:.0}% hit rate)",
        entries.programs.hits,
        entries.programs.misses,
        entries.programs.hit_rate() * 100.0
    );

    println!();
    println!("── Memory hierarchy per route (traced; modeled) ──");
    println!(
        "{:<14}{:<9}{:>8}{:>8}{:>9}{:>13}{:>9}",
        "Model", "Vendor", "L1 hit", "L2 hit", "sector", "Triad GB/s", "of peak"
    );
    for e in entries.iter() {
        if let Ok(r) = &e.outcome {
            if let Some(m) = r.mem {
                let peak = peak_dram_gbps(r.vendor);
                println!(
                    "{:<14}{:<9}{:>7.1}%{:>7.1}%{:>8.0}%{:>13.0}{:>8.0}%",
                    r.model,
                    r.vendor.name(),
                    m.l1_hit_rate() * 100.0,
                    m.l2_hit_rate() * 100.0,
                    m.sector_utilization() * 100.0,
                    r.triad_gbps(),
                    r.triad_gbps() / peak * 100.0,
                );
            }
        }
    }
    if let Some(m) = entries.mem {
        println!(
            "sweep total: {} requests -> {} transactions ({} MSHR merges), {:.3} GB DRAM traffic",
            m.requests,
            m.transactions,
            m.mshr_merges,
            m.dram_bytes as f64 / 1e9,
        );
    }

    if let Some(model) = model_filter {
        println!();
        println!("{}", kernel_series(&entries, &model));
        for e in entries.iter().filter(|e| e.model == model) {
            println!("{}", run_table(e));
        }
    }
}
