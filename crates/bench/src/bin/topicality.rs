//! E7 — §5 "Topicality" as executable scenarios: perturb the ecosystem,
//! re-rate with the §3 engine, report which cells move.

use mcmm_core::evolution::{apply, Event};
use mcmm_core::matrix::CompatMatrix;
use mcmm_core::provider::Maintenance;
use mcmm_core::route::Completeness;
use mcmm_core::taxonomy::{Language, Model, Vendor};

fn scenario(name: &str, events: Vec<Event>, watch: &[(Vendor, Model, Language)]) {
    let mut m = CompatMatrix::paper();
    let before: Vec<_> = watch.iter().map(|&(v, mo, l)| m.support(v, mo, l)).collect();
    let changed = apply(&mut m, &events);
    println!("── {name} ──");
    println!("cells whose primary rating changed: {changed}");
    for (&(v, mo, l), b) in watch.iter().zip(before) {
        let a = m.support(v, mo, l);
        let marker = if a != b { "→ CHANGED" } else { "  (unchanged)" };
        println!("  {v} · {mo} · {l}: {b} → {a} {marker}");
    }
    println!();
}

fn main() {
    println!("§5 'Topicality': the field evolves swiftly — replaying the rating engine\n");

    scenario(
        "roc-stdpar matures into a vendor-advertised solution (§5 prediction)",
        vec![
            Event::SetCompleteness {
                toolchain: "roc-stdpar (-stdpar)",
                completeness: Completeness::Complete,
            },
            Event::SetMaintenance {
                toolchain: "roc-stdpar (-stdpar)",
                status: Maintenance::Active,
            },
            Event::SetDocumented { toolchain: "roc-stdpar (-stdpar)", documented: true },
        ],
        &[(Vendor::Amd, Model::Standard, Language::Cpp)],
    );

    scenario(
        "ComputeCpp discontinued (happened 09/2023 — ratings already absorbed it)",
        vec![Event::RemoveRoute { toolchain: "ComputeCpp" }],
        &[
            (Vendor::Nvidia, Model::Sycl, Language::Cpp),
            (Vendor::Intel, Model::Sycl, Language::Cpp),
        ],
    );

    scenario(
        "GPUFORT formally abandoned (paper: 'unclear if still officially supported')",
        vec![Event::RemoveRoute { toolchain: "GPUFORT (CUDA Fortran→OpenMP/hipfort)" }],
        &[(Vendor::Amd, Model::Cuda, Language::Fortran)],
    );

    scenario(
        "chipStar reaches production quality",
        vec![
            Event::SetCompleteness {
                toolchain: "chipStar (HIP→OpenCL/Level Zero)",
                completeness: Completeness::Majority,
            },
            Event::SetMaintenance {
                toolchain: "chipStar (HIP→OpenCL/Level Zero)",
                status: Maintenance::Active,
            },
        ],
        &[(Vendor::Intel, Model::Hip, Language::Cpp)],
    );

    scenario(
        "Flacc lands complete OpenACC Fortran support in LLVM",
        vec![
            Event::SetCompleteness {
                toolchain: "LLVM Flacc",
                completeness: Completeness::Complete,
            },
            Event::SetMaintenance { toolchain: "LLVM Flacc", status: Maintenance::Active },
        ],
        &[(Vendor::Amd, Model::OpenAcc, Language::Fortran)],
    );
}
