//! X7 — the memory hierarchy: run the four deterministic STREAM shapes
//! plus a 128-byte-strided gather and a shared-memory tiled reverse on
//! all three simulated devices, replay each launch's access trace through
//! the per-vendor coalescer → L1 → L2 → DRAM models, and check that
//!
//! * tracing and the trace-driven timing tier never change computed
//!   buffers (checksums identical across all run modes);
//! * the streaming replay pipeline (per-block L1 on the worker, deferred
//!   shared L2 stage) is bit-identical to the buffered serial reference
//!   on every vendor × shape, on both execution tiers;
//! * the cache replay is deterministic (identical `MemStats` when the
//!   same launch is traced twice);
//! * the fully-coalesced Copy achieves ≥95% sector utilization on every
//!   vendor while the strided gather stays far below it;
//! * the warp-width-sensitive gather produces genuinely different L1 hit
//!   rates on NVIDIA (w32), AMD (w64), and Intel (w16);
//! * the trace-driven tier agrees with the analytic tier on streaming
//!   shapes (same roofline, refined by actual sector traffic);
//! * tracing is cheap enough to leave on: measured wall-clock overhead
//!   of streaming-traced launches over untraced launches stays within
//!   the production budget (geomean ≤ 1.5× on full runs, ≤ 3× on smoke
//!   where tiny launches amplify fixed costs), and on hosts with ≥ 4
//!   cores the streaming pipeline beats the buffered serial replay by
//!   ≥ 3× on trace-dominated launches.
//!
//! Usage: `cargo run --release -p mcmm-bench --bin memhier [--] [--smoke]
//! [--n N] [--json]`. A full run (no `--smoke`) rewrites
//! `BENCH_memhier.json`; exits non-zero if any invariant fails, so this
//! binary doubles as the CI memory-hierarchy gate.

use mcmm_babelstream::adapters::stream_kernels;
use mcmm_babelstream::{START_A, START_B, START_C};
use mcmm_gpu_sim::device::{Device, ExecTier, KernelArg, LaunchConfig, TimingTier};
use mcmm_gpu_sim::ir::{BinOp, CmpOp, KernelBuilder, KernelIr, Space, Type, Value};
use mcmm_gpu_sim::{DeviceSpec, MemStats, ReplayMode};
use std::sync::Arc;
use std::time::Instant;

const BLOCK_DIM: u32 = 256;

/// `c[i] = a[(i % 32) * 16] + b[i]` — every warp gathers from 32 lines
/// spaced 128 bytes apart, so how many distinct sectors a warp touches
/// (and how much reuse the L1 sees) is a function of the warp width.
fn gather128_kernel() -> KernelIr {
    let mut k = KernelBuilder::new("gather128");
    let a = k.param(Type::I64);
    let b = k.param(Type::I64);
    let c = k.param(Type::I64);
    let _sum = k.param(Type::I64);
    let n = k.param(Type::I32);
    let i = k.global_thread_id_x();
    let in_range = k.cmp(CmpOp::Lt, i, n);
    k.if_(in_range, |k| {
        let rem = k.bin(BinOp::Rem, i, Value::I32(32));
        let idx = k.bin(BinOp::Mul, rem, Value::I32(16));
        let av = k.ld_elem(Space::Global, Type::F64, a, idx);
        let bv = k.ld_elem(Space::Global, Type::F64, b, i);
        let s = k.bin(BinOp::Add, av, bv);
        k.st_elem(Space::Global, c, i, s);
    });
    k.finish()
}

/// `c[block_base + (255 - tid)] = a[i]` staged through a shared tile with
/// a barrier — global traffic stays unit-stride while the permutation
/// happens in (untraced) shared memory. No bounds guard: the harness only
/// launches it with `n` a multiple of the block size.
fn shared_tiled_kernel() -> KernelIr {
    let mut k = KernelBuilder::new("shared_tiled");
    let a = k.param(Type::I64);
    let _b = k.param(Type::I64);
    let c = k.param(Type::I64);
    let _sum = k.param(Type::I64);
    let _n = k.param(Type::I32);
    let tile = k.shared_alloc(u64::from(BLOCK_DIM) * 8);
    let tid = k.thread_id_x();
    let i = k.global_thread_id_x();
    let av = k.ld_elem(Space::Global, Type::F64, a, i);
    k.st_elem(Space::Shared, tile, tid, av);
    k.barrier();
    let rt = k.bin(BinOp::Sub, Value::I32(BLOCK_DIM as i32 - 1), tid);
    let v = k.ld_elem(Space::Shared, Type::F64, tile, rt);
    k.st_elem(Space::Global, c, i, v);
    k.finish()
}

/// FNV-1a over a byte stream — stable, dependency-free checksum.
fn fnv1a(chunks: &[Vec<u8>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// One launch of `kernel` on a fresh device with the given knobs:
/// (mem stats if traced, modeled µs, checksum of the arrays afterwards).
fn run_case(
    spec: DeviceSpec,
    kernel: &KernelIr,
    n: usize,
    tracing: bool,
    timing: TimingTier,
    tier: ExecTier,
    mode: ReplayMode,
) -> (Option<MemStats>, f64, u64) {
    let dev: Arc<Device> = Device::new(spec);
    dev.set_tracing(tracing);
    dev.set_timing_tier(timing);
    dev.set_exec_tier(tier);
    dev.set_replay_mode(mode);
    let da = dev.alloc_copy_f64(&vec![START_A; n]).unwrap();
    let db = dev.alloc_copy_f64(&vec![START_B; n]).unwrap();
    let dc = dev.alloc_copy_f64(&vec![START_C; n]).unwrap();
    let dsum = dev.alloc_copy_f64(&[0.0]).unwrap();
    let args = [
        KernelArg::Ptr(da),
        KernelArg::Ptr(db),
        KernelArg::Ptr(dc),
        KernelArg::Ptr(dsum),
        KernelArg::I32(n as i32),
    ];
    let report =
        dev.launch_kernel(kernel, LaunchConfig::linear(n as u64, BLOCK_DIM), &args).unwrap();
    let bytes: Vec<Vec<u8>> =
        [da, db, dc].into_iter().map(|p| dev.memcpy_d2h(p, n as u64 * 8).unwrap().0).collect();
    (report.mem, report.time.micros(), fnv1a(&bytes))
}

/// Wall-clock nanoseconds per element for repeated launches of `kernel`
/// on one persistent device (scratch pools warm, program cache hot):
/// `warmup` discarded launches, then the best of `iters`. `mode = None`
/// disables tracing entirely.
fn wall_ns_per_elem(
    spec: DeviceSpec,
    kernel: &KernelIr,
    n: usize,
    mode: Option<ReplayMode>,
    warmup: usize,
    iters: usize,
) -> f64 {
    let dev: Arc<Device> = Device::new(spec);
    dev.set_tracing(mode.is_some());
    if let Some(m) = mode {
        dev.set_replay_mode(m);
    }
    let da = dev.alloc_copy_f64(&vec![START_A; n]).unwrap();
    let db = dev.alloc_copy_f64(&vec![START_B; n]).unwrap();
    let dc = dev.alloc_copy_f64(&vec![START_C; n]).unwrap();
    let dsum = dev.alloc_copy_f64(&[0.0]).unwrap();
    let args = [
        KernelArg::Ptr(da),
        KernelArg::Ptr(db),
        KernelArg::Ptr(dc),
        KernelArg::Ptr(dsum),
        KernelArg::I32(n as i32),
    ];
    let cfg = LaunchConfig::linear(n as u64, BLOCK_DIM);
    for _ in 0..warmup {
        dev.launch_kernel(kernel, cfg, &args).unwrap();
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        let report = dev.launch_kernel(kernel, cfg, &args).unwrap();
        let ns = t0.elapsed().as_nanos() as f64;
        assert_eq!(report.mem.is_some(), mode.is_some(), "tracing knob ignored");
        best = best.min(ns);
    }
    best / n as f64
}

fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut count) = (0.0f64, 0u32);
    for x in xs {
        log_sum += x.ln();
        count += 1;
    }
    (log_sum / f64::from(count.max(1))).exp()
}

struct Row {
    vendor: &'static str,
    shape: &'static str,
    mem: MemStats,
    analytic_us: f64,
    traced_us: f64,
}

struct OverheadRow {
    vendor: &'static str,
    shape: &'static str,
    untraced_ns_elem: f64,
    streaming_ns_elem: f64,
    buffered_ns_elem: f64,
}

impl OverheadRow {
    /// Streaming-traced wall clock over untraced — the cost of leaving
    /// tracing on in production.
    fn streaming_overhead(&self) -> f64 {
        self.streaming_ns_elem / self.untraced_ns_elem.max(f64::MIN_POSITIVE)
    }

    /// Buffered-serial wall clock over streaming — the pipeline's
    /// speedup over the retained reference replay.
    fn replay_speedup(&self) -> f64 {
        self.buffered_ns_elem / self.streaming_ns_elem.max(f64::MIN_POSITIVE)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let smoke = flag("--smoke");
    let json = flag("--json");
    let n: usize = value("--n")
        .map(|v| v.parse().expect("--n takes a number"))
        .unwrap_or(if smoke { 1 << 13 } else { 1 << 17 });
    assert!(
        n.is_multiple_of(BLOCK_DIM as usize) && n >= 512,
        "--n must be a multiple of {BLOCK_DIM} and at least 512"
    );
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);

    type SpecFn = fn() -> DeviceSpec;
    let vendors: [(&'static str, SpecFn); 3] = [
        ("NVIDIA", DeviceSpec::nvidia_a100),
        ("AMD", DeviceSpec::amd_mi250x),
        ("Intel", DeviceSpec::intel_pvc),
    ];
    let stream = stream_kernels();
    let gather = gather128_kernel();
    let tiled = shared_tiled_kernel();
    let shapes: [(&'static str, &KernelIr); 6] = [
        ("Copy", &stream[0]),
        ("Mul", &stream[1]),
        ("Add", &stream[2]),
        ("Triad", &stream[3]),
        ("Gather128", &gather),
        ("SharedTiled", &tiled),
    ];

    eprintln!("replaying memory-hierarchy traces: n = {n}, {} shapes x 3 vendors…", shapes.len());

    let mut rows: Vec<Row> = Vec::new();
    let mut failed = false;
    for (vendor, spec) in vendors {
        for (shape, kernel) in &shapes {
            let run = |tracing, timing, tier, mode| {
                run_case(spec(), kernel, n, tracing, timing, tier, mode)
            };
            let (no_mem, analytic_us, base_sum) =
                run(false, TimingTier::Analytic, ExecTier::Vectorized, ReplayMode::Streaming);
            let (streaming_mem, _, traced_sum) =
                run(true, TimingTier::Analytic, ExecTier::Vectorized, ReplayMode::Streaming);
            let (buffered_mem, _, buffered_sum) =
                run(true, TimingTier::Analytic, ExecTier::Vectorized, ReplayMode::Buffered);
            let (driven_mem, traced_us, driven_sum) =
                run(false, TimingTier::TraceDriven, ExecTier::Vectorized, ReplayMode::Streaming);

            if no_mem.is_some() {
                eprintln!("FAIL: {vendor}/{shape}: untraced launch produced mem stats");
                failed = true;
            }
            if base_sum != traced_sum || base_sum != driven_sum || base_sum != buffered_sum {
                eprintln!("FAIL: {vendor}/{shape}: buffers changed under tracing/timing tiers");
                failed = true;
            }
            let (mem, buffered, driven) = match (streaming_mem, buffered_mem, driven_mem) {
                (Some(a), Some(b), Some(c)) => (a, b, c),
                _ => {
                    eprintln!("FAIL: {vendor}/{shape}: traced launch produced no mem stats");
                    failed = true;
                    continue;
                }
            };
            if mem != buffered {
                eprintln!(
                    "FAIL: {vendor}/{shape}: streaming replay diverges from the buffered \
                     serial reference"
                );
                failed = true;
            }
            if mem != driven {
                eprintln!("FAIL: {vendor}/{shape}: cache replay is not deterministic");
                failed = true;
            }
            rows.push(Row { vendor, shape, mem, analytic_us, traced_us });
        }
    }

    // Both execution tiers feed the same pipeline: at a reduced size the
    // scalar interpreter's trace must replay — in both modes — to the
    // stats the vectorized tier produced.
    let tier_n = n.min(1 << 12);
    for (vendor, spec) in vendors {
        for (shape, kernel) in &shapes {
            let run = |tier, mode| {
                run_case(spec(), kernel, tier_n, true, TimingTier::Analytic, tier, mode)
                    .0
                    .expect("traced launch must produce mem stats")
            };
            let reference = run(ExecTier::Vectorized, ReplayMode::Streaming);
            for (tier, mode, what) in [
                (ExecTier::Scalar, ReplayMode::Streaming, "scalar/streaming"),
                (ExecTier::Scalar, ReplayMode::Buffered, "scalar/buffered"),
                (ExecTier::Vectorized, ReplayMode::Buffered, "vectorized/buffered"),
            ] {
                if run(tier, mode) != reference {
                    eprintln!("FAIL: {vendor}/{shape}: {what} diverges at n = {tier_n}");
                    failed = true;
                }
            }
        }
    }

    // Copy is fully coalesced everywhere; the gather must not be.
    for r in rows.iter().filter(|r| r.shape == "Copy") {
        if r.mem.sector_utilization() < 0.95 {
            eprintln!(
                "FAIL: {} Copy sector utilization {:.2} < 0.95",
                r.vendor,
                r.mem.sector_utilization()
            );
            failed = true;
        }
    }
    for r in rows.iter().filter(|r| r.shape == "Gather128") {
        if r.mem.sector_utilization() > 0.60 {
            eprintln!(
                "FAIL: {} Gather128 sector utilization {:.2} — expected an uncoalesced pattern",
                r.vendor,
                r.mem.sector_utilization()
            );
            failed = true;
        }
    }

    // The gather's L1 hit rate must genuinely depend on the warp width.
    let gather_hits: Vec<(&str, f64)> = rows
        .iter()
        .filter(|r| r.shape == "Gather128")
        .map(|r| (r.vendor, r.mem.l1_hit_rate()))
        .collect();
    for i in 0..gather_hits.len() {
        for j in i + 1..gather_hits.len() {
            let (va, ha) = gather_hits[i];
            let (vb, hb) = gather_hits[j];
            if (ha - hb).abs() < 0.01 {
                eprintln!(
                    "FAIL: Gather128 L1 hit rate does not separate {va} ({ha:.3}) \
                     from {vb} ({hb:.3})"
                );
                failed = true;
            }
        }
    }

    // Streaming shapes: the trace-driven tier refines, not contradicts,
    // the analytic roofline.
    for r in rows.iter().filter(|r| matches!(r.shape, "Copy" | "Mul" | "Add" | "Triad")) {
        let ratio = r.traced_us / r.analytic_us.max(f64::MIN_POSITIVE);
        if !(0.5..=2.0).contains(&ratio) {
            eprintln!(
                "FAIL: {}/{}: trace-driven time {:.2} us vs analytic {:.2} us (ratio {ratio:.2})",
                r.vendor, r.shape, r.traced_us, r.analytic_us
            );
            failed = true;
        }
    }

    // Wall-clock tracing overhead on the STREAM shapes: untraced vs
    // streaming-traced vs buffered-traced, one warm device per mode.
    eprintln!("measuring wall-clock tracing overhead on the STREAM shapes…");
    let (warmup, iters) = if smoke { (1, 3) } else { (2, 5) };
    let mut overhead: Vec<OverheadRow> = Vec::new();
    for (vendor, spec) in vendors {
        for (shape, kernel) in shapes.iter().take(4) {
            let measure = |mode| wall_ns_per_elem(spec(), kernel, n, mode, warmup, iters);
            overhead.push(OverheadRow {
                vendor,
                shape,
                untraced_ns_elem: measure(None),
                streaming_ns_elem: measure(Some(ReplayMode::Streaming)),
                buffered_ns_elem: measure(Some(ReplayMode::Buffered)),
            });
        }
    }
    let overhead_geomean = geomean(overhead.iter().map(OverheadRow::streaming_overhead));
    let speedup_geomean = geomean(overhead.iter().map(OverheadRow::replay_speedup));
    // Tiny smoke launches amplify fixed per-launch costs, so the smoke
    // budget is looser; the production claim is the full-size one. Both
    // claims assume cores to hide the replay behind: with fewer than 4
    // the whole pipeline shares the execution core and the budget is
    // only a regression backstop against the serial replay cost.
    let overhead_budget = match (smoke, host_cores >= 4) {
        (false, true) => 1.5,
        (true, true) => 3.0,
        (_, false) => 12.0,
    };
    if overhead_geomean > overhead_budget {
        eprintln!(
            "FAIL: streaming tracing overhead {overhead_geomean:.2}x untraced \
             (budget {overhead_budget:.1}x)"
        );
        failed = true;
    }
    // The parallel-replay claim needs cores to parallelize across; on a
    // narrow host the streaming pipeline must merely not lose.
    if !smoke && host_cores >= 4 && speedup_geomean < 3.0 {
        eprintln!(
            "FAIL: streaming replay only {speedup_geomean:.2}x the buffered serial \
             replay on a {host_cores}-core host (want >= 3x)"
        );
        failed = true;
    }

    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"vendor\": \"{}\", \"shape\": \"{}\", \"l1_hit_rate\": {:.4}, \
                 \"l2_hit_rate\": {:.4}, \"sector_utilization\": {:.4}, \"dram_bytes\": {}, \
                 \"analytic_us\": {:.3}, \"trace_driven_us\": {:.3} }}",
                r.vendor,
                r.shape,
                r.mem.l1_hit_rate(),
                r.mem.l2_hit_rate(),
                r.mem.sector_utilization(),
                r.mem.dram_bytes,
                r.analytic_us,
                r.traced_us
            )
        })
        .collect();
    let overhead_json: Vec<String> = overhead
        .iter()
        .map(|r| {
            format!(
                "    {{ \"vendor\": \"{}\", \"shape\": \"{}\", \"untraced_ns_elem\": {:.2}, \
                 \"streaming_ns_elem\": {:.2}, \"buffered_ns_elem\": {:.2}, \
                 \"streaming_overhead\": {:.3}, \"replay_speedup\": {:.3} }}",
                r.vendor,
                r.shape,
                r.untraced_ns_elem,
                r.streaming_ns_elem,
                r.buffered_ns_elem,
                r.streaming_overhead(),
                r.replay_speedup()
            )
        })
        .collect();
    let report = format!(
        "{{\n  \"n\": {n},\n  \"block_dim\": {BLOCK_DIM},\n  \"host_cores\": {host_cores},\n  \
         \"streaming_overhead_geomean\": {overhead_geomean:.3},\n  \
         \"replay_speedup_geomean\": {speedup_geomean:.3},\n  \"rows\": [\n{}\n  ],\n  \
         \"overhead\": [\n{}\n  ]\n}}",
        row_json.join(",\n"),
        overhead_json.join(",\n")
    );

    if json {
        println!("{report}");
    } else {
        println!("── Memory hierarchy (X7): per-vendor L1/L2 replay, modeled ──");
        println!(
            "{:<8} {:<12} {:>7} {:>7} {:>7} {:>12} {:>12} {:>12}",
            "vendor", "shape", "L1 hit", "L2 hit", "sector", "DRAM MB", "analytic us", "traced us"
        );
        for r in &rows {
            println!(
                "{:<8} {:<12} {:>6.1}% {:>6.1}% {:>6.0}% {:>12.2} {:>12.2} {:>12.2}",
                r.vendor,
                r.shape,
                r.mem.l1_hit_rate() * 100.0,
                r.mem.l2_hit_rate() * 100.0,
                r.mem.sector_utilization() * 100.0,
                r.mem.dram_bytes as f64 / 1e6,
                r.analytic_us,
                r.traced_us
            );
        }
        println!();
        println!("── Tracing wall-clock overhead (STREAM shapes, ns/element) ──");
        println!(
            "{:<8} {:<8} {:>10} {:>10} {:>10} {:>9} {:>9}",
            "vendor", "shape", "untraced", "streaming", "buffered", "overhead", "speedup"
        );
        for r in &overhead {
            println!(
                "{:<8} {:<8} {:>10.1} {:>10.1} {:>10.1} {:>8.2}x {:>8.2}x",
                r.vendor,
                r.shape,
                r.untraced_ns_elem,
                r.streaming_ns_elem,
                r.buffered_ns_elem,
                r.streaming_overhead(),
                r.replay_speedup()
            );
        }
        println!(
            "geomean: streaming overhead {overhead_geomean:.2}x untraced, \
             streaming {speedup_geomean:.2}x buffered ({host_cores} host cores)"
        );
    }

    if !smoke {
        std::fs::write("BENCH_memhier.json", format!("{report}\n"))
            .expect("write BENCH_memhier.json");
        eprintln!("wrote BENCH_memhier.json");
    }

    if failed {
        std::process::exit(1);
    }
    eprintln!("memory-hierarchy invariants hold ({} rows)", rows.len());
}
