//! X5 — execution tiers: time the four deterministic STREAM-style shapes
//! (Copy, Mul, Add, Triad) through the scalar reference interpreter and
//! the lowered lane-vector tier — at O0 (kernels lowered as written) and
//! O2 (through the SSA middle-end) — on one simulated A100, verify every
//! tier/level produces byte-identical buffers, and report per-tier
//! ns/element with the vectorized speedups and the lowered-program cache
//! hit rate.
//!
//! Dot is excluded on purpose: its cross-block f64 atomics retire in
//! scheduler order, so its *bits* are run-to-run nondeterministic either
//! tier — the tier-equivalence contract for it lives in the block-level
//! differential suite instead.
//!
//! Usage: `cargo run --release -p mcmm-bench --bin exec [--] [--smoke]
//! [--n N] [--iters K] [--json]`. A full run (no `--smoke`) rewrites
//! `BENCH_exec.json`, the artifact the README performance table is
//! generated from. Exits non-zero if the vectorized tier is slower than
//! scalar in aggregate, if any checksum differs between tiers or
//! optimization levels, if O2 failed to keep (smoke: roughly, within
//! wall-clock noise) or beat (full: strictly above 11.9x aggregate) the
//! O0 speedup, or if the program cache failed to serve repeat launches —
//! so this binary doubles as the CI performance gate.

use mcmm_babelstream::adapters::stream_kernels;
use mcmm_babelstream::{SCALAR, START_A, START_B, START_C};
use mcmm_gpu_sim::device::{Device, ExecTier, KernelArg, LaunchConfig};
use mcmm_gpu_sim::ir::KernelIr;
use mcmm_gpu_sim::{DeviceSpec, OptLevel, OptStats};
use std::sync::Arc;
use std::time::Instant;

const BLOCK_DIM: u32 = 256;

struct ShapeTiming {
    name: &'static str,
    scalar_ns_per_elem: f64,
    vectorized_ns_per_elem: f64,
    vectorized_o2_ns_per_elem: f64,
    checksums_match: bool,
}

impl ShapeTiming {
    fn speedup(&self) -> f64 {
        self.scalar_ns_per_elem / self.vectorized_ns_per_elem.max(f64::MIN_POSITIVE)
    }

    fn speedup_o2(&self) -> f64 {
        self.scalar_ns_per_elem / self.vectorized_o2_ns_per_elem.max(f64::MIN_POSITIVE)
    }
}

/// FNV-1a over a byte stream — stable, dependency-free checksum.
fn fnv1a(chunks: &[Vec<u8>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Run `iters` timed launches of one kernel on one tier at one
/// optimization level (fresh device, fresh buffers, one warmup launch),
/// returning (ns/element, checksum of the three arrays afterwards,
/// program-cache hits, middle-end stats).
fn run_shape(
    kernel: &KernelIr,
    tier: ExecTier,
    opt: OptLevel,
    n: usize,
    iters: usize,
) -> (f64, u64, u64, OptStats) {
    let dev: Arc<Device> = Device::new(DeviceSpec::nvidia_a100());
    dev.set_exec_tier(tier);
    dev.set_opt_level(opt);
    let da = dev.alloc_copy_f64(&vec![START_A; n]).unwrap();
    let db = dev.alloc_copy_f64(&vec![START_B; n]).unwrap();
    let dc = dev.alloc_copy_f64(&vec![START_C; n]).unwrap();
    let dsum = dev.alloc_copy_f64(&[0.0]).unwrap();
    let args = [
        KernelArg::Ptr(da),
        KernelArg::Ptr(db),
        KernelArg::Ptr(dc),
        KernelArg::Ptr(dsum),
        KernelArg::I32(n as i32),
    ];
    let cfg = LaunchConfig::linear(n as u64, BLOCK_DIM);
    dev.launch_kernel(kernel, cfg, &args).unwrap(); // warmup + lowering

    // Best-of-iters, the BabelStream convention: each launch is timed
    // separately and the minimum is reported, so a scheduler hiccup in
    // one iteration doesn't smear the whole measurement.
    let mut best_ns = f64::INFINITY;
    for _ in 0..iters {
        let wall = Instant::now();
        dev.launch_kernel(kernel, cfg, &args).unwrap();
        best_ns = best_ns.min(wall.elapsed().as_nanos() as f64);
    }
    let ns_per_elem = best_ns / n as f64;
    let bytes: Vec<Vec<u8>> =
        [da, db, dc].into_iter().map(|p| dev.memcpy_d2h(p, n as u64 * 8).unwrap().0).collect();
    (ns_per_elem, fnv1a(&bytes), dev.program_cache_stats().hits, dev.opt_stats())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let smoke = flag("--smoke");
    let json = flag("--json");
    let n: usize = value("--n")
        .map(|v| v.parse().expect("--n takes a number"))
        .unwrap_or(if smoke { 1 << 14 } else { 1 << 20 });
    let iters: usize = value("--iters")
        .map(|v| v.parse().expect("--iters takes a number"))
        .unwrap_or(if smoke { 2 } else { 5 });

    eprintln!(
        "timing scalar vs vectorized (O0, O2) execution tiers: n = {n}, iters = {iters}, \
         block_dim = {BLOCK_DIM} (host wall-clock)…"
    );

    let kernels = stream_kernels();
    let shapes = [("Copy", 0usize), ("Mul", 1), ("Add", 2), ("Triad", 3)];
    let mut timings = Vec::new();
    let mut program_hits = 0u64;
    let mut opt = OptStats::default();
    for (name, idx) in shapes {
        let (s_ns, s_sum, _, _) =
            run_shape(&kernels[idx], ExecTier::Scalar, OptLevel::O0, n, iters);
        let (v_ns, v_sum, hits, _) =
            run_shape(&kernels[idx], ExecTier::Vectorized, OptLevel::O0, n, iters);
        let (o2_ns, o2_sum, o2_hits, o2_opt) =
            run_shape(&kernels[idx], ExecTier::Vectorized, OptLevel::O2, n, iters);
        program_hits += hits + o2_hits;
        opt = opt.merged(o2_opt);
        timings.push(ShapeTiming {
            name,
            scalar_ns_per_elem: s_ns,
            vectorized_ns_per_elem: v_ns,
            vectorized_o2_ns_per_elem: o2_ns,
            checksums_match: s_sum == v_sum && s_sum == o2_sum,
        });
    }

    // Every vectorized launch after the per-shape warmup must have been
    // served from the program cache: iters hits per (shape, level).
    let expected_hits = (2 * iters * shapes.len()) as u64;
    let hit_rate = program_hits as f64 / (program_hits + 2 * shapes.len() as u64) as f64;

    let scalar_total: f64 = timings.iter().map(|t| t.scalar_ns_per_elem).sum();
    let vectorized_total: f64 = timings.iter().map(|t| t.vectorized_ns_per_elem).sum();
    let vectorized_o2_total: f64 = timings.iter().map(|t| t.vectorized_o2_ns_per_elem).sum();
    let aggregate_speedup = scalar_total / vectorized_total.max(f64::MIN_POSITIVE);
    let aggregate_speedup_o2 = scalar_total / vectorized_o2_total.max(f64::MIN_POSITIVE);

    let shape_json: Vec<String> = timings
        .iter()
        .map(|t| {
            format!(
                "    {{ \"shape\": \"{}\", \"scalar_ns_per_elem\": {:.3}, \
                 \"vectorized_ns_per_elem\": {:.3}, \"vectorized_o2_ns_per_elem\": {:.3}, \
                 \"speedup\": {:.2}, \"speedup_o2\": {:.2}, \"checksums_match\": {} }}",
                t.name,
                t.scalar_ns_per_elem,
                t.vectorized_ns_per_elem,
                t.vectorized_o2_ns_per_elem,
                t.speedup(),
                t.speedup_o2(),
                t.checksums_match
            )
        })
        .collect();
    let report = format!(
        "{{\n  \"n\": {n},\n  \"iters\": {iters},\n  \"block_dim\": {BLOCK_DIM},\n  \
         \"stream_scalar\": {SCALAR},\n  \"shapes\": [\n{}\n  ],\n  \
         \"aggregate_speedup\": {aggregate_speedup:.2},\n  \
         \"aggregate_speedup_o2\": {aggregate_speedup_o2:.2},\n  \
         \"o2_instrs_before\": {},\n  \"o2_instrs_after\": {},\n  \
         \"program_cache_hits\": {program_hits},\n  \
         \"program_cache_hit_rate\": {hit_rate:.3}\n}}",
        shape_json.join(",\n"),
        opt.instrs_before,
        opt.instrs_after,
    );

    if json {
        println!("{report}");
    } else {
        println!("── Execution tiers (X5): scalar vs lane-vector, host wall-clock ──");
        println!(
            "{:<7} {:>15} {:>12} {:>12} {:>8} {:>8}  bit-identical",
            "shape", "scalar ns/elem", "O0 ns/elem", "O2 ns/elem", "O0", "O2"
        );
        for t in &timings {
            println!(
                "{:<7} {:>15.2} {:>12.2} {:>12.2} {:>7.1}x {:>7.1}x  {}",
                t.name,
                t.scalar_ns_per_elem,
                t.vectorized_ns_per_elem,
                t.vectorized_o2_ns_per_elem,
                t.speedup(),
                t.speedup_o2(),
                if t.checksums_match { "yes" } else { "NO" }
            );
        }
        println!(
            "aggregate speedup {aggregate_speedup:.1}x at O0, {aggregate_speedup_o2:.1}x at O2 \
             ({} -> {} instrs); program cache {program_hits} hits ({:.0}% hit rate)",
            opt.instrs_before,
            opt.instrs_after,
            hit_rate * 100.0
        );
    }

    if !smoke {
        std::fs::write("BENCH_exec.json", format!("{report}\n")).expect("write BENCH_exec.json");
        eprintln!("wrote BENCH_exec.json");
    }

    // Invariants — the CI gate.
    let mut failed = false;
    for t in &timings {
        if !t.checksums_match {
            eprintln!("FAIL: {} buffers differ between tiers/levels", t.name);
            failed = true;
        }
    }
    if vectorized_total > scalar_total {
        eprintln!(
            "FAIL: vectorized tier slower than scalar in aggregate \
             ({vectorized_total:.2} vs {scalar_total:.2} ns/elem)"
        );
        failed = true;
    }
    // Speedup monotonicity: the middle-end must not make the vectorized
    // tier slower. Smoke runs measure a few milliseconds per cell, so
    // they get a noise allowance; a full run holds the strict bound.
    let noise = if smoke { 1.15 } else { 1.0 };
    if vectorized_o2_total > vectorized_total * noise {
        eprintln!(
            "FAIL: O2 slower than O0 in aggregate \
             ({vectorized_o2_total:.2} vs {vectorized_total:.2} ns/elem)"
        );
        failed = true;
    }
    if !smoke && aggregate_speedup_o2 <= 11.9 {
        eprintln!(
            "FAIL: O2 aggregate speedup {aggregate_speedup_o2:.2}x did not beat the 11.9x bar"
        );
        failed = true;
    }
    if opt.kernels == 0 || opt.removed() == 0 {
        eprintln!("FAIL: O2 runs did not go through the middle-end ({opt:?})");
        failed = true;
    }
    if program_hits != expected_hits {
        eprintln!("FAIL: expected {expected_hits} program-cache hits, saw {program_hits}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "exec tier invariants hold (vectorized {aggregate_speedup:.1}x at O0, \
         {aggregate_speedup_o2:.1}x at O2)"
    );
}
