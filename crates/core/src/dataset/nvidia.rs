//! NVIDIA row of Figure 1 — descriptions 1–17 (§4).

use crate::cell::{Cell, CellBuilder, CellId};
use crate::provider::{Maintenance, Provider};
use crate::route::{Completeness, Directness, Route, RouteKind};
use crate::support::Support;
use crate::taxonomy::{Language, Model, Vendor};

fn id(model: Model, language: Language) -> CellId {
    CellId::new(Vendor::Nvidia, model, language)
}

pub(super) fn cells() -> Vec<Cell> {
    vec![
        // ─── 1 · NVIDIA · CUDA · C++ ────────────────────────────────────
        CellBuilder::new(
            id(Model::Cuda, Language::Cpp),
            1,
            Support::Full,
            "CUDA C/C++ is supported through the CUDA Toolkit (since 2007); \
             the toolkit covers nearly all aspects of the platform: API, \
             libraries, profiling/debugging tools, compiler, management \
             tools. Higher languages are translated to PTX, then compiled \
             to SASS. Clang can also target NVIDIA GPUs via LLVM.",
        )
        .because(
            "Reference platform: vendor-complete implementation, extensive \
             documentation, regular updates (§3 'full support' verbatim).",
        )
        .route(
            Route::new(
                "CUDA Toolkit (nvcc)",
                RouteKind::Compiler,
                Provider::DeviceVendor,
                Directness::Direct,
                Completeness::Complete,
            )
            .notes("CUDA 12.2 current; proprietary with open-source components"),
        )
        .route(
            Route::new(
                "Clang CUDA (LLVM)",
                RouteKind::Compiler,
                Provider::Community("LLVM"),
                Directness::Direct,
                Completeness::Majority,
            )
            .notes("emits PTX via the LLVM NVPTX backend"),
        )
        .refs(&[10])
        .build(),
        // ─── 2 · NVIDIA · CUDA · Fortran ────────────────────────────────
        CellBuilder::new(
            id(Model::Cuda, Language::Fortran),
            2,
            Support::Full,
            "CUDA Fortran, a proprietary Fortran extension, is supported via \
             the NVIDIA HPC SDK: -cuda switch in nvfortran; explicit kernels \
             and `cuf kernels` auto-parallelization. CUDA Fortran support \
             was recently merged into LLVM Flang.",
        )
        .because(
            "Vendor-provided, modeled closely after CUDA C/C++, implements \
             most of the CUDA API in Fortran.",
        )
        .route(
            Route::new(
                "NVIDIA HPC SDK (nvfortran -cuda)",
                RouteKind::Compiler,
                Provider::DeviceVendor,
                Directness::Direct,
                Completeness::Complete,
            )
            .notes("explicit kernels plus `cuf kernels` compiler-generated parallelism"),
        )
        .route(
            Route::new(
                "LLVM Flang (CUDA Fortran)",
                RouteKind::Compiler,
                Provider::Community("LLVM"),
                Directness::Direct,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Experimental)
            .notes("support merged very recently"),
        )
        .refs(&[11])
        .build(),
        // ─── 3 · NVIDIA · HIP · C++ ─────────────────────────────────────
        CellBuilder::new(
            id(Model::Hip, Language::Cpp),
            3,
            Support::IndirectGood,
            "HIP programs directly use NVIDIA GPUs via a CUDA backend; API \
             calls map one-to-one (hipMalloc→cudaMalloc) and kernel syntax \
             is identical. hipcc with HIP_PLATFORM=nvidia targets NVIDIA; \
             HIPIFY converts CUDA sources to HIP.",
        )
        .because(
            "Comprehensive but indirect: a foreign model mapped \
             semi-automatically onto the native one (§3 'indirect good').",
        )
        .route(
            Route::new(
                "hipcc (CUDA backend)",
                RouteKind::Compiler,
                Provider::OtherVendor(Vendor::Amd),
                Directness::Translated,
                Completeness::Complete,
            )
            .notes("HIP_PLATFORM=nvidia; hipBLAS etc. interface to CUDA libraries"),
        )
        .route(
            Route::new(
                "HIPIFY (CUDA→HIP)",
                RouteKind::SourceTranslator,
                Provider::OtherVendor(Vendor::Amd),
                Directness::Translated,
                Completeness::Complete,
            )
            .notes("bootstraps a HIP code base from CUDA"),
        )
        .refs(&[12])
        .build(),
        // ─── 4 · NVIDIA · HIP · Fortran (shared with AMD) ───────────────
        CellBuilder::new(
            id(Model::Hip, Language::Fortran),
            4,
            Support::Some,
            "No Fortran version of HIP exists; HIP is solely a C/C++ model. \
             AMD offers hipfort (MIT), ready-made Fortran interfaces to the \
             HIP API and ROCm libraries, with CUDA-like Fortran extensions \
             for writing kernels.",
        )
        .because(
            "Bindings cover the C functionality, but the model itself has no \
             Fortran surface — usable for a majority of needs, not \
             comprehensive.",
        )
        .route(
            Route::new(
                "hipfort",
                RouteKind::LanguageBinding,
                Provider::OtherVendor(Vendor::Amd),
                Directness::Binding,
                Completeness::Majority,
            )
            .notes("interfaces to HIP API + HIP/ROCm libraries"),
        )
        .refs(&[13])
        .build(),
        // ─── 5 · NVIDIA · SYCL · C++ ────────────────────────────────────
        CellBuilder::new(
            id(Model::Sycl, Language::Cpp),
            5,
            Support::NonVendorGood,
            "No direct support by NVIDIA, but SYCL runs on NVIDIA GPUs via \
             DPC++ (Intel's open-source LLVM compiler, plus oneAPI plugin), \
             via Open SYCL (previously hipSYCL; through LLVM CUDA or nvc++), \
             and previously via ComputeCpp (unsupported since 09/2023). \
             SYCLomatic translates CUDA to SYCL.",
        )
        .because(
            "Comprehensive support exists, but from Intel and the community, \
             not from the device vendor (§3 'non-vendor good').",
        )
        .route(
            Route::new(
                "DPC++ (CUDA plugin)",
                RouteKind::Compiler,
                Provider::OtherVendor(Vendor::Intel),
                Directness::Direct,
                Completeness::Complete,
            )
            .notes("needs CUDA toolkit for final compilation beyond PTX"),
        )
        .route(
            Route::new(
                "Open SYCL",
                RouteKind::Compiler,
                Provider::Community("Open SYCL"),
                Directness::Direct,
                Completeness::Complete,
            )
            .notes("via LLVM CUDA support or NVHPC nvc++"),
        )
        .route(
            Route::new(
                "ComputeCpp",
                RouteKind::Compiler,
                Provider::Commercial("CodePlay"),
                Directness::Direct,
                Completeness::Majority,
            )
            .maintenance(Maintenance::Unmaintained)
            .notes("unsupported since September 2023"),
        )
        .refs(&[14, 15])
        .build(),
        // ─── 6 · NVIDIA · SYCL · Fortran (shared: all vendors) ──────────
        CellBuilder::new(
            id(Model::Sycl, Language::Fortran),
            6,
            Support::None,
            "SYCL is a C++-based programming model (C++17) and by its nature \
             does not support Fortran; no pre-made bindings are available.",
        )
        .because("No surface, no bindings — §3 'no support'.")
        .refs(&[16])
        .build(),
        // ─── 7 · NVIDIA · OpenACC · C++ ─────────────────────────────────
        CellBuilder::new(
            id(Model::OpenAcc, Language::Cpp),
            7,
            Support::Full,
            "OpenACC C/C++ is supported most extensively through the NVIDIA \
             HPC SDK (nvc/nvc++ with -acc -gpu; conforms to OpenACC 2.7). \
             GCC ≥5.0 supports OpenACC 2.6 via the nvptx architecture \
             (-fopenacc); Clacc adds OpenACC to LLVM by translating it to \
             OpenMP.",
        )
        .because("§5 pins this cell: 'OpenACC C++ support on NVIDIA GPUs (7) was rated complete'.")
        .route(
            Route::new(
                "NVIDIA HPC SDK (nvc/nvc++ -acc)",
                RouteKind::Compiler,
                Provider::DeviceVendor,
                Directness::Direct,
                Completeness::Complete,
            )
            .notes("conforms to OpenACC 2.7"),
        )
        .route(
            Route::new(
                "GCC (-fopenacc, nvptx)",
                RouteKind::Compiler,
                Provider::Community("GCC"),
                Directness::Direct,
                Completeness::Majority,
            )
            .notes("OpenACC 2.6 since GCC 5.0"),
        )
        .route(
            Route::new(
                "Clacc (LLVM)",
                RouteKind::Compiler,
                Provider::Community("Clacc"),
                Directness::Translated,
                Completeness::Majority,
            )
            .notes("translates OpenACC to OpenMP inside Clang"),
        )
        .refs(&[17, 18, 19, 20])
        .build(),
        // ─── 8 · NVIDIA · OpenACC · Fortran ─────────────────────────────
        CellBuilder::new(
            id(Model::OpenAcc, Language::Fortran),
            8,
            Support::Full,
            "OpenACC Fortran mirrors the C/C++ support: NVIDIA HPC SDK \
             (nvfortran), GCC (gfortran), LLVM Flang (via the Flacc \
             project, now in mainline LLVM), and the HPE Cray Programming \
             Environment (ftn -hacc).",
        )
        .because("Vendor-complete via nvfortran, with three further routes.")
        .route(Route::new(
            "NVIDIA HPC SDK (nvfortran -acc)",
            RouteKind::Compiler,
            Provider::DeviceVendor,
            Directness::Direct,
            Completeness::Complete,
        ))
        .route(Route::new(
            "GCC (gfortran -fopenacc)",
            RouteKind::Compiler,
            Provider::Community("GCC"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .route(
            Route::new(
                "LLVM Flang (Flacc)",
                RouteKind::Compiler,
                Provider::Community("LLVM"),
                Directness::Direct,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Experimental),
        )
        .route(Route::new(
            "HPE Cray PE (ftn -hacc)",
            RouteKind::Compiler,
            Provider::Commercial("HPE Cray"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .refs(&[17, 18, 21])
        .build(),
        // ─── 9 · NVIDIA · OpenMP · C++ ──────────────────────────────────
        CellBuilder::new(
            id(Model::OpenMp, Language::Cpp),
            9,
            Support::Some,
            "OpenMP offloading to NVIDIA GPUs works through NVHPC (nvc/nvc++ \
             -mp; subset of OpenMP 5.0), GCC (-fopenmp; OpenMP 4.5 complete, \
             5.x in progress), Clang (-fopenmp -fopenmp-targets=…; 4.5 plus \
             selected 5.0/5.1), HPE Cray PE, and AMD's AOMP.",
        )
        .because(
            "§5 pins this cell: rated 'some support' because NVIDIA is \
             upfront that some OpenMP offloading features are still missing.",
        )
        .route(
            Route::new(
                "NVIDIA HPC SDK (nvc/nvc++ -mp)",
                RouteKind::Compiler,
                Provider::DeviceVendor,
                Directness::Direct,
                Completeness::Majority,
            )
            .notes("subset of OpenMP 5.0; documented unsupported features"),
        )
        .route(
            Route::new(
                "GCC (-fopenmp -foffload=nvptx-none)",
                RouteKind::Compiler,
                Provider::Community("GCC"),
                Directness::Direct,
                Completeness::Majority,
            )
            .notes("OpenMP 4.5 complete; 5.0/5.1/5.2 being implemented"),
        )
        .route(Route::new(
            "Clang (-fopenmp -fopenmp-targets=nvptx64)",
            RouteKind::Compiler,
            Provider::Community("LLVM"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .route(
            Route::new(
                "HPE Cray PE (CC -fopenmp)",
                RouteKind::Compiler,
                Provider::Commercial("HPE Cray"),
                Directness::Direct,
                Completeness::Majority,
            )
            .notes("subset of OpenMP 5.0/5.1"),
        )
        .route(Route::new(
            "AOMP (NVIDIA target)",
            RouteKind::Compiler,
            Provider::OtherVendor(Vendor::Amd),
            Directness::Direct,
            Completeness::Majority,
        ))
        .refs(&[17, 22, 23, 24])
        .build(),
        // ─── 10 · NVIDIA · OpenMP · Fortran ─────────────────────────────
        CellBuilder::new(
            id(Model::OpenMp, Language::Fortran),
            10,
            Support::Some,
            "OpenMP Fortran offloading is supported nearly identically to \
             C/C++: NVHPC nvfortran, GCC gfortran, LLVM Flang (-mp, when \
             Flang is compiled via Clang), and HPE Cray PE.",
        )
        .because("Same feature gaps as the C++ cell; vendor-provided but incomplete.")
        .route(Route::new(
            "NVIDIA HPC SDK (nvfortran -mp)",
            RouteKind::Compiler,
            Provider::DeviceVendor,
            Directness::Direct,
            Completeness::Majority,
        ))
        .route(Route::new(
            "GCC (gfortran -fopenmp)",
            RouteKind::Compiler,
            Provider::Community("GCC"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .route(
            Route::new(
                "LLVM Flang (-mp)",
                RouteKind::Compiler,
                Provider::Community("LLVM"),
                Directness::Direct,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Experimental),
        )
        .route(Route::new(
            "HPE Cray PE (ftn -fopenmp)",
            RouteKind::Compiler,
            Provider::Commercial("HPE Cray"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .refs(&[17, 22, 24, 25])
        .build(),
        // ─── 11 · NVIDIA · Standard · C++ ───────────────────────────────
        CellBuilder::new(
            id(Model::Standard, Language::Cpp),
            11,
            Support::Full,
            "Parallel-STL algorithms offload to NVIDIA GPUs through nvc++ \
             -stdpar=gpu (NVIDIA HPC SDK). Open SYCL is adding pSTL support \
             (--hipsycl-stdpar), and DPC++ enables oneDPL algorithms on \
             NVIDIA GPUs.",
        )
        .because("Vendor-complete (-stdpar=gpu) with additional community venues.")
        .route(Route::new(
            "NVIDIA HPC SDK (nvc++ -stdpar=gpu)",
            RouteKind::Compiler,
            Provider::DeviceVendor,
            Directness::Direct,
            Completeness::Complete,
        ))
        .route(
            Route::new(
                "Open SYCL (--hipsycl-stdpar)",
                RouteKind::Compiler,
                Provider::Community("Open SYCL"),
                Directness::Direct,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Experimental)
            .notes("support in progress"),
        )
        .route(
            Route::new(
                "oneDPL via DPC++",
                RouteKind::Library,
                Provider::OtherVendor(Vendor::Intel),
                Directness::Direct,
                Completeness::Majority,
            )
            .undocumented()
            .notes("pSTL support on NVIDIA through DPC++ is not advertised in docs (§5)"),
        )
        .refs(&[17, 15, 26])
        .build(),
        // ─── 12 · NVIDIA · Standard · Fortran ───────────────────────────
        CellBuilder::new(
            id(Model::Standard, Language::Fortran),
            12,
            Support::Full,
            "Fortran standard parallelism (mainly `do concurrent`) offloads \
             to NVIDIA GPUs through nvfortran -stdpar=gpu (NVIDIA HPC SDK).",
        )
        .because("Vendor-provided and complete for the standard's surface.")
        .route(Route::new(
            "NVIDIA HPC SDK (nvfortran -stdpar=gpu)",
            RouteKind::Compiler,
            Provider::DeviceVendor,
            Directness::Direct,
            Completeness::Complete,
        ))
        .refs(&[17])
        .build(),
        // ─── 13 · NVIDIA · Kokkos · C++ ─────────────────────────────────
        CellBuilder::new(
            id(Model::Kokkos, Language::Cpp),
            13,
            Support::NonVendorGood,
            "Kokkos supports NVIDIA GPUs with multiple backends: native CUDA \
             (nvcc), NVHPC (CUDA support in nvc++), and Clang (CUDA directly \
             or via OpenMP offloading).",
        )
        .because("Comprehensive, community-driven, vendor infrastructure underneath.")
        .route(Route::new(
            "Kokkos CUDA backend (nvcc)",
            RouteKind::Library,
            Provider::Community("Kokkos"),
            Directness::Direct,
            Completeness::Complete,
        ))
        .route(Route::new(
            "Kokkos NVHPC backend (nvc++)",
            RouteKind::Library,
            Provider::Community("Kokkos"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .route(Route::new(
            "Kokkos Clang backend (CUDA or OpenMP offload)",
            RouteKind::Library,
            Provider::Community("Kokkos"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .refs(&[27])
        .build(),
        // ─── 14 · NVIDIA · Kokkos · Fortran (shared: all vendors) ───────
        CellBuilder::new(
            id(Model::Kokkos, Language::Fortran),
            14,
            Support::Limited,
            "Kokkos is a C++ model, but the official Fortran Language \
             Compatibility Layer (FLCL) lets Fortran use GPUs as supported \
             by Kokkos C++.",
        )
        .because(
            "Indirect via a compatibility layer with user effort; the model \
             itself never gains a Fortran surface (§3 'limited').",
        )
        .route(
            Route::new(
                "Kokkos FLCL",
                RouteKind::LanguageBinding,
                Provider::Community("Kokkos"),
                Directness::Binding,
                Completeness::Minimal,
            )
            .notes("Fortran Language Compatibility Layer"),
        )
        .refs(&[27])
        .build(),
        // ─── 15 · NVIDIA · Alpaka · C++ ─────────────────────────────────
        CellBuilder::new(
            id(Model::Alpaka, Language::Cpp),
            15,
            Support::NonVendorGood,
            "Alpaka supports NVIDIA GPUs in C++17, through nvcc or through \
             Clang's CUDA support (clang++).",
        )
        .because("Comprehensive community support on vendor infrastructure.")
        .route(Route::new(
            "Alpaka CUDA backend (nvcc)",
            RouteKind::Library,
            Provider::Community("Alpaka"),
            Directness::Direct,
            Completeness::Complete,
        ))
        .route(Route::new(
            "Alpaka Clang-CUDA backend (clang++)",
            RouteKind::Library,
            Provider::Community("Alpaka"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .refs(&[28])
        .build(),
        // ─── 16 · NVIDIA · Alpaka · Fortran (shared: all vendors) ───────
        CellBuilder::new(
            id(Model::Alpaka, Language::Fortran),
            16,
            Support::None,
            "Alpaka is a C++ programming model and no ready-made Fortran \
             support exists.",
        )
        .because("No surface, no bindings.")
        .refs(&[28])
        .build(),
        // ─── 17 · NVIDIA · Python ───────────────────────────────────────
        CellBuilder::new(
            id(Model::Python, Language::Python),
            17,
            Support::Full,
            "NVIDIA offers CUDA Python (low-level interfaces, PyPI \
             cuda-python) and cuNumeric (NumPy-inspired, scales via Legate); \
             the community adds PyCUDA, CuPy (NumPy-compatible plus custom \
             kernels), and Numba (decorator-based JIT).",
        )
        .also(Support::NonVendorGood)
        .because(
            "§5 pins the double rating: vendor packages plus the \
             acknowledged pick-up of the open-source community.",
        )
        .route(
            Route::new(
                "CUDA Python",
                RouteKind::Library,
                Provider::DeviceVendor,
                Directness::Direct,
                Completeness::Complete,
            )
            .notes("PyPI cuda-python; backend for higher-level models"),
        )
        .route(
            Route::new(
                "cuNumeric",
                RouteKind::Library,
                Provider::DeviceVendor,
                Directness::Direct,
                Completeness::Majority,
            )
            .notes("NumPy-like; transparent multi-GPU via Legate"),
        )
        .route(
            Route::new(
                "CuPy",
                RouteKind::Library,
                Provider::Community("CuPy"),
                Directness::Direct,
                Completeness::Complete,
            )
            .notes("PyPI cupy-cuda12x"),
        )
        .route(Route::new(
            "PyCUDA",
            RouteKind::Library,
            Provider::Community("PyCUDA"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .route(Route::new(
            "Numba (CUDA target)",
            RouteKind::Library,
            Provider::Community("Numba"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .refs(&[29, 30, 31, 32, 33])
        .build(),
    ]
}
