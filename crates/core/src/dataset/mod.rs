//! The paper's data: all 51 vendor × model × language combinations (§4,
//! descriptions 1–44), encoded as [`Cell`]s with routes, references, and
//! rating rationales.
//!
//! Provenance: the per-cell categories are derived from the §4 description
//! texts and the §5 per-category discussion (which pins several cells
//! explicitly). Where the text leaves latitude, the cell's `rationale`
//! records the reasoning; see DESIGN.md "Figure 1 cell data — provenance
//! note".
//!
//! The structural invariants printed in the paper's text are exact and
//! asserted by tests here and in `tests/`:
//!
//! * 51 combinations, explained in **44 unique descriptions** (§3);
//! * the shared descriptions are exactly 4 (HIP·Fortran on NVIDIA+AMD),
//!   6 (SYCL·Fortran, all vendors), 14 (Kokkos·Fortran, all vendors), and
//!   16 (Alpaka·Fortran, all vendors);
//! * "more than 50 routes for programming a GPU device" (§1).

mod amd;
mod intel;
mod nvidia;

use crate::cell::Cell;

/// Build the full 51-cell dataset in Figure 1 order
/// (AMD, Intel, NVIDIA rows; model columns; C++ before Fortran).
pub fn paper_cells() -> Vec<Cell> {
    let mut cells = Vec::with_capacity(51);
    cells.extend(amd::cells());
    cells.extend(intel::cells());
    cells.extend(nvidia::cells());
    cells
}

/// Description numbers that cover more than one cell, with their coverage
/// count: (id, number of cells).
pub const SHARED_DESCRIPTIONS: [(u8, usize); 4] = [(4, 2), (6, 3), (14, 3), (16, 3)];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::Support;
    use crate::taxonomy::{all_combinations, Language, Model, Vendor};
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn fifty_one_cells_covering_every_combination() {
        let cells = paper_cells();
        assert_eq!(cells.len(), 51);
        let have: BTreeSet<_> =
            cells.iter().map(|c| (c.id.vendor, c.id.model, c.id.language)).collect();
        for combo in all_combinations() {
            assert!(have.contains(&combo), "missing cell for {combo:?}");
        }
    }

    #[test]
    fn forty_four_unique_descriptions() {
        let cells = paper_cells();
        let ids: BTreeSet<u8> = cells.iter().map(|c| c.description_id).collect();
        assert_eq!(ids.len(), 44);
        assert_eq!(ids.iter().copied().min(), Some(1));
        assert_eq!(ids.iter().copied().max(), Some(44));
        // Consecutive numbering 1..=44 with no gaps.
        assert_eq!(ids, (1..=44).collect());
    }

    #[test]
    fn shared_descriptions_match_paper() {
        let cells = paper_cells();
        let mut by_id: BTreeMap<u8, usize> = BTreeMap::new();
        for c in &cells {
            *by_id.entry(c.description_id).or_default() += 1;
        }
        for (id, n) in SHARED_DESCRIPTIONS {
            assert_eq!(by_id[&id], n, "description {id} should cover {n} cells");
        }
        // All other descriptions cover exactly one cell.
        let shared: BTreeSet<u8> = SHARED_DESCRIPTIONS.iter().map(|&(id, _)| id).collect();
        for (&id, &n) in &by_id {
            if !shared.contains(&id) {
                assert_eq!(n, 1, "description {id} unexpectedly shared");
            }
        }
    }

    #[test]
    fn more_than_fifty_routes() {
        // §1: "more than 50 routes for programming a GPU device are
        // identified when no further limitations (pre-)exist".
        let total: usize = paper_cells().iter().map(|c| c.routes.len()).sum();
        assert!(total > 50, "only {total} routes encoded");
    }

    #[test]
    fn native_models_are_fully_supported_on_their_platform() {
        let cells = paper_cells();
        for v in Vendor::ALL {
            let native = v.native_model();
            let cell = cells
                .iter()
                .find(|c| {
                    c.id.vendor == v && c.id.model == native && c.id.language == Language::Cpp
                })
                .unwrap();
            assert_eq!(cell.support, Support::Full, "{v} native model not Full");
        }
    }

    #[test]
    fn none_cells_have_no_routes_and_vice_versa() {
        for c in paper_cells() {
            if c.support == Support::None && !c.is_double_rated() {
                assert!(
                    c.routes.is_empty(),
                    "{} rated none but has routes: {:?}",
                    c.id,
                    c.routes.iter().map(|r| r.toolchain).collect::<Vec<_>>()
                );
            } else {
                assert!(c.has_any_route(), "{} rated {} but has no routes", c.id, c.support);
            }
        }
    }

    #[test]
    fn double_rated_cells_match_section_5() {
        let cells = paper_cells();
        let doubles: BTreeSet<_> = cells
            .iter()
            .filter(|c| c.is_double_rated())
            .map(|c| (c.id.vendor, c.id.model, c.id.language))
            .collect();
        // §5 discusses exactly two double-rated cells: Python on NVIDIA and
        // CUDA C++ on Intel.
        let expected: BTreeSet<_> = [
            (Vendor::Nvidia, Model::Python, Language::Python),
            (Vendor::Intel, Model::Cuda, Language::Cpp),
        ]
        .into_iter()
        .collect();
        assert_eq!(doubles, expected);
    }

    #[test]
    fn every_cell_has_description_and_rationale() {
        for c in paper_cells() {
            assert!(!c.description.is_empty(), "{} missing description", c.id);
            assert!(!c.rationale.is_empty(), "{} missing rationale", c.id);
        }
    }

    #[test]
    fn references_resolve_in_bibliography() {
        for c in paper_cells() {
            for &r in &c.references {
                assert!(
                    crate::references::lookup(r).is_some(),
                    "{} cites unknown reference [{r}]",
                    c.id
                );
            }
        }
    }

    #[test]
    fn python_cells_exist_for_each_vendor() {
        let cells = paper_cells();
        for v in Vendor::ALL {
            assert!(cells.iter().any(|c| c.id.vendor == v && c.id.model == Model::Python));
        }
    }
}
