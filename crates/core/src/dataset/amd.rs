//! AMD row of Figure 1 — descriptions 18–30, plus shared descriptions
//! 4 (HIP·Fortran), 6 (SYCL·Fortran), 14 (Kokkos·Fortran),
//! 16 (Alpaka·Fortran) (§4).

use crate::cell::{Cell, CellBuilder, CellId};
use crate::provider::{Maintenance, Provider};
use crate::route::{Completeness, Directness, Route, RouteKind};
use crate::support::Support;
use crate::taxonomy::{Language, Model, Vendor};

fn id(model: Model, language: Language) -> CellId {
    CellId::new(Vendor::Amd, model, language)
}

pub(super) fn cells() -> Vec<Cell> {
    vec![
        // ─── 18 · AMD · CUDA · C++ ──────────────────────────────────────
        CellBuilder::new(
            id(Model::Cuda, Language::Cpp),
            18,
            Support::IndirectGood,
            "CUDA is not directly supported on AMD GPUs, but AMD's HIPIFY \
             translates CUDA to HIP; the translated code runs via hipcc \
             with HIP_PLATFORM=amd.",
        )
        .because(
            "Vendor-provided semi-automatic translation of a foreign model \
             to the native one — the §3 definition of 'indirect good'.",
        )
        .route(
            Route::new(
                "HIPIFY (CUDA→HIP) + hipcc",
                RouteKind::SourceTranslator,
                Provider::DeviceVendor,
                Directness::Translated,
                Completeness::Complete,
            )
            .notes("HIP_PLATFORM=amd"),
        )
        .refs(&[12])
        .build(),
        // ─── 19 · AMD · CUDA · Fortran ──────────────────────────────────
        CellBuilder::new(
            id(Model::Cuda, Language::Fortran),
            19,
            Support::Limited,
            "No direct CUDA Fortran support; AMD's GPUFORT research project \
             source-to-source translates some CUDA Fortran to Fortran+OpenMP \
             (AOMP) or Fortran+HIP bindings with extracted C kernels \
             (hipfort). Coverage is use-case driven; last commit two years \
             old.",
        )
        .because("Very incomplete, stale, extensive user effort — 'limited'.")
        .route(
            Route::new(
                "GPUFORT (CUDA Fortran→OpenMP/hipfort)",
                RouteKind::SourceTranslator,
                Provider::DeviceVendor,
                Directness::Translated,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Stale)
            .notes("coverage driven by use-case requirements"),
        )
        .refs(&[34])
        .build(),
        // ─── 20 · AMD · HIP · C++ ───────────────────────────────────────
        CellBuilder::new(
            id(Model::Hip, Language::Cpp),
            20,
            Support::Full,
            "HIP C++ is the native model for AMD GPUs: part of ROCm \
             (compilers, libraries, tools, drivers; mostly open source). \
             hipcc is a compiler driver finally calling AMD's Clang with \
             the AMDGPU backend (--offload-arch=gfx90a etc.).",
        )
        .because("Native model: vendor-complete with full toolchain.")
        .route(
            Route::new(
                "hipcc (ROCm/Clang AMDGPU)",
                RouteKind::Compiler,
                Provider::DeviceVendor,
                Directness::Direct,
                Completeness::Complete,
            )
            .notes("HIP_PLATFORM=amd; --offload-arch=gfx90a"),
        )
        .refs(&[12])
        .build(),
        // ─── 4 · AMD · HIP · Fortran (shared with NVIDIA) ───────────────
        CellBuilder::new(
            id(Model::Hip, Language::Fortran),
            4,
            Support::Some,
            "No Fortran version of HIP exists; HIP is solely a C/C++ model. \
             AMD offers hipfort (MIT), ready-made Fortran interfaces to the \
             HIP API and ROCm libraries, with CUDA-like Fortran extensions \
             for writing kernels.",
        )
        .because(
            "Vendor-provided bindings cover the C functionality, but the \
             model has no true Fortran surface — 'some support'.",
        )
        .route(
            Route::new(
                "hipfort",
                RouteKind::LanguageBinding,
                Provider::DeviceVendor,
                Directness::Binding,
                Completeness::Majority,
            )
            .notes("on AMD the binding provider is the device vendor itself"),
        )
        .refs(&[13])
        .build(),
        // ─── 21 · AMD · SYCL · C++ ──────────────────────────────────────
        CellBuilder::new(
            id(Model::Sycl, Language::Cpp),
            21,
            Support::NonVendorGood,
            "No direct SYCL support by AMD, but Open SYCL (HIP/ROCm support \
             in Clang; all internal compilation models) and DPC++ (open \
             source, plus oneAPI via an AMD ROCm plugin) target AMD GPUs. \
             Unlike for CUDA, no SYCLomatic-style conversion tool exists.",
        )
        .because("Comprehensive third-party support on vendor infrastructure.")
        .route(Route::new(
            "Open SYCL (HIP/ROCm)",
            RouteKind::Compiler,
            Provider::Community("Open SYCL"),
            Directness::Direct,
            Completeness::Complete,
        ))
        .route(Route::new(
            "DPC++ (ROCm plugin)",
            RouteKind::Compiler,
            Provider::OtherVendor(Vendor::Intel),
            Directness::Direct,
            Completeness::Majority,
        ))
        .refs(&[15, 14])
        .build(),
        // ─── 6 · AMD · SYCL · Fortran (shared) ──────────────────────────
        CellBuilder::new(
            id(Model::Sycl, Language::Fortran),
            6,
            Support::None,
            "SYCL is a C++-based programming model (C++17) and by its nature \
             does not support Fortran; no pre-made bindings are available.",
        )
        .because("No surface, no bindings — §3 'no support'.")
        .refs(&[16])
        .build(),
        // ─── 22 · AMD · OpenACC · C++ ───────────────────────────────────
        CellBuilder::new(
            id(Model::OpenAcc, Language::Cpp),
            22,
            Support::NonVendorGood,
            "OpenACC C/C++ is not supported by AMD itself; third-party \
             support exists through GCC (-fopenacc, \
             -foffload=amdgcn-amdhsa=\"-march=gfx906\") and Clacc \
             (OpenACC→OpenMP on LLVM's AMD support). Intel's OpenACC→OpenMP \
             translator can also be used.",
        )
        .because("Good support exists, but none of it from AMD.")
        .route(Route::new(
            "GCC (-fopenacc, amdgcn)",
            RouteKind::Compiler,
            Provider::Community("GCC"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .route(
            Route::new(
                "Clacc (OpenACC→OpenMP, amdgcn)",
                RouteKind::Compiler,
                Provider::Community("Clacc"),
                Directness::Translated,
                Completeness::Majority,
            )
            .notes("-fopenmp-targets=amdgcn-amd-amdhsa"),
        )
        .route(Route::new(
            "Intel OpenACC→OpenMP migration tool",
            RouteKind::SourceTranslator,
            Provider::OtherVendor(Vendor::Intel),
            Directness::Translated,
            Completeness::Minimal,
        ))
        .refs(&[18, 19])
        .build(),
        // ─── 23 · AMD · OpenACC · Fortran ───────────────────────────────
        CellBuilder::new(
            id(Model::OpenAcc, Language::Fortran),
            23,
            Support::NonVendorGood,
            "No native OpenACC Fortran support; AMD's GPUFORT research \
             project translates OpenACC Fortran to OpenMP or hipfort+C \
             kernels (stale, use-case driven). Community support through \
             GCC gfortran, upcoming LLVM Flacc, and HPE Cray PE; Intel's \
             OpenACC→OpenMP translator also applies.",
        )
        .because(
            "The viable routes (GCC, Cray) are comprehensive but non-vendor; \
             the vendor's own GPUFORT is stale and minimal.",
        )
        .route(Route::new(
            "GCC (gfortran -fopenacc, amdgcn)",
            RouteKind::Compiler,
            Provider::Community("GCC"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .route(Route::new(
            "HPE Cray PE (ftn -hacc)",
            RouteKind::Compiler,
            Provider::Commercial("HPE Cray"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .route(
            Route::new(
                "GPUFORT (OpenACC Fortran→OpenMP/hipfort)",
                RouteKind::SourceTranslator,
                Provider::DeviceVendor,
                Directness::Translated,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Stale),
        )
        .route(
            Route::new(
                "LLVM Flacc",
                RouteKind::Compiler,
                Provider::Community("LLVM"),
                Directness::Direct,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Experimental)
            .notes("upcoming"),
        )
        .refs(&[34, 18, 21])
        .build(),
        // ─── 24 · AMD · OpenMP · C++ ────────────────────────────────────
        CellBuilder::new(
            id(Model::OpenMp, Language::Cpp),
            24,
            Support::Some,
            "AMD offers AOMP, a dedicated Clang-based compiler for OpenMP \
             C/C++ offloading, usually shipped with ROCm; it supports most \
             OpenMP 4.5 and some 5.0 features. HPE Cray PE also supports \
             OpenMP on AMD GPUs.",
        )
        .because(
            "Vendor-provided but not comprehensive ('most 4.5, some 5.0') — \
             the §3 'some support' definition.",
        )
        .route(
            Route::new(
                "AOMP (Clang-based)",
                RouteKind::Compiler,
                Provider::DeviceVendor,
                Directness::Direct,
                Completeness::Majority,
            )
            .notes("-fopenmp; shipped with ROCm"),
        )
        .route(Route::new(
            "HPE Cray PE (CC -fopenmp)",
            RouteKind::Compiler,
            Provider::Commercial("HPE Cray"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .refs(&[35, 24])
        .build(),
        // ─── 25 · AMD · OpenMP · Fortran ────────────────────────────────
        CellBuilder::new(
            id(Model::OpenMp, Language::Fortran),
            25,
            Support::Some,
            "Through AOMP (flang executable, -fopenmp) AMD supports OpenMP \
             offloading in Fortran; HPE Cray PE provides further support.",
        )
        .because("Same vendor-provided-but-incomplete status as the C++ cell.")
        .route(Route::new(
            "AOMP (flang -fopenmp)",
            RouteKind::Compiler,
            Provider::DeviceVendor,
            Directness::Direct,
            Completeness::Majority,
        ))
        .route(Route::new(
            "HPE Cray PE (ftn -fopenmp)",
            RouteKind::Compiler,
            Provider::Commercial("HPE Cray"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .refs(&[35, 24])
        .build(),
        // ─── 26 · AMD · Standard · C++ ──────────────────────────────────
        CellBuilder::new(
            id(Model::Standard, Language::Cpp),
            26,
            Support::Limited,
            "No production-grade vendor support yet: roc-stdpar (ROCm \
             Standard Parallelism Runtime) is under development aiming at \
             upstream LLVM (-stdpar); Open SYCL is adding --hipsycl-stdpar; \
             oneDPL via DPC++ has experimental AMD support.",
        )
        .because(
            "§5 pins the ambivalence: 'currently no vendor-supported, \
             advertised solution (which roc-stdpar might become)'.",
        )
        .route(
            Route::new(
                "roc-stdpar (-stdpar)",
                RouteKind::Compiler,
                Provider::DeviceVendor,
                Directness::Direct,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Experimental)
            .undocumented()
            .notes("under development; upstreaming to LLVM planned"),
        )
        .route(
            Route::new(
                "Open SYCL (--hipsycl-stdpar)",
                RouteKind::Compiler,
                Provider::Community("Open SYCL"),
                Directness::Direct,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Experimental),
        )
        .route(
            Route::new(
                "oneDPL via DPC++ (ROCm)",
                RouteKind::Library,
                Provider::OtherVendor(Vendor::Intel),
                Directness::Direct,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Experimental)
            .undocumented()
            .notes("DPC++ AMD support is experimental"),
        )
        .refs(&[36, 15, 26])
        .build(),
        // ─── 27 · AMD · Standard · Fortran ──────────────────────────────
        CellBuilder::new(
            id(Model::Standard, Language::Fortran),
            27,
            Support::None,
            "There is no (known) way to launch Fortran standard-parallel \
             algorithms (do concurrent) on AMD GPUs.",
        )
        .because("The paper finds no venue at all.")
        .build(),
        // ─── 28 · AMD · Kokkos · C++ ────────────────────────────────────
        CellBuilder::new(
            id(Model::Kokkos, Language::Cpp),
            28,
            Support::NonVendorGood,
            "Kokkos supports AMD GPUs mainly through the HIP/ROCm backend; \
             an OpenMP offloading backend is also available.",
        )
        .because("Comprehensive community support on vendor infrastructure.")
        .route(Route::new(
            "Kokkos HIP backend",
            RouteKind::Library,
            Provider::Community("Kokkos"),
            Directness::Direct,
            Completeness::Complete,
        ))
        .route(Route::new(
            "Kokkos OpenMP-offload backend",
            RouteKind::Library,
            Provider::Community("Kokkos"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .refs(&[27])
        .build(),
        // ─── 14 · AMD · Kokkos · Fortran (shared) ───────────────────────
        CellBuilder::new(
            id(Model::Kokkos, Language::Fortran),
            14,
            Support::Limited,
            "Kokkos is a C++ model, but the official Fortran Language \
             Compatibility Layer (FLCL) lets Fortran use GPUs as supported \
             by Kokkos C++.",
        )
        .because("Indirect via a compatibility layer with user effort — 'limited'.")
        .route(Route::new(
            "Kokkos FLCL",
            RouteKind::LanguageBinding,
            Provider::Community("Kokkos"),
            Directness::Binding,
            Completeness::Minimal,
        ))
        .refs(&[27])
        .build(),
        // ─── 29 · AMD · Alpaka · C++ ────────────────────────────────────
        CellBuilder::new(
            id(Model::Alpaka, Language::Cpp),
            29,
            Support::NonVendorGood,
            "Alpaka supports AMD GPUs in C++ through HIP or through an \
             OpenMP backend.",
        )
        .because("Comprehensive community support on vendor infrastructure.")
        .route(Route::new(
            "Alpaka HIP backend",
            RouteKind::Library,
            Provider::Community("Alpaka"),
            Directness::Direct,
            Completeness::Complete,
        ))
        .route(Route::new(
            "Alpaka OpenMP backend",
            RouteKind::Library,
            Provider::Community("Alpaka"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .refs(&[28])
        .build(),
        // ─── 16 · AMD · Alpaka · Fortran (shared) ───────────────────────
        CellBuilder::new(
            id(Model::Alpaka, Language::Fortran),
            16,
            Support::None,
            "Alpaka is a C++ programming model and no ready-made Fortran \
             support exists.",
        )
        .because("No surface, no bindings.")
        .refs(&[28])
        .build(),
        // ─── 30 · AMD · Python ──────────────────────────────────────────
        CellBuilder::new(
            id(Model::Python, Language::Python),
            30,
            Support::Limited,
            "AMD does not officially support Python GPU programming; CuPy \
             experimentally supports ROCm (cupy-rocm-5-0), Numba's ROCm \
             target is unmaintained, low-level bindings exist (PyHIP, \
             PyOpenCL).",
        )
        .because("Third-party, experimental or unmaintained — 'limited'.")
        .route(
            Route::new(
                "CuPy (ROCm, experimental)",
                RouteKind::Library,
                Provider::Community("CuPy"),
                Directness::Direct,
                Completeness::Majority,
            )
            .maintenance(Maintenance::Experimental)
            .notes("PyPI cupy-rocm-5-0"),
        )
        .route(
            Route::new(
                "Numba (ROCm target)",
                RouteKind::Library,
                Provider::Community("Numba"),
                Directness::Direct,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Unmaintained),
        )
        .route(
            Route::new(
                "PyHIP",
                RouteKind::LanguageBinding,
                Provider::Community("PyHIP"),
                Directness::Binding,
                Completeness::Minimal,
            )
            .notes("PyPI pyhip-interface"),
        )
        .route(Route::new(
            "PyOpenCL",
            RouteKind::LanguageBinding,
            Provider::Community("PyOpenCL"),
            Directness::Binding,
            Completeness::Majority,
        ))
        .refs(&[29])
        .build(),
    ]
}
