//! Intel row of Figure 1 — descriptions 31–44, plus shared descriptions
//! 6 (SYCL·Fortran), 14 (Kokkos·Fortran), 16 (Alpaka·Fortran) (§4).

use crate::cell::{Cell, CellBuilder, CellId};
use crate::provider::{Maintenance, Provider};
use crate::route::{Completeness, Directness, Route, RouteKind};
use crate::support::Support;
use crate::taxonomy::{Language, Model, Vendor};

fn id(model: Model, language: Language) -> CellId {
    CellId::new(Vendor::Intel, model, language)
}

pub(super) fn cells() -> Vec<Cell> {
    vec![
        // ─── 31 · Intel · CUDA · C++ ────────────────────────────────────
        CellBuilder::new(
            id(Model::Cuda, Language::Cpp),
            31,
            Support::IndirectGood,
            "Intel does not support CUDA C/C++ on their GPUs but offers \
             SYCLomatic (open source; commercial variant: DPC++ \
             Compatibility Tool) to translate CUDA to SYCL. The community \
             project chipStar (previously CHIP-SPV, 1.0 released) targets \
             Intel GPUs from CUDA via Clang's CUDA support (cuspv wrapper). \
             ZLUDA implemented CUDA on Intel GPUs but is unmaintained.",
        )
        .also(Support::Limited)
        .because(
            "§5 pins the double rating: vendor translation tooling \
             (SYCLomatic) plus honoring the chipStar research project.",
        )
        .route(
            Route::new(
                "SYCLomatic (CUDA→SYCL)",
                RouteKind::SourceTranslator,
                Provider::DeviceVendor,
                Directness::Translated,
                Completeness::Complete,
            )
            .notes("commercial variant: DPC++ Compatibility Tool (oneAPI)"),
        )
        .route(
            Route::new(
                "chipStar (cuspv)",
                RouteKind::Compiler,
                Provider::Community("chipStar"),
                Directness::Translated,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Experimental)
            .notes("previously CHIP-SPV; replaces nvcc calls"),
        )
        .route(
            Route::new(
                "ZLUDA",
                RouteKind::Library,
                Provider::Community("ZLUDA"),
                Directness::Translated,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Unmaintained),
        )
        .refs(&[37, 38, 39])
        .build(),
        // ─── 32 · Intel · CUDA · Fortran ────────────────────────────────
        CellBuilder::new(
            id(Model::Cuda, Language::Fortran),
            32,
            Support::None,
            "No direct support for CUDA Fortran on Intel GPUs; only a simple \
             GitHub example binds SYCL to a (CUDA) Fortran program via \
             ISO_C_BINDING.",
        )
        .because(
            "ISO_C_BINDING heroics are exactly the §3 'no support' \
             escape hatch, not support.",
        )
        .build(),
        // ─── 33 · Intel · HIP · C++ ─────────────────────────────────────
        CellBuilder::new(
            id(Model::Hip, Language::Cpp),
            33,
            Support::Limited,
            "No native HIP support on Intel GPUs; the open-source chipStar \
             maps HIP to OpenCL or Intel's Level Zero runtime via an \
             LLVM-based toolchain (HIP + SPIR-V functionality).",
        )
        .because("One community research project, not yet comprehensive.")
        .route(
            Route::new(
                "chipStar (HIP→OpenCL/Level Zero)",
                RouteKind::Compiler,
                Provider::Community("chipStar"),
                Directness::Translated,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Experimental),
        )
        .refs(&[38])
        .build(),
        // ─── 34 · Intel · HIP · Fortran ─────────────────────────────────
        CellBuilder::new(
            id(Model::Hip, Language::Fortran),
            34,
            Support::None,
            "HIP for Fortran does not exist, and there are no translation \
             efforts for Intel GPUs.",
        )
        .because("No surface, no bindings, no translators.")
        .build(),
        // ─── 35 · Intel · SYCL · C++ ────────────────────────────────────
        CellBuilder::new(
            id(Model::Sycl, Language::Cpp),
            35,
            Support::Full,
            "SYCL (C++17-based Khronos standard) is Intel's prime model, \
             implemented via DPC++ (LLVM-based; own fork with upstreaming \
             planned) and released commercially as Intel oneAPI DPC++. \
             Open SYCL also supports Intel GPUs (SPIR-V or Level Zero); \
             ComputeCpp was a previous solution, unsupported since 09/2023.",
        )
        .because("Native model: vendor-complete with full toolchain.")
        .route(Route::new(
            "Intel oneAPI DPC++ (icpx -fsycl)",
            RouteKind::Compiler,
            Provider::DeviceVendor,
            Directness::Direct,
            Completeness::Complete,
        ))
        .route(Route::new(
            "Open SYCL (SPIR-V/Level Zero)",
            RouteKind::Compiler,
            Provider::Community("Open SYCL"),
            Directness::Direct,
            Completeness::Majority,
        ))
        .route(
            Route::new(
                "ComputeCpp",
                RouteKind::Compiler,
                Provider::Commercial("CodePlay"),
                Directness::Direct,
                Completeness::Majority,
            )
            .maintenance(Maintenance::Unmaintained)
            .notes("unsupported since September 2023"),
        )
        .refs(&[14, 39, 15])
        .build(),
        // ─── 6 · Intel · SYCL · Fortran (shared) ────────────────────────
        CellBuilder::new(
            id(Model::Sycl, Language::Fortran),
            6,
            Support::None,
            "SYCL is a C++-based programming model (C++17) and by its nature \
             does not support Fortran; no pre-made bindings are available.",
        )
        .because("No surface, no bindings — §3 'no support'.")
        .refs(&[16])
        .build(),
        // ─── 36 · Intel · OpenACC · C++ ─────────────────────────────────
        CellBuilder::new(
            id(Model::OpenAcc, Language::Cpp),
            36,
            Support::Limited,
            "No direct OpenACC C/C++ support for Intel GPUs; Intel offers a \
             Python-based source translator, the Application Migration Tool \
             for OpenACC to OpenMP API.",
        )
        .because(
            "Only a migration tool exists — the §6 conclusion states \
             OpenACC 'support for Intel GPUs does not exist'; the tool \
             merits 'limited' rather than 'none'.",
        )
        .route(Route::new(
            "Intel OpenACC→OpenMP migration tool",
            RouteKind::SourceTranslator,
            Provider::DeviceVendor,
            Directness::Translated,
            Completeness::Minimal,
        ))
        .refs(&[40])
        .build(),
        // ─── 37 · Intel · OpenACC · Fortran ─────────────────────────────
        CellBuilder::new(
            id(Model::OpenAcc, Language::Fortran),
            37,
            Support::Limited,
            "No direct OpenACC Fortran support on Intel GPUs; Intel's \
             OpenACC→OpenMP source translator supports Fortran as well.",
        )
        .because("Same migration-tool-only status as the C++ cell.")
        .route(Route::new(
            "Intel OpenACC→OpenMP migration tool (Fortran)",
            RouteKind::SourceTranslator,
            Provider::DeviceVendor,
            Directness::Translated,
            Completeness::Minimal,
        ))
        .refs(&[40])
        .build(),
        // ─── 38 · Intel · OpenMP · C++ ──────────────────────────────────
        CellBuilder::new(
            id(Model::OpenMp, Language::Cpp),
            38,
            Support::Full,
            "OpenMP is a second key model for Intel GPUs: built into Intel \
             oneAPI DPC++/C++ (icpx -qopenmp -fopenmp-targets=spir64). All \
             OpenMP 4.5 and most 5.0/5.1 features are supported.",
        )
        .because(
            "Vendor-provided, prominently promoted, near-complete coverage \
             ('all 4.5, most 5.0/5.1').",
        )
        .route(
            Route::new(
                "Intel oneAPI DPC++/C++ (icpx -qopenmp)",
                RouteKind::Compiler,
                Provider::DeviceVendor,
                Directness::Direct,
                Completeness::Complete,
            )
            .notes("-fopenmp-targets=spir64"),
        )
        .refs(&[39])
        .build(),
        // ─── 39 · Intel · OpenMP · Fortran ──────────────────────────────
        CellBuilder::new(
            id(Model::OpenMp, Language::Fortran),
            39,
            Support::Full,
            "OpenMP Fortran offloading is Intel's main route for Fortran on \
             their GPUs, via the LLVM-based ifx compiler (oneAPI HPC \
             Toolkit): -qopenmp -fopenmp-targets=spir64.",
        )
        .because("Vendor's selected Fortran route, complete implementation.")
        .route(
            Route::new(
                "Intel Fortran Compiler ifx (-qopenmp)",
                RouteKind::Compiler,
                Provider::DeviceVendor,
                Directness::Direct,
                Completeness::Complete,
            )
            .notes("the new LLVM-based ifx, not Fortran Compiler Classic"),
        )
        .refs(&[39])
        .build(),
        // ─── 40 · Intel · Standard · C++ ────────────────────────────────
        CellBuilder::new(
            id(Model::Standard, Language::Cpp),
            40,
            Support::Some,
            "Intel supports C++ pSTL through the open-source oneDPL (oneAPI \
             DPC++ Library) on top of DPC++ — but algorithms, data \
             structures and policies live in the oneapi::dpl:: namespace. \
             Open SYCL is adding --hipsycl-stdpar support.",
        )
        .because(
            "§5 pins the ambivalence: 'all pSTL functionality currently \
             resides in a custom namespace' — supported, not standard-pure.",
        )
        .route(
            Route::new(
                "oneDPL (oneapi::dpl::)",
                RouteKind::Library,
                Provider::DeviceVendor,
                Directness::Direct,
                Completeness::Majority,
            )
            .notes("custom namespace rather than std::execution"),
        )
        .route(
            Route::new(
                "Open SYCL (--hipsycl-stdpar)",
                RouteKind::Compiler,
                Provider::Community("Open SYCL"),
                Directness::Direct,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Experimental),
        )
        .refs(&[26])
        .build(),
        // ─── 41 · Intel · Standard · Fortran ────────────────────────────
        CellBuilder::new(
            id(Model::Standard, Language::Fortran),
            41,
            Support::Full,
            "Fortran standard parallelism (do concurrent) is supported on \
             Intel GPUs through ifx (oneAPI HPC Toolkit): added in oneAPI \
             2022.1 and extended since; enabled via -qopenmp with \
             -fopenmp-target-do-concurrent and -fopenmp-targets=spir64.",
        )
        .because("Vendor-provided, extended over successive releases.")
        .route(
            Route::new(
                "Intel ifx (do concurrent offload)",
                RouteKind::Compiler,
                Provider::DeviceVendor,
                Directness::Direct,
                Completeness::Complete,
            )
            .notes("-fopenmp-target-do-concurrent"),
        )
        .refs(&[39])
        .build(),
        // ─── 42 · Intel · Kokkos · C++ ──────────────────────────────────
        CellBuilder::new(
            id(Model::Kokkos, Language::Cpp),
            42,
            Support::Limited,
            "No direct Intel support for Kokkos; Kokkos targets Intel GPUs \
             through an experimental SYCL backend.",
        )
        .because("Single experimental community backend — 'limited'.")
        .route(
            Route::new(
                "Kokkos SYCL backend (experimental)",
                RouteKind::Library,
                Provider::Community("Kokkos"),
                Directness::Direct,
                Completeness::Majority,
            )
            .maintenance(Maintenance::Experimental),
        )
        .refs(&[27])
        .build(),
        // ─── 14 · Intel · Kokkos · Fortran (shared) ─────────────────────
        CellBuilder::new(
            id(Model::Kokkos, Language::Fortran),
            14,
            Support::Limited,
            "Kokkos is a C++ model, but the official Fortran Language \
             Compatibility Layer (FLCL) lets Fortran use GPUs as supported \
             by Kokkos C++.",
        )
        .because(
            "Indirect via a compatibility layer on top of an experimental \
             backend — 'limited'.",
        )
        .route(
            Route::new(
                "Kokkos FLCL (over SYCL backend)",
                RouteKind::LanguageBinding,
                Provider::Community("Kokkos"),
                Directness::Binding,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Experimental),
        )
        .refs(&[27])
        .build(),
        // ─── 43 · Intel · Alpaka · C++ ──────────────────────────────────
        CellBuilder::new(
            id(Model::Alpaka, Language::Cpp),
            43,
            Support::Limited,
            "Since v0.9.0 Alpaka contains experimental SYCL support that can \
             target Intel GPUs; Alpaka can also fall back to an OpenMP \
             backend.",
        )
        .because("Experimental support only — 'limited'.")
        .route(
            Route::new(
                "Alpaka SYCL backend (experimental, v0.9.0+)",
                RouteKind::Library,
                Provider::Community("Alpaka"),
                Directness::Direct,
                Completeness::Minimal,
            )
            .maintenance(Maintenance::Experimental),
        )
        .route(
            Route::new(
                "Alpaka OpenMP fallback",
                RouteKind::Library,
                Provider::Community("Alpaka"),
                Directness::Direct,
                Completeness::Minimal,
            )
            .notes("host-side fallback, not a GPU offload path"),
        )
        .refs(&[28])
        .build(),
        // ─── 16 · Intel · Alpaka · Fortran (shared) ─────────────────────
        CellBuilder::new(
            id(Model::Alpaka, Language::Fortran),
            16,
            Support::None,
            "Alpaka is a C++ programming model and no ready-made Fortran \
             support exists.",
        )
        .because("No surface, no bindings.")
        .refs(&[28])
        .build(),
        // ─── 44 · Intel · Python ────────────────────────────────────────
        CellBuilder::new(
            id(Model::Python, Language::Python),
            44,
            Support::Full,
            "Intel GPUs are usable from Python through three Intel packages: \
             dpctl (low-level SYCL bindings, PyPI), numba-dpex (Numba JIT \
             extension, Anaconda), and dpnp (NumPy-API extension, PyPI/\
             GitHub).",
        )
        .because(
            "A full vendor-provided stack (low-level bindings, JIT, \
             NumPy-level) — rated as vendor support.",
        )
        .route(
            Route::new(
                "dpctl",
                RouteKind::LanguageBinding,
                Provider::DeviceVendor,
                Directness::Direct,
                Completeness::Complete,
            )
            .notes("Data Parallel Control; low-level SYCL bindings"),
        )
        .route(Route::new(
            "numba-dpex",
            RouteKind::Library,
            Provider::DeviceVendor,
            Directness::Direct,
            Completeness::Majority,
        ))
        .route(
            Route::new(
                "dpnp",
                RouteKind::Library,
                Provider::DeviceVendor,
                Directness::Direct,
                Completeness::Majority,
            )
            .notes("latest versions appear to be available only on GitHub"),
        )
        .refs(&[41, 42, 43])
        .build(),
    ]
}
