//! Aggregate statistics reproducing the paper's headline numbers (§1, §3)
//! and §6 conclusions as machine-checkable queries.

use crate::matrix::CompatMatrix;
use crate::support::Support;
use crate::taxonomy::{Language, Model, Vendor};
use serde::Serialize;
use std::collections::BTreeMap;

/// All headline numbers of the paper, computed from a matrix.
#[derive(Debug, Clone, Serialize)]
pub struct Stats {
    /// §3: "In total, 51 possible combinations are explored …"
    pub combinations: usize,
    /// §3: "… and explained in 44 unique descriptions."
    pub unique_descriptions: usize,
    /// §1: "more than 50 routes for programming a GPU device are identified".
    pub routes: usize,
    /// Per-category cell counts over primary ratings.
    pub by_category: BTreeMap<Support, usize>,
    /// Per-vendor comprehensiveness score (sum of cell scores, best rating).
    pub vendor_scores: BTreeMap<Vendor, u32>,
    /// Per-language average score (the §6 C++ vs Fortran gap).
    pub language_scores: BTreeMap<Language, f64>,
}

/// Compute all statistics for a matrix.
pub fn stats(matrix: &CompatMatrix) -> Stats {
    let mut by_category: BTreeMap<Support, usize> = BTreeMap::new();
    let mut vendor_scores: BTreeMap<Vendor, u32> = BTreeMap::new();
    let mut lang_sum: BTreeMap<Language, (u32, u32)> = BTreeMap::new();
    for cell in matrix.cells() {
        *by_category.entry(cell.support).or_default() += 1;
        *vendor_scores.entry(cell.id.vendor).or_default() += cell.best_support().score();
        let e = lang_sum.entry(cell.id.language).or_default();
        e.0 += cell.best_support().score();
        e.1 += 1;
    }
    Stats {
        combinations: matrix.len(),
        unique_descriptions: matrix.unique_description_count(),
        routes: matrix.route_count(),
        by_category,
        vendor_scores,
        language_scores: lang_sum
            .into_iter()
            .map(|(l, (sum, n))| (l, f64::from(sum) / f64::from(n)))
            .collect(),
    }
}

/// The vendor with the most comprehensive overall support
/// (§6: "The support for NVIDIA GPUs can be considered most comprehensive").
pub fn most_comprehensive_vendor(matrix: &CompatMatrix) -> Vendor {
    let s = stats(matrix);
    *s.vendor_scores.iter().max_by_key(|&(_, score)| *score).expect("matrix is non-empty").0
}

/// Models whose best support reaches at least `bar` on every vendor for the
/// given language.
pub fn models_supported_everywhere(
    matrix: &CompatMatrix,
    language: Language,
    bar: Support,
) -> Vec<Model> {
    Model::ALL
        .into_iter()
        .filter(|m| m.languages().contains(&language))
        .filter(|&m| {
            Vendor::ALL.iter().all(|&v| {
                matrix.cell(v, m, language).map(|c| c.best_support() <= bar).unwrap_or(false)
            })
        })
        .collect()
}

/// §6: "The only natively supported programming model on all three
/// platforms [for Fortran] is OpenMP" — models with *vendor-tier* support
/// (full / indirect good / some) on every vendor for a language.
pub fn models_vendor_supported_everywhere(matrix: &CompatMatrix, language: Language) -> Vec<Model> {
    Model::ALL
        .into_iter()
        .filter(|m| m.languages().contains(&language))
        .filter(|&m| {
            Vendor::ALL.iter().all(|&v| {
                matrix
                    .cell(v, m, language)
                    .map(|c| {
                        c.support.is_vendor_tier()
                            || c.secondary_support.is_some_and(|s| s.is_vendor_tier())
                    })
                    .unwrap_or(false)
            })
        })
        .collect()
}

/// The §6 C++ vs Fortran observation: average cell score per language.
/// Returns (cpp_avg, fortran_avg).
pub fn language_gap(matrix: &CompatMatrix) -> (f64, f64) {
    let s = stats(matrix);
    (
        s.language_scores.get(&Language::Cpp).copied().unwrap_or(0.0),
        s.language_scores.get(&Language::Fortran).copied().unwrap_or(0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_numbers() {
        let m = CompatMatrix::paper();
        let s = stats(&m);
        assert_eq!(s.combinations, 51);
        assert_eq!(s.unique_descriptions, 44);
        assert!(s.routes > 50, "routes = {}", s.routes);
    }

    #[test]
    fn nvidia_most_comprehensive() {
        // §6 conclusion.
        let m = CompatMatrix::paper();
        assert_eq!(most_comprehensive_vendor(&m), Vendor::Nvidia);
    }

    #[test]
    fn vendor_score_ordering_matches_field_history() {
        // §6 claims only that NVIDIA's support is the most comprehensive,
        // "founded in their long-time prevalence in the field" — it makes
        // no AMD-vs-Intel claim (our encoding has them within one point).
        let m = CompatMatrix::paper();
        let s = stats(&m);
        assert!(s.vendor_scores[&Vendor::Nvidia] > s.vendor_scores[&Vendor::Amd]);
        assert!(s.vendor_scores[&Vendor::Nvidia] > s.vendor_scores[&Vendor::Intel]);
        let gap = s.vendor_scores[&Vendor::Amd].abs_diff(s.vendor_scores[&Vendor::Intel]);
        assert!(gap <= 3, "AMD/Intel unexpectedly far apart: {gap}");
    }

    #[test]
    fn openmp_is_the_only_fortran_model_vendor_supported_everywhere() {
        // §6: "While the C++ support appears to be well on the way to good
        // compatibility and portability, the situation looks severely
        // different for Fortran. The only natively supported programming
        // model on all three platforms is OpenMP."
        let m = CompatMatrix::paper();
        let models = models_vendor_supported_everywhere(&m, Language::Fortran);
        assert_eq!(models, vec![Model::OpenMp]);
    }

    #[test]
    fn sycl_and_openmp_reach_all_three_platforms_in_cpp() {
        // §6: SYCL "supports all three GPU platform[s]"; OpenMP "is
        // supported on all three platforms".
        let m = CompatMatrix::paper();
        let everywhere = models_supported_everywhere(&m, Language::Cpp, Support::NonVendorGood);
        assert!(everywhere.contains(&Model::Sycl));
        assert!(everywhere.contains(&Model::OpenMp));
        // OpenACC does not reach Intel (§6: "support for Intel GPUs does
        // not exist").
        assert!(!everywhere.contains(&Model::OpenAcc));
    }

    #[test]
    fn kokkos_and_alpaka_reach_all_platforms_at_some_level() {
        // §6: "Kokkos and Alpaka both provide higher-level abstractions and
        // support all three platform[s]" — on Intel only via experimental
        // backends, so the bar here is Limited, not NonVendorGood.
        let m = CompatMatrix::paper();
        let everywhere = models_supported_everywhere(&m, Language::Cpp, Support::Limited);
        assert!(everywhere.contains(&Model::Kokkos));
        assert!(everywhere.contains(&Model::Alpaka));
    }

    #[test]
    fn python_well_supported_on_all_platforms() {
        // §6: "Python … is also well-supported by all three platforms" —
        // with AMD's support being third-party/limited, the universal bar
        // is Limited.
        let m = CompatMatrix::paper();
        let everywhere = models_supported_everywhere(&m, Language::Python, Support::Limited);
        assert_eq!(everywhere, vec![Model::Python]);
    }

    #[test]
    fn cpp_beats_fortran_on_average() {
        // §6: "the situation looks severely different for Fortran".
        let m = CompatMatrix::paper();
        let (cpp, fortran) = language_gap(&m);
        assert!(
            cpp > fortran + 1.0,
            "expected a clear gap, got C++ {cpp:.2} vs Fortran {fortran:.2}"
        );
    }

    #[test]
    fn category_counts_cover_all_cells() {
        let m = CompatMatrix::paper();
        let s = stats(&m);
        assert_eq!(s.by_category.values().sum::<usize>(), 51);
        // Every category from the §3 list is actually used somewhere.
        for cat in Support::ALL {
            assert!(
                s.by_category.get(&cat).copied().unwrap_or(0) > 0,
                "category {cat} unused — the paper's legend would be dead weight"
            );
        }
    }

    #[test]
    fn stats_serialize_to_json() {
        let m = CompatMatrix::paper();
        let s = stats(&m);
        let j = serde_json::to_string_pretty(&s).unwrap();
        assert!(j.contains("combinations"));
        assert!(j.contains("51"));
    }
}
