//! A fluent query interface over the matrix — the "guide for scientific
//! programmers" use-case from the paper's introduction: given constraints
//! (my code is Fortran; I refuse unmaintained toolchains; I need at least
//! vendor-tier support), which combinations remain?

use crate::cell::Cell;
use crate::matrix::CompatMatrix;
use crate::support::Support;
use crate::taxonomy::{Language, Model, Vendor};

/// A filter over matrix cells. All constraints are conjunctive.
#[derive(Debug, Clone, Default)]
pub struct Query {
    vendors: Option<Vec<Vendor>>,
    models: Option<Vec<Model>>,
    languages: Option<Vec<Language>>,
    at_least: Option<Support>,
    require_viable_route: bool,
    require_executable_route: bool,
    require_vendor_tier: bool,
}

impl Query {
    /// Start an unconstrained query (matches all 51 cells).
    pub fn new() -> Self {
        Self::default()
    }

    /// Restrict to the given vendors.
    pub fn vendors(mut self, vendors: impl IntoIterator<Item = Vendor>) -> Self {
        self.vendors = Some(vendors.into_iter().collect());
        self
    }

    /// Restrict to the given models.
    pub fn models(mut self, models: impl IntoIterator<Item = Model>) -> Self {
        self.models = Some(models.into_iter().collect());
        self
    }

    /// Restrict to the given languages.
    pub fn languages(mut self, languages: impl IntoIterator<Item = Language>) -> Self {
        self.languages = Some(languages.into_iter().collect());
        self
    }

    /// Require the cell's best rating to be at least this good
    /// (remember: [`Support`] orders best-to-worst).
    pub fn at_least(mut self, support: Support) -> Self {
        self.at_least = Some(support);
        self
    }

    /// Require at least one route that is maintained and non-minimal.
    pub fn viable_route(mut self) -> Self {
        self.require_viable_route = true;
        self
    }

    /// Require at least one route a runtime frontend can drive end-to-end
    /// (see `Route::is_executable`). This is the matrix's *routability
    /// verdict*: the cells it matches are exactly those where a frontend
    /// must accept the vendor, and the cells it rejects are those where a
    /// frontend must refuse.
    pub fn executable_route(mut self) -> Self {
        self.require_executable_route = true;
        self
    }

    /// Require support provided by a vendor (the §3 vendor tiers:
    /// full / indirect good / some).
    pub fn vendor_tier(mut self) -> Self {
        self.require_vendor_tier = true;
        self
    }

    /// Does a cell satisfy this query?
    pub fn matches(&self, cell: &Cell) -> bool {
        if let Some(v) = &self.vendors {
            if !v.contains(&cell.id.vendor) {
                return false;
            }
        }
        if let Some(m) = &self.models {
            if !m.contains(&cell.id.model) {
                return false;
            }
        }
        if let Some(l) = &self.languages {
            if !l.contains(&cell.id.language) {
                return false;
            }
        }
        if let Some(bar) = self.at_least {
            if cell.best_support() > bar {
                return false;
            }
        }
        if self.require_viable_route && cell.viable_routes().next().is_none() {
            return false;
        }
        if self.require_executable_route && cell.executable_routes().next().is_none() {
            return false;
        }
        if self.require_vendor_tier && !cell.best_support().is_vendor_tier() {
            return false;
        }
        true
    }

    /// Run the query over a matrix.
    pub fn run<'m>(&'m self, matrix: &'m CompatMatrix) -> impl Iterator<Item = &'m Cell> + 'm {
        matrix.cells().filter(move |c| self.matches(c))
    }

    /// Run the query and count matches.
    pub fn count(&self, matrix: &CompatMatrix) -> usize {
        self.run(matrix).count()
    }
}

/// Advice produced by [`advise`]: viable combinations ranked best-first.
#[derive(Debug, Clone)]
pub struct Advice<'m> {
    /// Matching cells, best support first; ties keep matrix order.
    pub options: Vec<&'m Cell>,
}

/// The paper's introductory scenario: help a scientific programmer navigate
/// the choices. Returns matching cells ranked by best support, then by
/// number of viable routes (more routes = less lock-in).
pub fn advise<'m>(matrix: &'m CompatMatrix, query: &'m Query) -> Advice<'m> {
    let mut options: Vec<&Cell> = query.run(matrix).collect();
    options.sort_by_key(|c| (c.best_support(), usize::MAX - c.viable_routes().count()));
    Advice { options }
}

impl<'m> Advice<'m> {
    /// The single best option, if any.
    pub fn best(&self) -> Option<&'m Cell> {
        self.options.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_query_matches_all() {
        let m = CompatMatrix::paper();
        assert_eq!(Query::new().count(&m), 51);
    }

    #[test]
    fn fortran_on_intel_is_narrow() {
        // §6: for Fortran, OpenMP is the well-supported route on Intel.
        let m = CompatMatrix::paper();
        let q = Query::new()
            .vendors([Vendor::Intel])
            .languages([Language::Fortran])
            .at_least(Support::Some);
        let hits: Vec<_> = q.run(&m).map(|c| c.id.model).collect();
        assert_eq!(hits, vec![Model::OpenMp, Model::Standard]);
    }

    #[test]
    fn vendor_tier_filter() {
        let m = CompatMatrix::paper();
        // SYCL on NVIDIA is good but non-vendor — excluded by vendor_tier.
        let q = Query::new()
            .vendors([Vendor::Nvidia])
            .models([Model::Sycl])
            .languages([Language::Cpp])
            .vendor_tier();
        assert_eq!(q.count(&m), 0);
        // CUDA on NVIDIA is vendor-tier.
        let q = Query::new()
            .vendors([Vendor::Nvidia])
            .models([Model::Cuda])
            .languages([Language::Cpp])
            .vendor_tier();
        assert_eq!(q.count(&m), 1);
    }

    #[test]
    fn viable_route_filter_excludes_stale_only_cells() {
        let m = CompatMatrix::paper();
        // AMD CUDA Fortran has only the stale GPUFORT route.
        let q = Query::new()
            .vendors([Vendor::Amd])
            .models([Model::Cuda])
            .languages([Language::Fortran])
            .viable_route();
        assert_eq!(q.count(&m), 0);
    }

    #[test]
    fn executable_route_filter_refuses_translation_only_cells() {
        let m = CompatMatrix::paper();
        // CUDA C++ on AMD: HIPIFY is a source translator — not a runtime
        // route, so the frontend verdict is "refuse".
        let q = Query::new()
            .vendors([Vendor::Amd])
            .models([Model::Cuda])
            .languages([Language::Cpp])
            .executable_route();
        assert_eq!(q.count(&m), 0);
        // HIP C++ on Intel: chipStar exists and is registry-usable, but is
        // a minimal-coverage translation shim — still a refusal.
        let q = Query::new()
            .vendors([Vendor::Intel])
            .models([Model::Hip])
            .languages([Language::Cpp])
            .executable_route();
        assert_eq!(q.count(&m), 0);
        // HIP C++ on NVIDIA: hipcc's CUDA backend is translated but
        // complete — executable.
        let q = Query::new()
            .vendors([Vendor::Nvidia])
            .models([Model::Hip])
            .languages([Language::Cpp])
            .executable_route();
        assert_eq!(q.count(&m), 1);
        // Python on AMD: CuPy's ROCm support is experimental but direct
        // and majority-complete — executable.
        let q = Query::new()
            .vendors([Vendor::Amd])
            .models([Model::Python])
            .languages([Language::Python])
            .executable_route();
        assert_eq!(q.count(&m), 1);
    }

    #[test]
    fn advise_ranks_best_first() {
        let m = CompatMatrix::paper();
        let q = Query::new().vendors([Vendor::Amd]).languages([Language::Cpp]);
        let advice = advise(&m, &q);
        let best = advice.best().unwrap();
        assert_eq!(best.id.model, Model::Hip);
        assert_eq!(best.support, Support::Full);
        // Everything is sorted non-decreasing in support rank.
        for w in advice.options.windows(2) {
            assert!(w[0].best_support() <= w[1].best_support());
        }
    }

    #[test]
    fn portable_models_for_cpp() {
        // Which models offer at least usable support on *every* vendor for
        // C++? §6 names SYCL, OpenMP, Kokkos, Alpaka as all-platform; with
        // a strict >=Some bar, Kokkos/Alpaka drop out on Intel (limited).
        let m = CompatMatrix::paper();
        let mut portable = Vec::new();
        for model in Model::ALL {
            if model == Model::Python {
                continue;
            }
            let ok = Vendor::ALL.iter().all(|&v| {
                m.cell(v, model, Language::Cpp)
                    .map(|c| c.best_support() <= Support::NonVendorGood)
                    .unwrap_or(false)
            });
            if ok {
                portable.push(model);
            }
        }
        assert_eq!(portable, vec![Model::Cuda, Model::Sycl, Model::OpenMp]);
    }
}
