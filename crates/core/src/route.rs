//! Concrete implementation *routes*: the toolchains through which a
//! programming model reaches a device.
//!
//! §1 counts "more than 50 routes for programming a GPU device ... when no
//! further limitations (pre-)exist"; §4's descriptions enumerate them per
//! cell (e.g. SYCL reaches NVIDIA GPUs through DPC++, Open SYCL, or — until
//! 09/2023 — ComputeCpp). A [`Route`] captures one such path together with
//! the evidence the §3 rating method needs: provider, directness,
//! completeness, maintenance, and documentation.

use crate::provider::{Maintenance, Provider};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How directly the route maps the model onto the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Directness {
    /// A first-class implementation (nvcc for CUDA on NVIDIA, DPC++ for
    /// SYCL on Intel).
    Direct,
    /// The model is (semi-)automatically mapped/translated onto a native
    /// model or runtime (HIP's CUDA backend; Clacc translating OpenACC to
    /// OpenMP; HIPIFY/SYCLomatic source translation).
    Translated,
    /// A binding/compatibility layer exposes an existing implementation to
    /// another language (hipfort, Kokkos' FLCL).
    Binding,
}

impl Directness {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Directness::Direct => "direct",
            Directness::Translated => "translated",
            Directness::Binding => "binding",
        }
    }
}

impl fmt::Display for Directness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How much of the model's surface the route covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Completeness {
    /// Nearly all of the model is available (CUDA on NVIDIA; OpenACC in
    /// NVHPC, which "conforms to version 2.7 of the specification").
    Complete,
    /// The majority of applications work, specific features missing
    /// (OpenMP offload in NVHPC — "only a subset of the entire OpenMP 5.0
    /// standard"; AOMP — "most OpenMP 4.5 and some OpenMP 5.0").
    Majority,
    /// Coverage "driven by use-case requirements" or otherwise very
    /// incomplete (GPUFORT).
    Minimal,
}

impl Completeness {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Completeness::Complete => "complete",
            Completeness::Majority => "majority",
            Completeness::Minimal => "minimal",
        }
    }
}

impl fmt::Display for Completeness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A broad classification of the software artifact realising the route,
/// used by the simulator-side toolchain registry to pick an executable path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteKind {
    /// A compiler or compiler driver (nvcc, hipcc, icpx, gcc, clang).
    Compiler,
    /// A library implementing the model atop another (Kokkos, Alpaka,
    /// oneDPL, CuPy).
    Library,
    /// A source-to-source translator run ahead of compilation (HIPIFY,
    /// SYCLomatic, GPUFORT, Intel's OpenACC→OpenMP migration tool).
    SourceTranslator,
    /// A pre-made language binding (hipfort, FLCL, dpctl).
    LanguageBinding,
}

impl RouteKind {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            RouteKind::Compiler => "compiler",
            RouteKind::Library => "library",
            RouteKind::SourceTranslator => "source translator",
            RouteKind::LanguageBinding => "language binding",
        }
    }
}

/// One concrete toolchain path from model+language to device.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    /// Short name of the toolchain ("NVIDIA HPC SDK (nvfortran)",
    /// "Open SYCL", "GCC ≥5.0", "chipStar").
    pub toolchain: &'static str,
    /// What kind of artifact the toolchain is.
    pub kind: RouteKind,
    /// Who provides it.
    pub provider: Provider,
    /// How direct the mapping is.
    pub directness: Directness,
    /// How much of the model's surface it covers.
    pub completeness: Completeness,
    /// How alive it is.
    pub maintenance: Maintenance,
    /// Whether the provider documents the route properly (§5 notes that at
    /// times "proper documentation sometimes does not exist (yet)").
    pub documented: bool,
    /// Free-text notes taken from the paper's description (compiler flags,
    /// environment variables, caveats).
    pub notes: &'static str,
}

impl Route {
    /// A builder-style constructor with the common defaults
    /// (documented, active, no notes).
    pub fn new(
        toolchain: &'static str,
        kind: RouteKind,
        provider: Provider,
        directness: Directness,
        completeness: Completeness,
    ) -> Self {
        Self {
            toolchain,
            kind,
            provider,
            directness,
            completeness,
            maintenance: Maintenance::Active,
            documented: true,
            notes: "",
        }
    }

    /// Override the maintenance status.
    pub fn maintenance(mut self, m: Maintenance) -> Self {
        self.maintenance = m;
        self
    }

    /// Mark the route as undocumented (or under-documented).
    pub fn undocumented(mut self) -> Self {
        self.documented = false;
        self
    }

    /// Attach free-text notes (flags, env vars, caveats).
    pub fn notes(mut self, notes: &'static str) -> Self {
        self.notes = notes;
        self
    }

    /// Is the route practically usable today (maintained and at least
    /// majority-complete)?
    pub fn is_viable(&self) -> bool {
        self.maintenance.is_viable() && self.completeness != Completeness::Minimal
    }

    /// Can a frontend *drive* this route end-to-end at run time?
    ///
    /// A route is executable when it is an IR-level path (not an
    /// ahead-of-time source translator, which produces code for a
    /// *different* cell), is not explicitly unmaintained, and is not a
    /// minimal-coverage translation shim — the chipStar class, which §5
    /// credits as "one community research project" rather than a
    /// comprehensive implementation. This is deliberately *weaker* than
    /// [`Route::is_viable`] (experimental and stale-but-working routes
    /// still execute) and *stronger* than mere matrix presence: it is the
    /// accept/refuse line every runtime frontend draws for a vendor.
    pub fn is_executable(&self) -> bool {
        self.kind != RouteKind::SourceTranslator
            && self.maintenance != Maintenance::Unmaintained
            && !(self.directness == Directness::Translated
                && self.completeness == Completeness::Minimal)
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} | {} | {} | {} | {}]",
            self.toolchain,
            self.kind.label(),
            self.provider,
            self.directness,
            self.completeness,
            self.maintenance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::Vendor;

    fn sample() -> Route {
        Route::new(
            "Open SYCL",
            RouteKind::Compiler,
            Provider::Community("Open SYCL"),
            Directness::Direct,
            Completeness::Complete,
        )
    }

    #[test]
    fn builder_defaults() {
        let r = sample();
        assert_eq!(r.maintenance, Maintenance::Active);
        assert!(r.documented);
        assert!(r.is_viable());
    }

    #[test]
    fn stale_routes_not_viable() {
        let r = sample().maintenance(Maintenance::Stale);
        assert!(!r.is_viable());
        let r = sample().maintenance(Maintenance::Unmaintained);
        assert!(!r.is_viable());
    }

    #[test]
    fn minimal_coverage_not_viable() {
        let mut r = sample();
        r.completeness = Completeness::Minimal;
        assert!(!r.is_viable());
    }

    #[test]
    fn experimental_routes_are_viable_but_flagged() {
        let r = sample().maintenance(Maintenance::Experimental);
        assert!(r.is_viable());
        assert_ne!(r.maintenance, Maintenance::Active);
    }

    #[test]
    fn display_contains_key_facts() {
        let r = Route::new(
            "HIP (CUDA backend)",
            RouteKind::Compiler,
            Provider::OtherVendor(Vendor::Amd),
            Directness::Translated,
            Completeness::Complete,
        )
        .notes("HIP_PLATFORM=nvidia");
        let s = r.to_string();
        assert!(s.contains("HIP (CUDA backend)"));
        assert!(s.contains("translated"));
        assert!(s.contains("AMD"));
    }

    #[test]
    fn serde_roundtrip_loses_nothing() {
        let r = sample().notes("-fsycl").maintenance(Maintenance::Experimental);
        let j = serde_json::to_string(&r).unwrap();
        // &'static str fields deserialize via owned leak-free path only for
        // borrowed data; verify serialization shape instead.
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["toolchain"], "Open SYCL");
        assert_eq!(v["maintenance"], "Experimental");
        assert_eq!(v["notes"], "-fsycl");
    }
}
