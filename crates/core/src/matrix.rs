//! The Figure 1 matrix: all cells, indexed by (vendor, model, language).

use crate::cell::{Cell, CellId};
use crate::dataset;
use crate::support::Support;
use crate::taxonomy::{Language, Model, Vendor};
use std::collections::BTreeMap;

/// The compatibility matrix of Figure 1.
///
/// Holds one [`Cell`] per vendor × model × language combination and provides
/// lookup, iteration, and aggregate views. Construct the paper's data with
/// [`CompatMatrix::paper`], or build a custom/perturbed matrix with
/// [`CompatMatrix::from_cells`] (see [`crate::evolution`]).
#[derive(Debug, Clone)]
pub struct CompatMatrix {
    cells: BTreeMap<CellId, Cell>,
}

impl CompatMatrix {
    /// The matrix exactly as published in the paper.
    pub fn paper() -> Self {
        Self::from_cells(dataset::paper_cells())
    }

    /// Build a matrix from arbitrary cells (later duplicates replace
    /// earlier ones).
    pub fn from_cells(cells: impl IntoIterator<Item = Cell>) -> Self {
        Self { cells: cells.into_iter().map(|c| (c.id, c)).collect() }
    }

    /// Look up one cell.
    pub fn cell(&self, vendor: Vendor, model: Model, language: Language) -> Option<&Cell> {
        self.cells.get(&CellId::new(vendor, model, language))
    }

    /// Iterate all cells in (vendor, model, language) order.
    pub fn cells(&self) -> impl Iterator<Item = &Cell> {
        self.cells.values()
    }

    /// Iterate the cells of one vendor row.
    pub fn row(&self, vendor: Vendor) -> impl Iterator<Item = &Cell> + '_ {
        self.cells.values().filter(move |c| c.id.vendor == vendor)
    }

    /// Iterate the cells of one model column.
    pub fn column(&self, model: Model) -> impl Iterator<Item = &Cell> + '_ {
        self.cells.values().filter(move |c| c.id.model == model)
    }

    /// The number of unique §4 description entries covering the matrix.
    pub fn unique_description_count(&self) -> usize {
        self.cells
            .values()
            .map(|c| c.description_id)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }

    /// Total number of encoded routes across all cells.
    pub fn route_count(&self) -> usize {
        self.cells.values().map(|c| c.routes.len()).sum()
    }

    /// The support level of a combination, `Support::None` if the cell is
    /// absent entirely.
    pub fn support(&self, vendor: Vendor, model: Model, language: Language) -> Support {
        self.cell(vendor, model, language).map_or(Support::None, |c| c.support)
    }

    /// Replace a cell (used by [`crate::evolution`]).
    pub fn replace(&mut self, cell: Cell) -> Option<Cell> {
        self.cells.insert(cell.id, cell)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Is the matrix empty?
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

impl Default for CompatMatrix {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matrix_has_51_cells() {
        let m = CompatMatrix::paper();
        assert_eq!(m.len(), 51);
        assert!(!m.is_empty());
        assert_eq!(m.cells().count(), 51);
    }

    #[test]
    fn rows_have_17_cells_each() {
        let m = CompatMatrix::paper();
        for v in Vendor::ALL {
            assert_eq!(m.row(v).count(), 17);
        }
    }

    #[test]
    fn columns_have_expected_sizes() {
        let m = CompatMatrix::paper();
        for model in Model::ALL {
            let expect = if model == Model::Python { 3 } else { 6 };
            assert_eq!(m.column(model).count(), expect, "{model}");
        }
    }

    #[test]
    fn lookup_hits_and_misses() {
        let m = CompatMatrix::paper();
        assert!(m.cell(Vendor::Amd, Model::Hip, Language::Cpp).is_some());
        // Python language only exists under the Python column.
        assert!(m.cell(Vendor::Amd, Model::Hip, Language::Python).is_none());
        assert_eq!(m.support(Vendor::Amd, Model::Hip, Language::Python), Support::None);
        assert_eq!(m.support(Vendor::Amd, Model::Hip, Language::Cpp), Support::Full);
    }

    #[test]
    fn replace_swaps_a_cell() {
        let mut m = CompatMatrix::paper();
        let mut cell = m.cell(Vendor::Amd, Model::Standard, Language::Cpp).unwrap().clone();
        cell.support = Support::Full;
        let old = m.replace(cell).unwrap();
        assert_eq!(old.support, Support::Limited);
        assert_eq!(m.support(Vendor::Amd, Model::Standard, Language::Cpp), Support::Full);
        assert_eq!(m.len(), 51);
    }

    #[test]
    fn unique_descriptions_and_routes() {
        let m = CompatMatrix::paper();
        assert_eq!(m.unique_description_count(), 44);
        assert!(m.route_count() > 50);
    }
}
