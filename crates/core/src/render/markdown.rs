//! Figure 1 as a GitHub-flavored Markdown table (the paper's companion
//! repository renders the same data into its README).

use super::cell_symbols;
use crate::matrix::CompatMatrix;
use crate::taxonomy::{Model, Vendor};

/// Render the matrix as a Markdown table with a legend.
pub fn render(matrix: &CompatMatrix) -> String {
    let mut out = String::new();

    // Header: one column per model × language.
    out.push_str("| Vendor ");
    for m in Model::ALL {
        for l in m.languages() {
            if m.languages().len() == 1 {
                out.push_str(&format!("| {} ", m.name()));
            } else {
                out.push_str(&format!("| {} {} ", m.name(), l.name()));
            }
        }
    }
    out.push_str("|\n");

    let cols = 1 + Model::ALL.iter().map(|m| m.languages().len()).sum::<usize>();
    out.push_str(&"|---".repeat(cols));
    out.push_str("|\n");

    for v in Vendor::ALL {
        out.push_str(&format!("| **{}** ", v.name()));
        for m in Model::ALL {
            for &l in m.languages() {
                let sym = matrix
                    .cell(v, m, l)
                    .map(|c| cell_symbols(c, true))
                    .unwrap_or_else(|| "?".to_owned());
                out.push_str(&format!("| {sym} "));
            }
        }
        out.push_str("|\n");
    }

    out.push('\n');
    out.push_str("Legend:\n\n");
    for s in crate::support::Support::ALL {
        out.push_str(&format!("- {} — {}\n", s.symbol(), s.category_name()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_three_data_rows_and_18_columns() {
        let m = CompatMatrix::paper();
        let s = render(&m);
        let rows: Vec<&str> = s.lines().filter(|l| l.starts_with("| **")).collect();
        assert_eq!(rows.len(), 3);
        for row in rows {
            // 18 columns → 19 pipes.
            assert_eq!(row.matches('|').count(), 19, "{row}");
        }
    }

    #[test]
    fn header_mentions_languages() {
        let m = CompatMatrix::paper();
        let s = render(&m);
        let header = s.lines().next().unwrap();
        assert!(header.contains("CUDA C++"));
        assert!(header.contains("CUDA Fortran"));
        assert!(header.contains("etc (Python)"));
    }

    #[test]
    fn legend_present() {
        let m = CompatMatrix::paper();
        let s = render(&m);
        assert!(s.contains("Legend:"));
        assert!(s.contains("full support"));
    }
}
