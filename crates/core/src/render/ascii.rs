//! Figure 1 as a Unicode box-drawing table for terminals.

use super::cell_symbols;
use crate::matrix::CompatMatrix;
use crate::taxonomy::{Model, Vendor};

/// Render the matrix with Unicode symbols and box drawing.
pub fn render(matrix: &CompatMatrix) -> String {
    render_opts(matrix, true)
}

/// Render with plain-ASCII symbols (for dumb terminals / logs).
pub fn render_plain(matrix: &CompatMatrix) -> String {
    render_opts(matrix, false)
}

fn render_opts(matrix: &CompatMatrix, unicode: bool) -> String {
    // Column layout: vendor | per model: one sub-column per language.
    let vendor_w = Vendor::ALL.iter().map(|v| v.name().len()).max().unwrap_or(6);
    let mut out = String::new();

    // Header line 1: model names spanning their language sub-columns.
    let sub_w = 4; // width of one language sub-column
    out.push_str(&format!("{:vendor_w$} ", ""));
    for m in Model::ALL {
        let span = m.languages().len() * (sub_w + 1) - 1;
        out.push_str(&format!("|{:^span$}", m.name().chars().take(span).collect::<String>()));
    }
    out.push_str("|\n");

    // Header line 2: language sub-columns.
    out.push_str(&format!("{:vendor_w$} ", ""));
    for m in Model::ALL {
        for l in m.languages() {
            let label = match l {
                crate::taxonomy::Language::Cpp => "C++",
                crate::taxonomy::Language::Fortran => "Ftn",
                crate::taxonomy::Language::Python => "Py",
            };
            out.push_str(&format!("|{label:^sub_w$}"));
        }
    }
    out.push_str("|\n");

    // Separator.
    let total = vendor_w
        + 1
        + Model::ALL.iter().map(|m| m.languages().len() * (sub_w + 1)).sum::<usize>()
        + 1;
    out.push_str(&"-".repeat(total));
    out.push('\n');

    // One row per vendor.
    for v in Vendor::ALL {
        out.push_str(&format!("{:vendor_w$} ", v.name()));
        for m in Model::ALL {
            for &l in m.languages() {
                let sym = matrix
                    .cell(v, m, l)
                    .map(|c| cell_symbols(c, unicode))
                    .unwrap_or_else(|| "?".to_owned());
                // Pad by display width: count chars, not bytes.
                let w = sym.chars().count();
                let pad = sub_w.saturating_sub(w);
                let left = pad / 2 + pad % 2;
                let right = pad / 2;
                out.push('|');
                out.push_str(&" ".repeat(left));
                out.push_str(&sym);
                out.push_str(&" ".repeat(right));
            }
        }
        out.push_str("|\n");
    }

    out.push('\n');
    out.push_str(&super::legend(unicode));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_all_vendors_and_models() {
        let m = CompatMatrix::paper();
        let s = render(&m);
        for v in Vendor::ALL {
            assert!(s.contains(v.name()), "missing {v}");
        }
        // Model names may be truncated to their span; check prefixes.
        assert!(s.contains("CUDA"));
        assert!(s.contains("HIP"));
        assert!(s.contains("SYCL"));
    }

    #[test]
    fn has_51_symbol_cells() {
        let m = CompatMatrix::paper();
        let s = render(&m);
        let symbols: usize = s
            .lines()
            .filter(|l| Vendor::ALL.iter().any(|v| l.starts_with(v.name())))
            .map(|l| l.chars().filter(|c| ['●', '◐', '◒', '◍', '◌', '✕'].contains(c)).count())
            .sum();
        // 51 cells + 2 double ratings = 53 symbols, legend excluded because
        // legend lines don't start with a vendor name.
        assert_eq!(symbols, 53);
    }

    #[test]
    fn plain_variant_is_pure_ascii() {
        let m = CompatMatrix::paper();
        let s = render_plain(&m);
        assert!(s.is_ascii(), "plain render contains non-ASCII");
        assert!(s.contains('#')); // full support marker
        assert!(s.contains('x')); // no support marker
    }

    #[test]
    fn rows_have_consistent_width() {
        let m = CompatMatrix::paper();
        let s = render(&m);
        let row_widths: Vec<usize> =
            s.lines().filter(|l| l.contains('|')).map(|l| l.chars().count()).collect();
        assert!(!row_widths.is_empty());
        for w in &row_widths {
            assert_eq!(*w, row_widths[0], "ragged table:\n{s}");
        }
    }
}
