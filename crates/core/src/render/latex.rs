//! Figure 1 as a LaTeX tabular — the paper artifact's YAML→TeX conversion.

use crate::matrix::CompatMatrix;
use crate::support::Support;
use crate::taxonomy::{Model, Vendor};

/// LaTeX command name used for a category symbol (the real paper defines
/// such macros for its glyphs).
fn macro_for(s: Support) -> &'static str {
    match s {
        Support::Full => "\\supfull",
        Support::IndirectGood => "\\supindirect",
        Support::Some => "\\supsome",
        Support::NonVendorGood => "\\supnonvendor",
        Support::Limited => "\\suplimited",
        Support::None => "\\supnone",
    }
}

/// Render the matrix as a LaTeX `tabular` environment with a macro
/// preamble.
pub fn render(matrix: &CompatMatrix) -> String {
    let mut out = String::new();
    out.push_str("% Auto-generated compatibility table\n");
    for s in Support::ALL {
        out.push_str(&format!(
            "\\newcommand{{{}}}{{{}}} % {}\n",
            macro_for(s),
            s.symbol(),
            s.category_name()
        ));
    }
    let ncols = Model::ALL.iter().map(|m| m.languages().len()).sum::<usize>();
    out.push_str(&format!("\\begin{{tabular}}{{l{}}}\n", "c".repeat(ncols)));
    out.push_str("\\toprule\n");

    // Model header with multicolumn spans.
    out.push_str("Vendor");
    for m in Model::ALL {
        out.push_str(&format!(
            " & \\multicolumn{{{}}}{{c}}{{{}}}",
            m.languages().len(),
            tex_escape(m.name())
        ));
    }
    out.push_str(" \\\\\n");

    // Language header.
    out.push(' ');
    for m in Model::ALL {
        for l in m.languages() {
            out.push_str(&format!(" & {}", tex_escape(l.name())));
        }
    }
    out.push_str(" \\\\\n\\midrule\n");

    for v in Vendor::ALL {
        out.push_str(v.name());
        for m in Model::ALL {
            for &l in m.languages() {
                match matrix.cell(v, m, l) {
                    Some(c) => {
                        out.push_str(" & ");
                        out.push_str(macro_for(c.support));
                        if let Some(sec) = c.secondary_support {
                            out.push_str(macro_for(sec));
                        }
                    }
                    None => out.push_str(" & ?"),
                }
            }
        }
        out.push_str(" \\\\\n");
    }
    out.push_str("\\bottomrule\n\\end{tabular}\n");
    out
}

fn tex_escape(s: &str) -> String {
    s.replace('&', "\\&").replace('%', "\\%").replace('_', "\\_").replace('#', "\\#")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defines_six_macros() {
        let m = CompatMatrix::paper();
        let s = render(&m);
        assert_eq!(s.matches("\\newcommand").count(), 6);
    }

    #[test]
    fn tabular_is_balanced() {
        let m = CompatMatrix::paper();
        let s = render(&m);
        assert_eq!(s.matches("\\begin{tabular}").count(), 1);
        assert_eq!(s.matches("\\end{tabular}").count(), 1);
        assert!(s.contains("\\toprule"));
        assert!(s.contains("\\bottomrule"));
    }

    #[test]
    fn data_rows_have_17_ampersands() {
        let m = CompatMatrix::paper();
        let s = render(&m);
        for v in Vendor::ALL {
            let row = s
                .lines()
                .find(|l| l.starts_with(v.name()))
                .unwrap_or_else(|| panic!("no row for {v}"));
            assert_eq!(row.matches(" & ").count(), 17, "{row}");
        }
    }

    #[test]
    fn escape_rules() {
        assert_eq!(tex_escape("a&b_c%d#e"), "a\\&b\\_c\\%d\\#e");
    }
}
