//! The §4 descriptions list — "the core of this paper" — as a rendered
//! document: each of the 44 numbered entries with its combination(s),
//! rating symbol(s), description text, rating rationale, routes, and
//! bibliography references.

use crate::matrix::CompatMatrix;
use crate::references;
use std::collections::BTreeMap;

/// Render the full §4-style listing in Markdown.
pub fn render(matrix: &CompatMatrix) -> String {
    // Group cells by description id (shared descriptions list all their
    // combinations on one entry, as the paper's "NVIDIA, AMD • HIP •
    // Fortran" headers do).
    let mut by_id: BTreeMap<u8, Vec<&crate::cell::Cell>> = BTreeMap::new();
    for cell in matrix.cells() {
        by_id.entry(cell.description_id).or_default().push(cell);
    }

    let mut out = String::new();
    out.push_str("# Descriptions\n\n");
    for (id, mut cells) in by_id {
        cells.sort_by_key(|c| c.id);
        let lead = cells[0];
        // Header: "4 — NVIDIA, AMD · HIP · Fortran"
        let vendors: Vec<&str> = cells.iter().map(|c| c.id.vendor.name()).collect();
        out.push_str(&format!(
            "## {id} — {} · {} · {}\n\n",
            vendors.join(", "),
            lead.id.model.name(),
            lead.id.language.name()
        ));
        // Symbols per cell (ratings can differ between cells sharing a
        // description).
        for c in &cells {
            out.push_str(&format!("* {} — {} ({})\n", c.id.vendor, c.symbols(), c.support));
        }
        out.push('\n');
        out.push_str(lead.description);
        out.push_str("\n\n");
        out.push_str(&format!("*Rating rationale:* {}\n\n", lead.rationale));
        if !lead.routes.is_empty() {
            out.push_str("Routes:\n\n");
            for r in &lead.routes {
                out.push_str(&format!("* {r}\n"));
            }
            out.push('\n');
        }
        if !lead.references.is_empty() {
            let refs: Vec<String> = lead
                .references
                .iter()
                .map(|&n| match references::lookup(n) {
                    Some(r) => format!("[{n}] {}", r.key),
                    None => format!("[{n}]"),
                })
                .collect();
            out.push_str(&format!("References: {}\n\n", refs.join("; ")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_all_44_entries_once() {
        let m = CompatMatrix::paper();
        let doc = render(&m);
        for id in 1..=44u8 {
            assert!(doc.contains(&format!("## {id} — ")), "entry {id} missing");
        }
        // Exactly 44 section headers.
        assert_eq!(doc.matches("\n## ").count() + usize::from(doc.starts_with("## ")), 44);
    }

    #[test]
    fn shared_descriptions_name_all_their_vendors() {
        let m = CompatMatrix::paper();
        let doc = render(&m);
        // Description 6 covers SYCL·Fortran on all three vendors.
        let header6 = doc.lines().find(|l| l.starts_with("## 6 — ")).expect("entry 6 present");
        for v in ["AMD", "Intel", "NVIDIA"] {
            assert!(header6.contains(v), "entry 6 header missing {v}: {header6}");
        }
    }

    #[test]
    fn entries_cite_their_references() {
        let m = CompatMatrix::paper();
        let doc = render(&m);
        assert!(doc.contains("[12] AMD HIP"));
        assert!(doc.contains("[37] Intel SYCLomatic"));
    }

    #[test]
    fn routes_are_listed_with_metadata() {
        let doc = render(&CompatMatrix::paper());
        assert!(doc.contains("CUDA Toolkit (nvcc)"));
        assert!(doc.contains("device vendor"));
    }
}
