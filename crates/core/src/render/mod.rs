//! Renderers regenerating Figure 1 in several formats.
//!
//! The paper's artifact keeps the source data in YAML and converts it to
//! HTML and TeX; this module mirrors that pipeline with ASCII/Unicode
//! (for terminals), Markdown, HTML, LaTeX, and JSON backends, all fed from
//! the same [`crate::matrix::CompatMatrix`].

pub mod ascii;
pub mod descriptions;
pub mod html;
pub mod json;
pub mod latex;
pub mod markdown;

use crate::cell::Cell;

/// The symbol text for a cell as used by all text renderers — the primary
/// symbol, plus the secondary one for double-rated cells.
pub(crate) fn cell_symbols(cell: &Cell, unicode: bool) -> String {
    let one = |s: crate::support::Support| {
        if unicode {
            s.symbol().to_owned()
        } else {
            s.ascii_symbol().to_owned()
        }
    };
    match cell.secondary_support {
        Some(sec) => format!("{}{}", one(cell.support), one(sec)),
        None => one(cell.support),
    }
}

/// A legend describing the six categories, shared by the text renderers.
pub fn legend(unicode: bool) -> String {
    use crate::support::Support;
    let mut out = String::new();
    for s in Support::ALL {
        let sym = if unicode { s.symbol() } else { s.ascii_symbol() };
        out.push_str(&format!("  {sym}  {}\n", s.category_name()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CompatMatrix;
    use crate::taxonomy::{Language, Model, Vendor};

    #[test]
    fn legend_lists_all_six_categories() {
        let l = legend(true);
        assert_eq!(l.lines().count(), 6);
        assert!(l.contains("full support"));
        assert!(l.contains("no support"));
        let l = legend(false);
        assert_eq!(l.lines().count(), 6);
    }

    #[test]
    fn double_rated_cells_get_two_symbols() {
        let m = CompatMatrix::paper();
        let c = m.cell(Vendor::Nvidia, Model::Python, Language::Python).unwrap();
        assert_eq!(cell_symbols(c, true).chars().count(), 2);
        assert_eq!(cell_symbols(c, false).chars().count(), 2);
        let c = m.cell(Vendor::Amd, Model::Hip, Language::Cpp).unwrap();
        assert_eq!(cell_symbols(c, true).chars().count(), 1);
    }
}
