//! Figure 1 as a standalone HTML page — mirroring the paper artifact's
//! YAML→HTML conversion.

use super::cell_symbols;
use crate::matrix::CompatMatrix;
use crate::taxonomy::{Model, Vendor};

/// Render the matrix as a self-contained HTML document. Cell tooltips carry
/// the description number and rating rationale.
pub fn render(matrix: &CompatMatrix) -> String {
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n");
    out.push_str("<title>GPU Programming Model vs. Vendor Compatibility</title>\n");
    out.push_str(
        "<style>table{border-collapse:collapse}td,th{border:1px solid #888;\
         padding:4px 8px;text-align:center}th.model{background:#eee}</style>\n",
    );
    out.push_str("</head><body>\n<h1>GPU Programming Model vs. Vendor Compatibility</h1>\n");
    out.push_str("<table>\n<tr><th rowspan=\"2\">Vendor</th>");
    for m in Model::ALL {
        out.push_str(&format!(
            "<th class=\"model\" colspan=\"{}\">{}</th>",
            m.languages().len(),
            escape(m.name())
        ));
    }
    out.push_str("</tr>\n<tr>");
    for m in Model::ALL {
        for l in m.languages() {
            out.push_str(&format!("<th>{}</th>", escape(l.name())));
        }
    }
    out.push_str("</tr>\n");

    for v in Vendor::ALL {
        out.push_str(&format!("<tr><th>{}</th>", escape(v.name())));
        for m in Model::ALL {
            for &l in m.languages() {
                match matrix.cell(v, m, l) {
                    Some(c) => out.push_str(&format!(
                        "<td title=\"[{}] {}\">{}</td>",
                        c.description_id,
                        escape(c.rationale),
                        cell_symbols(c, true)
                    )),
                    None => out.push_str("<td>?</td>"),
                }
            }
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>\n<h2>Legend</h2>\n<ul>\n");
    for s in crate::support::Support::ALL {
        out.push_str(&format!("<li>{} — {}</li>\n", s.symbol(), escape(s.category_name())));
    }
    out.push_str("</ul>\n</body></html>\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_complete_document() {
        let m = CompatMatrix::paper();
        let s = render(&m);
        assert!(s.starts_with("<!DOCTYPE html>"));
        assert!(s.contains("</html>"));
        assert!(s.contains("<table>"));
        assert!(s.contains("</table>"));
    }

    #[test]
    fn has_51_data_cells() {
        let m = CompatMatrix::paper();
        let s = render(&m);
        assert_eq!(s.matches("<td ").count() + s.matches("<td>").count(), 51);
    }

    #[test]
    fn tooltips_carry_description_ids() {
        let m = CompatMatrix::paper();
        let s = render(&m);
        assert!(s.contains("title=\"[1] "));
        assert!(s.contains("title=\"[44] "));
    }

    #[test]
    fn escape_handles_special_chars() {
        assert_eq!(escape("a<b & \"c\""), "a&lt;b &amp; &quot;c&quot;");
    }
}
