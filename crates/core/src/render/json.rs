//! Figure 1 as machine-readable JSON — the analogue of the paper artifact's
//! YAML source data, enabling round-trips into other tools.

use crate::matrix::CompatMatrix;
use serde::Serialize;

/// The serialized form of the whole overview.
#[derive(Debug, Serialize)]
struct Document<'m> {
    title: &'static str,
    combinations: usize,
    unique_descriptions: usize,
    cells: Vec<&'m crate::cell::Cell>,
}

/// Serialize the matrix (all cells with routes, rationales, references) to
/// pretty-printed JSON.
pub fn render(matrix: &CompatMatrix) -> String {
    let doc = Document {
        title: "GPU Programming Model vs. Vendor Compatibility Overview",
        combinations: matrix.len(),
        unique_descriptions: matrix.unique_description_count(),
        cells: matrix.cells().collect(),
    };
    serde_json::to_string_pretty(&doc).expect("matrix serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_back_as_json() {
        let m = CompatMatrix::paper();
        let s = render(&m);
        let v: serde_json::Value = serde_json::from_str(&s).unwrap();
        assert_eq!(v["combinations"], 51);
        assert_eq!(v["unique_descriptions"], 44);
        assert_eq!(v["cells"].as_array().unwrap().len(), 51);
    }

    #[test]
    fn cells_carry_routes_and_references() {
        let m = CompatMatrix::paper();
        let v: serde_json::Value = serde_json::from_str(&render(&m)).unwrap();
        let cells = v["cells"].as_array().unwrap();
        let nvidia_cuda = cells
            .iter()
            .find(|c| {
                c["id"]["vendor"] == "Nvidia"
                    && c["id"]["model"] == "Cuda"
                    && c["id"]["language"] == "Cpp"
            })
            .unwrap();
        assert_eq!(nvidia_cuda["support"], "Full");
        assert!(!nvidia_cuda["routes"].as_array().unwrap().is_empty());
        assert!(!nvidia_cuda["references"].as_array().unwrap().is_empty());
    }
}
