//! The §5 "Topicality" discussion as an executable model: the field evolves
//! swiftly, projects go stale or get discontinued, new venues appear — and
//! ratings must be recomputed.
//!
//! An [`Event`] perturbs the route metadata of a matrix (a toolchain's
//! maintenance status changes, its coverage grows, or a brand-new route
//! appears); [`apply`] replays the §3 rating engine afterwards so the cell
//! categories stay consistent with the evidence. The paper's own examples —
//! ComputeCpp discontinued 09/2023, GPUFORT stale, roc-stdpar maturing —
//! become test cases.

use crate::matrix::CompatMatrix;
use crate::provider::Maintenance;
use crate::rating::rate;
use crate::route::{Completeness, Route};
use crate::taxonomy::{Language, Model, Vendor};

/// A change in the ecosystem affecting one cell's routes.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // field meanings are fully specified per variant
pub enum Event {
    /// A toolchain's maintenance status changes (matching by toolchain name
    /// across all cells).
    SetMaintenance { toolchain: &'static str, status: Maintenance },
    /// A toolchain's coverage changes (e.g. roc-stdpar reaching majority
    /// coverage).
    SetCompleteness { toolchain: &'static str, completeness: Completeness },
    /// A toolchain gains (or loses) proper documentation.
    SetDocumented { toolchain: &'static str, documented: bool },
    /// A brand-new route appears for one cell.
    AddRoute { vendor: Vendor, model: Model, language: Language, route: Route },
    /// A route disappears entirely (project deleted/withdrawn).
    RemoveRoute { toolchain: &'static str },
}

/// Apply events to a matrix and re-rate every touched cell with the §3
/// engine. Returns the number of cells whose *primary rating changed*.
pub fn apply(matrix: &mut CompatMatrix, events: &[Event]) -> usize {
    let mut cells: Vec<crate::cell::Cell> = matrix.cells().cloned().collect();
    for cell in &mut cells {
        for ev in events {
            match ev {
                Event::SetMaintenance { toolchain, status } => {
                    for r in cell.routes.iter_mut().filter(|r| r.toolchain == *toolchain) {
                        r.maintenance = *status;
                    }
                }
                Event::SetCompleteness { toolchain, completeness } => {
                    for r in cell.routes.iter_mut().filter(|r| r.toolchain == *toolchain) {
                        r.completeness = *completeness;
                    }
                }
                Event::SetDocumented { toolchain, documented } => {
                    for r in cell.routes.iter_mut().filter(|r| r.toolchain == *toolchain) {
                        r.documented = *documented;
                    }
                }
                Event::AddRoute { vendor, model, language, route } => {
                    if cell.id.vendor == *vendor
                        && cell.id.model == *model
                        && cell.id.language == *language
                    {
                        cell.routes.push(route.clone());
                    }
                }
                Event::RemoveRoute { toolchain } => {
                    cell.routes.retain(|r| r.toolchain != *toolchain);
                }
            }
        }
    }

    let mut changed = 0;
    for mut cell in cells {
        let outcome = rate(&cell.routes);
        if outcome.primary != cell.support {
            cell.support = outcome.primary;
            // A secondary symbol that the evidence no longer admits is
            // dropped; editorial double ratings otherwise survive.
            if let Some(sec) = cell.secondary_support {
                if !outcome.admits_secondary(sec) {
                    cell.secondary_support = None;
                }
            }
            changed += 1;
            matrix.replace(cell);
        } else {
            matrix.replace(cell);
        }
    }
    changed
}

/// One cell whose rating differs between two matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct CellChange {
    /// Which cell changed.
    pub id: crate::cell::CellId,
    /// Rating in the older matrix.
    pub before: crate::support::Support,
    /// Rating in the newer matrix.
    pub after: crate::support::Support,
    /// Routes present only in the newer matrix.
    pub routes_added: Vec<&'static str>,
    /// Routes present only in the older matrix.
    pub routes_removed: Vec<&'static str>,
}

impl CellChange {
    /// Did the cell get better?
    pub fn improved(&self) -> bool {
        self.after < self.before
    }
}

/// Compare two matrices cell-by-cell (the §5 "snapshots in paper form at
/// regular intervals" — this is the changelog between snapshots).
pub fn diff(before: &CompatMatrix, after: &CompatMatrix) -> Vec<CellChange> {
    let mut changes = Vec::new();
    for old in before.cells() {
        let Some(new) = after.cell(old.id.vendor, old.id.model, old.id.language) else {
            continue;
        };
        let old_routes: std::collections::BTreeSet<&'static str> =
            old.routes.iter().map(|r| r.toolchain).collect();
        let new_routes: std::collections::BTreeSet<&'static str> =
            new.routes.iter().map(|r| r.toolchain).collect();
        if old.support != new.support || old_routes != new_routes {
            changes.push(CellChange {
                id: old.id,
                before: old.support,
                after: new.support,
                routes_added: new_routes.difference(&old_routes).copied().collect(),
                routes_removed: old_routes.difference(&new_routes).copied().collect(),
            });
        }
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::Provider;
    use crate::route::{Directness, RouteKind};
    use crate::support::Support;

    #[test]
    fn roc_stdpar_maturing_lifts_amd_standard_cpp() {
        // §5: AMD C++ stdpar has "currently no vendor-supported, advertised
        // solution (which roc-stdpar might become)". Simulate it becoming
        // one: complete coverage, active, documented.
        let mut m = CompatMatrix::paper();
        assert_eq!(m.support(Vendor::Amd, Model::Standard, Language::Cpp), Support::Limited);
        let changed = apply(
            &mut m,
            &[
                Event::SetCompleteness {
                    toolchain: "roc-stdpar (-stdpar)",
                    completeness: Completeness::Complete,
                },
                Event::SetMaintenance {
                    toolchain: "roc-stdpar (-stdpar)",
                    status: Maintenance::Active,
                },
                Event::SetDocumented { toolchain: "roc-stdpar (-stdpar)", documented: true },
            ],
        );
        assert_eq!(changed, 1);
        assert_eq!(m.support(Vendor::Amd, Model::Standard, Language::Cpp), Support::Full);
    }

    #[test]
    fn computecpp_discontinuation_did_not_change_ratings() {
        // ComputeCpp went unsupported in 09/2023; because DPC++ and Open
        // SYCL remain, the SYCL cells keep their category — exactly why the
        // paper still rates them well.
        let mut m = CompatMatrix::paper();
        let changed = apply(&mut m, &[Event::RemoveRoute { toolchain: "ComputeCpp" }]);
        assert_eq!(changed, 0);
        assert_eq!(m.support(Vendor::Nvidia, Model::Sycl, Language::Cpp), Support::NonVendorGood);
    }

    #[test]
    fn losing_the_last_route_degrades_to_none() {
        let mut m = CompatMatrix::paper();
        // Intel HIP C++ has only chipStar.
        let changed =
            apply(&mut m, &[Event::RemoveRoute { toolchain: "chipStar (HIP→OpenCL/Level Zero)" }]);
        assert!(changed >= 1);
        assert_eq!(m.support(Vendor::Intel, Model::Hip, Language::Cpp), Support::None);
    }

    #[test]
    fn everything_going_stale_floors_the_matrix() {
        // Failure-injection: mark every toolchain stale; no cell may rate
        // better than Limited afterwards.
        let mut m = CompatMatrix::paper();
        let toolchains: Vec<&'static str> =
            m.cells().flat_map(|c| c.routes.iter().map(|r| r.toolchain)).collect();
        let events: Vec<Event> = toolchains
            .into_iter()
            .map(|t| Event::SetMaintenance { toolchain: t, status: Maintenance::Stale })
            .collect();
        apply(&mut m, &events);
        for cell in m.cells() {
            assert!(cell.support >= Support::Limited, "{} still rated {}", cell.id, cell.support);
        }
    }

    #[test]
    fn adding_a_vendor_route_creates_support_where_none_existed() {
        // Hypothetical: AMD ships Fortran stdpar (do concurrent) support.
        let mut m = CompatMatrix::paper();
        assert_eq!(m.support(Vendor::Amd, Model::Standard, Language::Fortran), Support::None);
        let changed = apply(
            &mut m,
            &[Event::AddRoute {
                vendor: Vendor::Amd,
                model: Model::Standard,
                language: Language::Fortran,
                route: Route::new(
                    "hypothetical amdflang -stdpar",
                    RouteKind::Compiler,
                    Provider::DeviceVendor,
                    Directness::Direct,
                    Completeness::Complete,
                ),
            }],
        );
        assert_eq!(changed, 1);
        assert_eq!(m.support(Vendor::Amd, Model::Standard, Language::Fortran), Support::Full);
    }

    #[test]
    fn double_rating_secondary_dropped_when_inadmissible() {
        // If the whole community Python ecosystem on NVIDIA vanished, the
        // secondary non-vendor symbol must go with it.
        let mut m = CompatMatrix::paper();
        let events: Vec<Event> = ["CuPy", "PyCUDA", "Numba (CUDA target)"]
            .into_iter()
            .map(|t| Event::RemoveRoute { toolchain: t })
            .collect();
        apply(&mut m, &events);
        let cell = m.cell(Vendor::Nvidia, Model::Python, Language::Python).unwrap();
        assert_eq!(cell.support, Support::Full);
        // Primary unchanged, so the editorial secondary survives only if
        // admissible; cuNumeric (vendor majority) admits Some, not
        // NonVendorGood — but since primary didn't change we keep the cell
        // as-is per the editorial-judgment rule.
        // (Documents the semantics rather than asserting a drop.)
        assert!(cell.secondary_support.is_some());
    }
}

#[cfg(test)]
mod diff_tests {
    use super::*;
    use crate::support::Support;
    use crate::taxonomy::{Language, Model, Vendor};

    #[test]
    fn identical_matrices_have_no_diff() {
        let a = CompatMatrix::paper();
        let b = CompatMatrix::paper();
        assert!(diff(&a, &b).is_empty());
    }

    #[test]
    fn diff_reports_rating_and_route_changes() {
        let a = CompatMatrix::paper();
        let mut b = CompatMatrix::paper();
        apply(&mut b, &[Event::RemoveRoute { toolchain: "chipStar (HIP→OpenCL/Level Zero)" }]);
        let changes = diff(&a, &b);
        assert_eq!(changes.len(), 1);
        let c = &changes[0];
        assert_eq!(c.id.vendor, Vendor::Intel);
        assert_eq!(c.id.model, Model::Hip);
        assert_eq!(c.id.language, Language::Cpp);
        assert_eq!(c.before, Support::Limited);
        assert_eq!(c.after, Support::None);
        assert_eq!(c.routes_removed, vec!["chipStar (HIP→OpenCL/Level Zero)"]);
        assert!(c.routes_added.is_empty());
        assert!(!c.improved());
    }

    #[test]
    fn improvement_detection() {
        let a = CompatMatrix::paper();
        let mut b = CompatMatrix::paper();
        apply(
            &mut b,
            &[
                Event::SetCompleteness {
                    toolchain: "roc-stdpar (-stdpar)",
                    completeness: crate::route::Completeness::Complete,
                },
                Event::SetMaintenance {
                    toolchain: "roc-stdpar (-stdpar)",
                    status: crate::provider::Maintenance::Active,
                },
                Event::SetDocumented { toolchain: "roc-stdpar (-stdpar)", documented: true },
            ],
        );
        let changes = diff(&a, &b);
        assert_eq!(changes.len(), 1);
        assert!(changes[0].improved());
    }
}
