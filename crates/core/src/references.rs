//! The paper's bibliography, keyed by reference number, so cells can carry
//! machine-checkable citations.

/// A bibliography entry of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reference {
    /// The bracketed number used in the paper.
    pub id: u8,
    /// Short human-readable key ("NVIDIA CUDA Toolkit", "Deakin et al. 2018").
    pub key: &'static str,
    /// URL or DOI where the resource lives.
    pub locator: &'static str,
}

/// The subset of the paper's bibliography cited from Figure 1 cells.
pub const REFERENCES: &[Reference] = &[
    Reference {
        id: 10,
        key: "NVIDIA CUDA Toolkit",
        locator: "https://developer.nvidia.com/cuda-toolkit",
    },
    Reference {
        id: 11,
        key: "NVIDIA CUDA Fortran",
        locator: "https://developer.nvidia.com/cuda-fortran",
    },
    Reference {
        id: 12,
        key: "AMD HIP",
        locator: "https://rocm.docs.amd.com/projects/HIP/en/latest/",
    },
    Reference {
        id: 13,
        key: "AMD hipfort",
        locator: "https://rocm.docs.amd.com/projects/hipfort/en/latest/",
    },
    Reference {
        id: 14,
        key: "Intel oneAPI DPC++ Compiler",
        locator: "https://github.com/intel/llvm",
    },
    Reference {
        id: 15,
        key: "Alpay et al. 2022 (hipSYCL/oneAPI)",
        locator: "10.1145/3529538.3530005",
    },
    Reference { id: 16, key: "Khronos SYCL", locator: "https://www.khronos.org/sycl/" },
    Reference { id: 17, key: "NVIDIA HPC SDK", locator: "https://developer.nvidia.com/hpc-sdk" },
    Reference { id: 18, key: "GCC OpenACC", locator: "https://gcc.gnu.org/wiki/OpenACC" },
    Reference {
        id: 19,
        key: "Denny et al. 2018 (Clacc)",
        locator: "10.1109/LLVM-HPC.2018.8639349",
    },
    Reference {
        id: 20,
        key: "Jarmusch et al. 2022 (OpenACC V&V)",
        locator: "10.1109/WACCPD56842.2022.00006",
    },
    Reference {
        id: 21,
        key: "Clement & Vetter 2021 (Flacc)",
        locator: "10.1109/LLVMHPC54804.2021.00007",
    },
    Reference { id: 22, key: "GCC OpenMP", locator: "https://gcc.gnu.org/wiki/openmp" },
    Reference {
        id: 23,
        key: "Clang OpenMP",
        locator: "https://clang.llvm.org/docs/OpenMPSupport.html",
    },
    Reference {
        id: 24,
        key: "HPE Cray Programming Environment",
        locator: "https://www.hpe.com/psnow/doc/a50002303enw",
    },
    Reference { id: 25, key: "LLVM Flang", locator: "https://flang.llvm.org/" },
    Reference {
        id: 26,
        key: "Intel oneDPL",
        locator: "https://oneapi-src.github.io/oneDPL/index.html",
    },
    Reference { id: 27, key: "Trott et al. 2022 (Kokkos 3)", locator: "10.1109/TPDS.2021.3097283" },
    Reference { id: 28, key: "Matthes et al. 2017 (Alpaka)", locator: "arXiv:1706.10086" },
    Reference {
        id: 29,
        key: "NVIDIA CUDA Python",
        locator: "https://nvidia.github.io/cuda-python/index.html",
    },
    Reference { id: 30, key: "PyCUDA", locator: "10.5281/zenodo.8121901" },
    Reference {
        id: 31,
        key: "Okuta et al. 2017 (CuPy)",
        locator: "http://learningsys.org/nips17/assets/papers/paper_16.pdf",
    },
    Reference { id: 32, key: "Numba", locator: "10.5281/zenodo.8087361" },
    Reference {
        id: 33,
        key: "NVIDIA cuNumeric",
        locator: "https://developer.nvidia.com/cunumeric",
    },
    Reference {
        id: 34,
        key: "AMD GPUFORT",
        locator: "https://github.com/ROCmSoftwarePlatform/gpufort",
    },
    Reference { id: 35, key: "AMD AOMP", locator: "https://github.com/ROCm-Developer-Tools/aomp" },
    Reference {
        id: 36,
        key: "AMD roc-stdpar",
        locator: "https://github.com/ROCmSoftwarePlatform/roc-stdpar",
    },
    Reference {
        id: 37,
        key: "Intel SYCLomatic",
        locator: "https://github.com/oneapi-src/SYCLomatic",
    },
    Reference { id: 38, key: "Zhao et al. 2023 (HIPLZ/chipStar)", locator: "978-3-031-31209-0" },
    Reference { id: 39, key: "Intel oneAPI", locator: "https://www.intel.com/oneapi" },
    Reference {
        id: 40,
        key: "Intel OpenACC→OpenMP migration tool",
        locator: "https://github.com/intel/intel-application-migration-tool-for-openacc-to-openmp",
    },
    Reference { id: 41, key: "Intel dpctl", locator: "https://github.com/IntelPython/dpctl" },
    Reference {
        id: 42,
        key: "Intel numba-dpex",
        locator: "https://github.com/IntelPython/numba-dpex",
    },
    Reference { id: 43, key: "Intel dpnp", locator: "https://github.com/IntelPython/dpnp" },
];

/// Look up a reference by its bracketed number.
pub fn lookup(id: u8) -> Option<&'static Reference> {
    REFERENCES.iter().find(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_sorted() {
        for w in REFERENCES.windows(2) {
            assert!(w[0].id < w[1].id, "{} !< {}", w[0].id, w[1].id);
        }
    }

    #[test]
    fn lookup_finds_known_entries() {
        assert_eq!(lookup(12).unwrap().key, "AMD HIP");
        assert_eq!(lookup(37).unwrap().key, "Intel SYCLomatic");
        assert!(lookup(99).is_none());
    }

    #[test]
    fn locators_nonempty() {
        for r in REFERENCES {
            assert!(!r.locator.is_empty(), "reference {} has empty locator", r.id);
        }
    }
}
