//! The six support categories of §3.
//!
//! The paper rates every vendor × model × language combination into one of
//! six categories, "reaching from ● (full support) to ✕ (no support), with
//! various intermediate steps". The ordering here is *support quality*
//! descending — [`Support::Full`] is the best, [`Support::None`] the worst —
//! so `a < b` means "a is better supported than b" under the derived `Ord`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One of the paper's six support categories (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Support {
    /// *Full support*: the vendor provides a complete implementation,
    /// extensive documentation, regular updates, and error support.
    Full,
    /// *Indirect good support*: indirectly but comprehensively supported by
    /// the device vendor, usually by (semi-)automatically mapping or
    /// translating a foreign model to a native one.
    IndirectGood,
    /// *Some support*: supported by the vendor, but not (yet) comprehensive;
    /// usable for the majority of applications, some features missing.
    Some,
    /// *Non-vendor good support*: comprehensive support, but not by the
    /// device vendor — usually community-driven higher-level models using
    /// vendor-native infrastructure underneath.
    NonVendorGood,
    /// *Limited support*: very limited, possibly indirect, requiring
    /// extensive user effort, and/or very incomplete.
    Limited,
    /// *No support*: no direct support; only heroics remain (custom headers,
    /// direct library linking, `ISO_C_BINDING` in Fortran).
    None,
}

impl Support {
    /// All categories, best to worst.
    pub const ALL: [Support; 6] = [
        Support::Full,
        Support::IndirectGood,
        Support::Some,
        Support::NonVendorGood,
        Support::Limited,
        Support::None,
    ];

    /// The category name as printed in the paper's §3 list.
    pub fn category_name(self) -> &'static str {
        match self {
            Support::Full => "full support",
            Support::IndirectGood => "indirect good support",
            Support::Some => "some support",
            Support::NonVendorGood => "non-vendor good support",
            Support::Limited => "limited support",
            Support::None => "no support",
        }
    }

    /// The Unicode symbol used for the category in our rendering of
    /// Figure 1. The paper uses graphical glyphs; we use close textual
    /// equivalents so the table renders in a terminal.
    pub fn symbol(self) -> &'static str {
        match self {
            Support::Full => "●",
            Support::IndirectGood => "◐",
            Support::Some => "◒",
            Support::NonVendorGood => "◍",
            Support::Limited => "◌",
            Support::None => "✕",
        }
    }

    /// A pure-ASCII fallback symbol (for environments without Unicode).
    pub fn ascii_symbol(self) -> &'static str {
        match self {
            Support::Full => "#",
            Support::IndirectGood => "D",
            Support::Some => "o",
            Support::NonVendorGood => "C",
            Support::Limited => ".",
            Support::None => "x",
        }
    }

    /// A numeric score for aggregate comparisons (5 = full ... 0 = none).
    ///
    /// Used by [`crate::stats`] to reproduce the paper's §6 conclusion that
    /// "support for NVIDIA GPUs can be considered most comprehensive".
    pub fn score(self) -> u32 {
        match self {
            Support::Full => 5,
            Support::IndirectGood => 4,
            Support::Some => 3,
            Support::NonVendorGood => 3,
            Support::Limited => 1,
            Support::None => 0,
        }
    }

    /// Does this category imply the combination is practically usable for
    /// the majority of applications?
    pub fn is_usable(self) -> bool {
        !matches!(self, Support::Limited | Support::None)
    }

    /// Is the support (at whatever level) provided by the device vendor?
    ///
    /// Per §3, `Full`, `IndirectGood` and `Some` are vendor-provided tiers;
    /// `NonVendorGood` is explicitly not; `Limited`/`None` make no claim,
    /// so this returns `false` for them.
    pub fn is_vendor_tier(self) -> bool {
        matches!(self, Support::Full | Support::IndirectGood | Support::Some)
    }
}

impl fmt::Display for Support {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.category_name())
    }
}

impl FromStr for Support {
    type Err = crate::taxonomy::ParseAxisError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.to_ascii_lowercase().replace([' ', '_'], "-");
        match norm.as_str() {
            "full" | "full-support" => Ok(Support::Full),
            "indirect" | "indirect-good" | "indirect-good-support" => Ok(Support::IndirectGood),
            "some" | "some-support" => Ok(Support::Some),
            "non-vendor" | "non-vendor-good" | "non-vendor-good-support" => {
                Ok(Support::NonVendorGood)
            }
            "limited" | "limited-support" => Ok(Support::Limited),
            "none" | "no" | "no-support" => Ok(Support::None),
            _ => Err(crate::taxonomy::ParseAxisError::new("support category", s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_categories() {
        // §3 introduces exactly six categories.
        assert_eq!(Support::ALL.len(), 6);
    }

    #[test]
    fn ordering_best_to_worst() {
        assert!(Support::Full < Support::IndirectGood);
        assert!(Support::IndirectGood < Support::Some);
        assert!(Support::Some < Support::NonVendorGood);
        assert!(Support::NonVendorGood < Support::Limited);
        assert!(Support::Limited < Support::None);
    }

    #[test]
    fn scores_monotone_with_usability() {
        assert_eq!(Support::Full.score(), 5);
        assert_eq!(Support::None.score(), 0);
        for s in Support::ALL {
            if s.is_usable() {
                assert!(s.score() >= 3, "{s} usable but score {}", s.score());
            } else {
                assert!(s.score() <= 1);
            }
        }
    }

    #[test]
    fn symbols_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in Support::ALL {
            assert!(seen.insert(s.symbol()), "duplicate symbol for {s}");
        }
        let mut seen = std::collections::HashSet::new();
        for s in Support::ALL {
            assert!(seen.insert(s.ascii_symbol()), "duplicate ascii symbol for {s}");
        }
    }

    #[test]
    fn vendor_tiers() {
        assert!(Support::Full.is_vendor_tier());
        assert!(Support::IndirectGood.is_vendor_tier());
        assert!(Support::Some.is_vendor_tier());
        assert!(!Support::NonVendorGood.is_vendor_tier());
        assert!(!Support::Limited.is_vendor_tier());
        assert!(!Support::None.is_vendor_tier());
    }

    #[test]
    fn parse_category_names() {
        for s in Support::ALL {
            assert_eq!(s.category_name().parse::<Support>().unwrap(), s);
        }
        assert!("superb".parse::<Support>().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        for s in Support::ALL {
            let j = serde_json::to_string(&s).unwrap();
            assert_eq!(serde_json::from_str::<Support>(&j).unwrap(), s);
        }
    }
}
