//! A *cell* of Figure 1: one vendor × model × language combination, with its
//! rating(s), routes, description, references, and rationale.
//!
//! Two features of the paper's figure are modelled explicitly:
//!
//! * **Shared descriptions** — 51 cells are covered by 44 unique
//!   descriptions; e.g. description 6 ("SYCL is a C++-based programming
//!   model ... does not support Fortran") covers the SYCL·Fortran cell of
//!   all three vendors. Each cell stores its paper description number
//!   ([`Cell::description_id`]), and several cells may share one.
//! * **Double ratings** — §5 discusses cells that carry two symbols, e.g.
//!   Python on NVIDIA (vendor full support *plus* non-vendor good support
//!   from the open-source ecosystem) and CUDA C++ on Intel (SYCLomatic
//!   translation *plus* the chipStar research project). A cell therefore has
//!   a primary and an optional secondary [`Support`].

use crate::route::Route;
use crate::support::Support;
use crate::taxonomy::{Language, Model, Vendor};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The coordinates of a cell in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId {
    /// The GPU vendor (row).
    pub vendor: Vendor,
    /// The programming model (column).
    pub model: Model,
    /// The language sub-column.
    pub language: Language,
}

impl CellId {
    /// Construct a cell coordinate.
    pub fn new(vendor: Vendor, model: Model, language: Language) -> Self {
        Self { vendor, model, language }
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} · {} · {}", self.vendor, self.model, self.language)
    }
}

/// One combination of Figure 1 with all the knowledge the paper attaches.
#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    /// Where in the matrix this cell sits.
    pub id: CellId,
    /// The paper's description number (1–44, §4). Shared-description cells
    /// (4, 6, 14, 16) repeat the same number under several vendors.
    pub description_id: u8,
    /// Primary support category — the main symbol in the figure cell.
    pub support: Support,
    /// Secondary support category for double-rated cells (§5).
    pub secondary_support: Option<Support>,
    /// A condensed version of the paper's §4 description text.
    pub description: &'static str,
    /// Why this particular category was assigned — the figure itself is an
    /// image, so where the text leaves latitude we record the reasoning.
    pub rationale: &'static str,
    /// The concrete toolchain routes realising the support (possibly empty
    /// for `Support::None` cells).
    pub routes: Vec<Route>,
    /// Bibliography keys (`[n]` numbers from the paper) backing the cell.
    pub references: Vec<u8>,
}

impl Cell {
    /// The primary rating of the cell.
    pub fn primary_support(&self) -> Support {
        self.support
    }

    /// The best rating the cell carries (primary or secondary).
    pub fn best_support(&self) -> Support {
        match self.secondary_support {
            Some(s) => self.support.min(s),
            None => self.support,
        }
    }

    /// Does this cell carry two symbols in the figure?
    pub fn is_double_rated(&self) -> bool {
        self.secondary_support.is_some()
    }

    /// Routes that a scientific programmer can actually adopt today.
    pub fn viable_routes(&self) -> impl Iterator<Item = &Route> {
        self.routes.iter().filter(|r| r.is_viable())
    }

    /// Is there *any* way (viable or not) to use this combination?
    pub fn has_any_route(&self) -> bool {
        !self.routes.is_empty()
    }

    /// Routes a runtime frontend can actually drive end-to-end
    /// (see [`Route::is_executable`]). Empty for cells whose support is
    /// purely source-translation, unmaintained, or research-shim class —
    /// the cells a frontend must *refuse* rather than emulate.
    pub fn executable_routes(&self) -> impl Iterator<Item = &Route> {
        self.routes.iter().filter(|r| r.is_executable())
    }

    /// Every route of the cell paired with the §3 category it individually
    /// qualifies for, ordered best rating first; rating-equal routes are
    /// tie-broken by toolchain name ascending so the order is
    /// deterministic and independent of dataset entry order. This is the
    /// failover plan for the cell: when the head route breaks at runtime,
    /// the next entry is the next-best-rated alternative the paper
    /// documents for the same combination.
    pub fn routes_by_rating(&self) -> Vec<(&Route, Support)> {
        use crate::rating::{qualify, Evidence};
        let mut ranked: Vec<(&Route, Support)> =
            self.routes.iter().map(|r| (r, qualify(Evidence::from_route(r)))).collect();
        ranked.sort_by_key(|(r, s)| (*s, r.toolchain));
        ranked
    }

    /// The figure symbol(s) for this cell, e.g. `●` or `●◍` for a
    /// double-rated cell.
    pub fn symbols(&self) -> String {
        match self.secondary_support {
            Some(s) => format!("{}{}", self.support.symbol(), s.symbol()),
            None => self.support.symbol().to_owned(),
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.description_id, self.id, self.support)
    }
}

/// Builder for [`Cell`] used by the dataset module; keeps the dataset terse.
pub struct CellBuilder {
    cell: Cell,
}

impl CellBuilder {
    /// Start a cell with its coordinates, description number, primary
    /// rating, and description text.
    pub fn new(
        id: CellId,
        description_id: u8,
        support: Support,
        description: &'static str,
    ) -> Self {
        Self {
            cell: Cell {
                id,
                description_id,
                support,
                secondary_support: None,
                description,
                rationale: "",
                routes: Vec::new(),
                references: Vec::new(),
            },
        }
    }

    /// Attach the secondary rating of a double-rated cell.
    pub fn also(mut self, support: Support) -> Self {
        self.cell.secondary_support = Some(support);
        self
    }

    /// Record the rating rationale.
    pub fn because(mut self, rationale: &'static str) -> Self {
        self.cell.rationale = rationale;
        self
    }

    /// Add a route.
    pub fn route(mut self, route: Route) -> Self {
        self.cell.routes.push(route);
        self
    }

    /// Add bibliography references.
    pub fn refs(mut self, refs: &[u8]) -> Self {
        self.cell.references.extend_from_slice(refs);
        self
    }

    /// Finish the cell.
    pub fn build(self) -> Cell {
        self.cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::Provider;
    use crate::route::{Completeness, Directness, RouteKind};

    fn cell_with(support: Support, secondary: Option<Support>) -> Cell {
        let mut b = CellBuilder::new(
            CellId::new(Vendor::Nvidia, Model::Cuda, Language::Cpp),
            1,
            support,
            "test",
        );
        if let Some(s) = secondary {
            b = b.also(s);
        }
        b.build()
    }

    #[test]
    fn best_support_picks_the_better_symbol() {
        let c = cell_with(Support::Full, Some(Support::NonVendorGood));
        assert_eq!(c.best_support(), Support::Full);
        let c = cell_with(Support::Limited, Some(Support::IndirectGood));
        assert_eq!(c.best_support(), Support::IndirectGood);
        let c = cell_with(Support::Some, None);
        assert_eq!(c.best_support(), Support::Some);
    }

    #[test]
    fn double_rating_symbols_concatenate() {
        let c = cell_with(Support::Full, Some(Support::NonVendorGood));
        assert!(c.is_double_rated());
        assert_eq!(c.symbols(), "●◍");
        let c = cell_with(Support::None, None);
        assert_eq!(c.symbols(), "✕");
    }

    #[test]
    fn builder_accumulates_routes_and_refs() {
        let c = CellBuilder::new(
            CellId::new(Vendor::Amd, Model::Hip, Language::Cpp),
            20,
            Support::Full,
            "HIP is native on AMD",
        )
        .because("native model")
        .route(Route::new(
            "hipcc",
            RouteKind::Compiler,
            Provider::DeviceVendor,
            Directness::Direct,
            Completeness::Complete,
        ))
        .refs(&[12])
        .build();
        assert_eq!(c.routes.len(), 1);
        assert_eq!(c.references, vec![12]);
        assert_eq!(c.rationale, "native model");
        assert!(c.has_any_route());
        assert_eq!(c.viable_routes().count(), 1);
    }

    #[test]
    fn routes_by_rating_orders_best_first_with_name_tie_break() {
        let mk = |name: &'static str, provider: Provider, completeness: Completeness| {
            Route::new(name, RouteKind::Compiler, provider, Directness::Direct, completeness)
        };
        let c = CellBuilder::new(
            CellId::new(Vendor::Nvidia, Model::Sycl, Language::Cpp),
            7,
            Support::NonVendorGood,
            "SYCL on NVIDIA",
        )
        // Dataset order is deliberately worst-first and tie-reversed.
        .route(mk("Zeta Port", Provider::Community("oss"), Completeness::Minimal))
        .route(mk("Open SYCL", Provider::Community("oss"), Completeness::Complete))
        .route(mk("DPC++ (CUDA plugin)", Provider::Community("oss"), Completeness::Complete))
        .build();
        let ranked = c.routes_by_rating();
        let names: Vec<_> = ranked.iter().map(|(r, _)| r.toolchain).collect();
        // Best rating first; the two rating-equal complete routes resolve
        // by name, not by dataset entry order.
        assert_eq!(names, vec!["DPC++ (CUDA plugin)", "Open SYCL", "Zeta Port"]);
        assert!(ranked[0].1 <= ranked[1].1 && ranked[1].1 <= ranked[2].1);
    }

    #[test]
    fn display_mentions_description_id_and_axes() {
        let c = cell_with(Support::Full, None);
        let s = c.to_string();
        assert!(s.contains("[1]"));
        assert!(s.contains("NVIDIA"));
        assert!(s.contains("CUDA"));
        assert!(s.contains("full support"));
    }
}
