//! The §3 rating methodology as an executable engine: evidence about the
//! available toolchain routes is mapped to one of the six support
//! categories.
//!
//! The paper assesses each combination "by this available information";
//! this module codifies the assessment so it can be replayed, audited, and
//! perturbed (see [`crate::evolution`] for the §5 "Topicality" experiments).
//!
//! ## The rules
//!
//! Each individual [`Route`] *qualifies* for exactly one category:
//!
//! 1. **Full** — device vendor, direct, complete, actively maintained.
//! 2. **Indirect good** — a GPU vendor (device vendor or another one)
//!    providing a complete, maintained mapping/translation of a foreign
//!    model onto a native one.
//! 3. **Some** — vendor-tier support that is not comprehensive: the device
//!    vendor's direct-or-binding route at majority coverage, or a GPU
//!    vendor's comprehensive *binding* (the hipfort case).
//! 4. **Non-vendor good** — comprehensive (complete or majority), direct,
//!    actively maintained, documented support from the community, a
//!    commercial third party, or a non-device vendor.
//! 5. **Limited** — any other existing route (experimental, stale,
//!    unmaintained, minimal coverage, undocumented back doors).
//!
//! A cell's **primary rating is the best qualifying category** of any of
//! its routes ([`Support`]'s derived ordering is exactly the §3
//! best-to-worst order); a cell with no routes at all rates **None**.
//! Double-rated cells (§5) carry an editorial secondary symbol which must
//! itself be a qualifying category of one of the remaining routes — the
//! engine exposes the full qualifying set so this can be checked.

use crate::provider::{Maintenance, Provider};
use crate::route::{Completeness, Directness, Route};
use crate::support::Support;
use std::collections::BTreeSet;

/// Evidence about one route, reduced to the fields the §3 method inspects.
///
/// This mirrors [`Route`] but is decoupled from it so that the simulator's
/// probe (crate `mcmm-toolchain`) can synthesise evidence from *observed*
/// compile/run behaviour rather than from encoded metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evidence {
    /// Is the provider the vendor of the device?
    pub device_vendor: bool,
    /// Is the provider any of the three GPU vendors (device vendor
    /// included)?
    pub gpu_vendor: bool,
    /// How directly the route maps the model onto the device.
    pub directness: Directness,
    /// How much of the model's surface the route covers.
    pub completeness: Completeness,
    /// How alive the route is.
    pub maintenance: Maintenance,
    /// Whether the route is properly documented.
    pub documented: bool,
}

impl Evidence {
    /// Extract the evidence carried by an encoded route.
    pub fn from_route(route: &Route) -> Self {
        let gpu_vendor =
            matches!(route.provider, Provider::DeviceVendor | Provider::OtherVendor(_));
        Self {
            device_vendor: route.provider.is_device_vendor(),
            gpu_vendor,
            directness: route.directness,
            completeness: route.completeness,
            maintenance: route.maintenance,
            documented: route.documented,
        }
    }
}

/// The category a single route qualifies for under the §3 rules.
pub fn qualify(e: Evidence) -> Support {
    let active = e.maintenance == Maintenance::Active;
    let comprehensive = matches!(e.completeness, Completeness::Complete | Completeness::Majority);

    // Rule 1: full support.
    if e.device_vendor
        && e.directness == Directness::Direct
        && e.completeness == Completeness::Complete
        && active
    {
        return Support::Full;
    }
    // Rule 2: indirect good support — vendor-provided complete translation.
    if e.gpu_vendor
        && e.directness == Directness::Translated
        && e.completeness == Completeness::Complete
        && active
    {
        return Support::IndirectGood;
    }
    // Rule 3: some support — vendor-tier but not comprehensive-direct.
    let vendor_tier = (e.device_vendor
        && matches!(e.directness, Directness::Direct | Directness::Binding))
        || (e.gpu_vendor && e.directness == Directness::Binding);
    if vendor_tier && comprehensive && active {
        return Support::Some;
    }
    // Rule 4: non-vendor good support.
    if !e.device_vendor
        && e.directness == Directness::Direct
        && comprehensive
        && active
        && e.documented
    {
        return Support::NonVendorGood;
    }
    // Rule 5: anything that exists but matched nothing above.
    Support::Limited
}

/// [`qualify`] refined by a per-device portability verdict: a route whose
/// compiled kernels are statically predicted to *break on this specific
/// device* — a warp-width assumption, a capacity overflow, a
/// width-dependent deadlock — cannot rate better than **Limited** there,
/// whatever its paperwork says. A clean verdict leaves the §3 category
/// untouched; the paper's metadata-driven rules and the executable
/// portability evidence meet exactly here.
pub fn qualify_on_device(e: Evidence, device_clean: bool) -> Support {
    let base = qualify(e);
    if device_clean {
        base
    } else {
        base.max(Support::Limited)
    }
}

/// The outcome of rating a set of routes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatingOutcome {
    /// The best qualifying category — the cell's primary symbol.
    pub primary: Support,
    /// Every category some route qualifies for (used to validate the
    /// editorial secondary symbols of double-rated cells).
    pub qualifying: BTreeSet<Support>,
}

impl RatingOutcome {
    /// Would `secondary` be a defensible second symbol for this cell?
    pub fn admits_secondary(&self, secondary: Support) -> bool {
        self.qualifying.contains(&secondary)
    }
}

/// Rate a combination from its routes, per the §3 method.
pub fn rate(routes: &[Route]) -> RatingOutcome {
    rate_evidence(routes.iter().map(Evidence::from_route))
}

/// Rate a combination from raw evidence (used by the executable probe).
pub fn rate_evidence(evidence: impl IntoIterator<Item = Evidence>) -> RatingOutcome {
    let qualifying: BTreeSet<Support> = evidence.into_iter().map(qualify).collect();
    let primary = qualifying.iter().next().copied().unwrap_or(Support::None);
    RatingOutcome { primary, qualifying }
}

/// [`rate_evidence`] against one concrete device: every route's §3
/// category is first capped by the device's portability verdict (see
/// [`qualify_on_device`]).
pub fn rate_evidence_on_device(
    evidence: impl IntoIterator<Item = Evidence>,
    device_clean: bool,
) -> RatingOutcome {
    let qualifying: BTreeSet<Support> =
        evidence.into_iter().map(|e| qualify_on_device(e, device_clean)).collect();
    let primary = qualifying.iter().next().copied().unwrap_or(Support::None);
    RatingOutcome { primary, qualifying }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RouteKind;

    fn route(
        provider: Provider,
        directness: Directness,
        completeness: Completeness,
        maintenance: Maintenance,
        documented: bool,
    ) -> Route {
        let mut r = Route::new("test", RouteKind::Compiler, provider, directness, completeness)
            .maintenance(maintenance);
        if !documented {
            r = r.undocumented();
        }
        r
    }

    #[test]
    fn no_routes_rates_none() {
        let out = rate(&[]);
        assert_eq!(out.primary, Support::None);
        assert!(out.qualifying.is_empty());
    }

    #[test]
    fn vendor_direct_complete_active_is_full() {
        let r = route(
            Provider::DeviceVendor,
            Directness::Direct,
            Completeness::Complete,
            Maintenance::Active,
            true,
        );
        assert_eq!(rate(&[r]).primary, Support::Full);
    }

    #[test]
    fn vendor_translation_is_indirect_good() {
        // HIPIFY on AMD / SYCLomatic on Intel.
        let r = route(
            Provider::DeviceVendor,
            Directness::Translated,
            Completeness::Complete,
            Maintenance::Active,
            true,
        );
        assert_eq!(rate(&[r]).primary, Support::IndirectGood);
        // HIP's CUDA backend on NVIDIA — provided by AMD (another vendor).
        let r = route(
            Provider::OtherVendor(crate::taxonomy::Vendor::Amd),
            Directness::Translated,
            Completeness::Complete,
            Maintenance::Active,
            true,
        );
        assert_eq!(rate(&[r]).primary, Support::IndirectGood);
    }

    #[test]
    fn community_translation_is_not_indirect_good() {
        // Clacc translates OpenACC→OpenMP but is a community project.
        let r = route(
            Provider::Community("Clacc"),
            Directness::Translated,
            Completeness::Majority,
            Maintenance::Active,
            true,
        );
        assert_eq!(rate(&[r]).primary, Support::Limited);
    }

    #[test]
    fn vendor_majority_is_some() {
        // NVHPC OpenMP offload / AOMP.
        let r = route(
            Provider::DeviceVendor,
            Directness::Direct,
            Completeness::Majority,
            Maintenance::Active,
            true,
        );
        assert_eq!(rate(&[r]).primary, Support::Some);
    }

    #[test]
    fn vendor_binding_is_some_even_cross_vendor() {
        // hipfort by AMD used on NVIDIA devices.
        let r = route(
            Provider::OtherVendor(crate::taxonomy::Vendor::Amd),
            Directness::Binding,
            Completeness::Majority,
            Maintenance::Active,
            true,
        );
        assert_eq!(rate(&[r]).primary, Support::Some);
    }

    #[test]
    fn community_binding_is_limited() {
        // PyOpenCL-style bindings require user effort — limited.
        let r = route(
            Provider::Community("PyOpenCL"),
            Directness::Binding,
            Completeness::Majority,
            Maintenance::Active,
            true,
        );
        assert_eq!(rate(&[r]).primary, Support::Limited);
    }

    #[test]
    fn comprehensive_community_compiler_is_non_vendor_good() {
        let r = route(
            Provider::Community("Open SYCL"),
            Directness::Direct,
            Completeness::Complete,
            Maintenance::Active,
            true,
        );
        assert_eq!(rate(&[r]).primary, Support::NonVendorGood);
    }

    #[test]
    fn experimental_routes_cap_at_limited() {
        // Kokkos' experimental SYCL backend on Intel GPUs.
        let r = route(
            Provider::Community("Kokkos"),
            Directness::Direct,
            Completeness::Majority,
            Maintenance::Experimental,
            true,
        );
        assert_eq!(rate(&[r]).primary, Support::Limited);
    }

    #[test]
    fn stale_and_unmaintained_routes_cap_at_limited() {
        for m in [Maintenance::Stale, Maintenance::Unmaintained] {
            let r =
                route(Provider::DeviceVendor, Directness::Direct, Completeness::Complete, m, true);
            assert_eq!(rate(&[r]).primary, Support::Limited, "{m:?}");
        }
    }

    #[test]
    fn undocumented_non_vendor_routes_cap_at_limited() {
        // §5: pSTL on NVIDIA/AMD through DPC++ is "not even advertised in
        // the documentation".
        let r = route(
            Provider::OtherVendor(crate::taxonomy::Vendor::Intel),
            Directness::Direct,
            Completeness::Majority,
            Maintenance::Active,
            false,
        );
        assert_eq!(rate(&[r]).primary, Support::Limited);
    }

    #[test]
    fn best_route_wins() {
        let full = route(
            Provider::DeviceVendor,
            Directness::Direct,
            Completeness::Complete,
            Maintenance::Active,
            true,
        );
        let limited = route(
            Provider::Community("x"),
            Directness::Binding,
            Completeness::Minimal,
            Maintenance::Stale,
            false,
        );
        let out = rate(&[limited.clone(), full]);
        assert_eq!(out.primary, Support::Full);
        assert!(out.admits_secondary(Support::Limited));
        assert!(!out.admits_secondary(Support::IndirectGood));
        let out = rate(&[limited]);
        assert_eq!(out.primary, Support::Limited);
    }

    #[test]
    fn device_breaking_evidence_demotes_to_limited() {
        let full = Evidence {
            device_vendor: true,
            gpu_vendor: true,
            directness: Directness::Direct,
            completeness: Completeness::Complete,
            maintenance: Maintenance::Active,
            documented: true,
        };
        // A clean portability verdict leaves the §3 category untouched …
        assert_eq!(qualify_on_device(full, true), Support::Full);
        // … a breaking one caps the route at Limited on that device …
        assert_eq!(qualify_on_device(full, false), Support::Limited);
        // … and a route already below Limited is not *promoted* by it.
        let stale = Evidence { maintenance: Maintenance::Stale, ..full };
        assert_eq!(qualify_on_device(stale, false), Support::Limited);
    }

    #[test]
    fn whole_paper_dataset_reproduces_figure_1() {
        // E3/E4 core check: replaying the §3 method over the encoded routes
        // yields exactly the category encoded for every one of the 51 cells,
        // and each double rating is admissible.
        for cell in crate::dataset::paper_cells() {
            let out = rate(&cell.routes);
            assert_eq!(
                out.primary,
                cell.support,
                "{}: engine says {}, figure says {} (routes: {:?})",
                cell.id,
                out.primary,
                cell.support,
                cell.routes.iter().map(|r| r.toolchain).collect::<Vec<_>>()
            );
            if let Some(sec) = cell.secondary_support {
                assert!(
                    out.admits_secondary(sec),
                    "{}: secondary {} not admitted by qualifying set {:?}",
                    cell.id,
                    sec,
                    out.qualifying
                );
            }
        }
    }
}
