//! # mcmm-core — the compatibility overview, as a library
//!
//! This crate is the primary contribution of the reproduced paper
//! *"Many Cores, Many Models: GPU Programming Model vs. Vendor Compatibility
//! Overview"* (Herten, SC'23): a typed, queryable knowledge base matching
//! HPC GPU **vendors** (AMD, Intel, NVIDIA) against **programming models**
//! (CUDA, HIP, SYCL, OpenACC, OpenMP, standard-language parallelism, Kokkos,
//! Alpaka, Python) for the languages **C++** and **Fortran**.
//!
//! The paper's method is implemented in three layers:
//!
//! 1. [`taxonomy`], [`support`], [`provider`], [`route`], [`cell`] — the
//!    vocabulary: the six support categories of §3, providers, toolchain
//!    routes, and the combination cells of Figure 1.
//! 2. [`dataset`] — the data: all 51 vendor × model × language combinations,
//!    described by the paper in 44 unique descriptions (§4), each cell
//!    carrying its routes, evidence, references and a rationale string.
//! 3. [`rating`], [`matrix`], [`query`], [`stats`], [`render`],
//!    [`evolution`] — the machinery: the evidence → category rating engine,
//!    the Figure 1 matrix with renderers (ASCII/Markdown/HTML/LaTeX/JSON),
//!    aggregate statistics reproducing the paper's headline numbers, and the
//!    §5 "topicality" evolution model.
//!
//! ## Quickstart
//!
//! ```
//! use mcmm_core::prelude::*;
//!
//! let matrix = CompatMatrix::paper();
//! assert_eq!(matrix.cells().count(), 51);
//! assert_eq!(matrix.unique_description_count(), 44);
//!
//! let cell = matrix.cell(Vendor::Nvidia, Model::Cuda, Language::Cpp).unwrap();
//! assert_eq!(cell.primary_support(), Support::Full);
//!
//! // Render Figure 1 as ASCII art:
//! let fig1 = mcmm_core::render::ascii::render(&matrix);
//! assert!(fig1.contains("NVIDIA"));
//! ```

pub mod cell;
pub mod dataset;
pub mod evolution;
pub mod matrix;
pub mod provider;
pub mod query;
pub mod rating;
pub mod references;
pub mod render;
pub mod route;
pub mod stats;
pub mod support;
pub mod taxonomy;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::cell::{Cell, CellId};
    pub use crate::matrix::CompatMatrix;
    pub use crate::provider::{Maintenance, Provider};
    pub use crate::query::Query;
    pub use crate::rating::{rate, Evidence};
    pub use crate::route::{Completeness, Directness, Route, RouteKind};
    pub use crate::stats::Stats;
    pub use crate::support::Support;
    pub use crate::taxonomy::{Language, Model, Vendor};
}

pub use cell::{Cell, CellId};
pub use matrix::CompatMatrix;
pub use support::Support;
pub use taxonomy::{Language, Model, Vendor};
