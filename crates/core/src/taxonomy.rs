//! The axes of the compatibility matrix: GPU vendors, programming models,
//! and programming languages.
//!
//! The paper (§3) matches three dedicated-HPC-GPU vendors against nine
//! programming-model columns; each model column is split into C++ and
//! Fortran sub-columns, except the summary *Python* column which stands for
//! the Python ecosystem as a whole.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A vendor of dedicated HPC GPUs.
///
/// Ordered as the paper's Figure 1 rows (alphabetically: AMD, Intel, NVIDIA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// Advanced Micro Devices — Radeon Instinct / Instinct MI series
    /// (Frontier: 37 888 × MI250X; El Capitan: MI300A).
    Amd,
    /// Intel — Data Center GPU Max series, codename Ponte Vecchio
    /// (Aurora: 63 744 × PVC).
    Intel,
    /// NVIDIA — A100/H100 class devices; the longest-established HPC GPU
    /// vendor and the reference platform for CUDA.
    Nvidia,
}

impl Vendor {
    /// All vendors in Figure 1 row order.
    pub const ALL: [Vendor; 3] = [Vendor::Amd, Vendor::Intel, Vendor::Nvidia];

    /// The vendor's *native* programming model (§1): CUDA for NVIDIA, HIP
    /// for AMD, SYCL for Intel.
    pub fn native_model(self) -> Model {
        match self {
            Vendor::Amd => Model::Hip,
            Vendor::Intel => Model::Sycl,
            Vendor::Nvidia => Model::Cuda,
        }
    }

    /// Human-readable name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Vendor::Amd => "AMD",
            Vendor::Intel => "Intel",
            Vendor::Nvidia => "NVIDIA",
        }
    }

    /// The flagship supercomputer installation the paper associates with the
    /// vendor's HPC GPUs.
    pub fn flagship_system(self) -> &'static str {
        match self {
            Vendor::Amd => "Frontier",
            Vendor::Intel => "Aurora",
            Vendor::Nvidia => "JUPITER",
        }
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Vendor {
    type Err = ParseAxisError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "amd" => Ok(Vendor::Amd),
            "intel" => Ok(Vendor::Intel),
            "nvidia" => Ok(Vendor::Nvidia),
            _ => Err(ParseAxisError::new("vendor", s)),
        }
    }
}

/// A GPU programming model surveyed by the paper.
///
/// Ordered as the paper's Figure 1 columns: the three native models first,
/// then the two directive-based models, standard-language parallelism, the
/// two community portability layers, and finally the Python ecosystem
/// summary column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Model {
    /// NVIDIA's native model; the oldest and most famous GPU programming
    /// model (CUDA Toolkit since 2007).
    Cuda,
    /// AMD's native model, deliberately designed to mimic CUDA
    /// (`hipMalloc()` for `cudaMalloc()`), part of ROCm.
    Hip,
    /// The Khronos C++17-based standard, selected by Intel as the prime
    /// model for their GPUs (implemented by DPC++ within oneAPI).
    Sycl,
    /// Directive-based model, historically NVIDIA-centric.
    OpenAcc,
    /// Directive-based model with offloading since 4.0; the only model the
    /// paper finds natively supported on all three platforms for Fortran.
    OpenMp,
    /// Standard-language parallelism: C++ parallel STL / Fortran
    /// `do concurrent`.
    Standard,
    /// Sandia's C++ performance-portability ecosystem.
    Kokkos,
    /// HZDR's C++ abstraction library for performance portability.
    Alpaka,
    /// The "etc" column: GPU access from Python (CUDA Python, CuPy, Numba,
    /// dpctl/dpnp, PyHIP, ...).
    Python,
}

impl Model {
    /// All model columns in Figure 1 column order.
    pub const ALL: [Model; 9] = [
        Model::Cuda,
        Model::Hip,
        Model::Sycl,
        Model::OpenAcc,
        Model::OpenMp,
        Model::Standard,
        Model::Kokkos,
        Model::Alpaka,
        Model::Python,
    ];

    /// Name as printed in the Figure 1 header.
    pub fn name(self) -> &'static str {
        match self {
            Model::Cuda => "CUDA",
            Model::Hip => "HIP",
            Model::Sycl => "SYCL",
            Model::OpenAcc => "OpenACC",
            Model::OpenMp => "OpenMP",
            Model::Standard => "Standard",
            Model::Kokkos => "Kokkos",
            Model::Alpaka => "ALPAKA",
            Model::Python => "etc (Python)",
        }
    }

    /// The languages for which Figure 1 has a sub-column under this model.
    ///
    /// Eight models split into C++ and Fortran; the Python summary column is
    /// its own language. This is exactly how the paper reaches
    /// 3 × (8 × 2 + 1) = 51 combinations.
    pub fn languages(self) -> &'static [Language] {
        match self {
            Model::Python => &[Language::Python],
            _ => &[Language::Cpp, Language::Fortran],
        }
    }

    /// Is this one of the three vendor-native models (§1)?
    pub fn is_native(self) -> bool {
        matches!(self, Model::Cuda | Model::Hip | Model::Sycl)
    }

    /// Is this one of the two major directive-based models?
    pub fn is_directive_based(self) -> bool {
        matches!(self, Model::OpenAcc | Model::OpenMp)
    }

    /// Is this a community-driven higher-level portability layer?
    pub fn is_portability_layer(self) -> bool {
        matches!(self, Model::Kokkos | Model::Alpaka)
    }

    /// The vendor whose native model this is, if any.
    pub fn native_vendor(self) -> Option<Vendor> {
        match self {
            Model::Cuda => Some(Vendor::Nvidia),
            Model::Hip => Some(Vendor::Amd),
            Model::Sycl => Some(Vendor::Intel),
            _ => None,
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Model {
    type Err = ParseAxisError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cuda" => Ok(Model::Cuda),
            "hip" => Ok(Model::Hip),
            "sycl" => Ok(Model::Sycl),
            "openacc" | "acc" => Ok(Model::OpenAcc),
            "openmp" | "omp" => Ok(Model::OpenMp),
            "standard" | "std" | "stdpar" | "pstl" => Ok(Model::Standard),
            "kokkos" => Ok(Model::Kokkos),
            "alpaka" => Ok(Model::Alpaka),
            "python" | "etc" | "etc (python)" => Ok(Model::Python),
            _ => Err(ParseAxisError::new("model", s)),
        }
    }
}

/// A programming language surface considered by the paper.
///
/// The paper deliberately ignores language *versions* (§3): backward
/// compatibility makes them a non-issue for scientists. C-style usage of
/// C++-capable models is folded into `Cpp` for brevity, as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Language {
    /// C++ (including C-style use of C++ models).
    Cpp,
    /// Fortran — still prevalent in many scientific applications.
    Fortran,
    /// Python — higher-level, interpreted; relies on C/C++ backends.
    Python,
}

impl Language {
    /// All languages.
    pub const ALL: [Language; 3] = [Language::Cpp, Language::Fortran, Language::Python];

    /// Name as printed in Figure 1 sub-column headers.
    pub fn name(self) -> &'static str {
        match self {
            Language::Cpp => "C++",
            Language::Fortran => "Fortran",
            Language::Python => "Python",
        }
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Language {
    type Err = ParseAxisError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "c++" | "cpp" | "cxx" | "c" => Ok(Language::Cpp),
            "fortran" | "f" | "f90" => Ok(Language::Fortran),
            "python" | "py" => Ok(Language::Python),
            _ => Err(ParseAxisError::new("language", s)),
        }
    }
}

/// Error returned when parsing a matrix axis label fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAxisError {
    axis: &'static str,
    input: String,
}

impl ParseAxisError {
    pub(crate) fn new(axis: &'static str, input: &str) -> Self {
        Self { axis, input: input.to_owned() }
    }
}

impl fmt::Display for ParseAxisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {}: {:?}", self.axis, self.input)
    }
}

impl std::error::Error for ParseAxisError {}

/// Iterate all 51 (vendor, model, language) combinations in Figure 1 order
/// (vendor-major, then model column, then language sub-column).
pub fn all_combinations() -> impl Iterator<Item = (Vendor, Model, Language)> {
    Vendor::ALL.into_iter().flat_map(|v| {
        Model::ALL.into_iter().flat_map(move |m| m.languages().iter().map(move |&l| (v, m, l)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_count_is_51() {
        // §3: "In total, 51 possible combinations are explored"
        assert_eq!(all_combinations().count(), 51);
    }

    #[test]
    fn seventeen_combinations_per_vendor() {
        for v in Vendor::ALL {
            assert_eq!(all_combinations().filter(|&(vv, _, _)| vv == v).count(), 17);
        }
    }

    #[test]
    fn native_models_match_vendors() {
        assert_eq!(Vendor::Nvidia.native_model(), Model::Cuda);
        assert_eq!(Vendor::Amd.native_model(), Model::Hip);
        assert_eq!(Vendor::Intel.native_model(), Model::Sycl);
        for v in Vendor::ALL {
            assert_eq!(v.native_model().native_vendor(), Some(v));
        }
    }

    #[test]
    fn python_column_has_single_language() {
        assert_eq!(Model::Python.languages(), &[Language::Python]);
        for m in Model::ALL {
            if m != Model::Python {
                assert_eq!(m.languages(), &[Language::Cpp, Language::Fortran]);
            }
        }
    }

    #[test]
    fn parse_roundtrip() {
        for v in Vendor::ALL {
            assert_eq!(v.name().parse::<Vendor>().unwrap(), v);
        }
        for m in Model::ALL {
            assert_eq!(m.name().parse::<Model>().unwrap(), m);
        }
        for l in Language::ALL {
            assert_eq!(l.name().parse::<Language>().unwrap(), l);
        }
    }

    #[test]
    fn parse_errors_are_descriptive() {
        let err = "voodoo".parse::<Vendor>().unwrap_err();
        assert!(err.to_string().contains("voodoo"));
        assert!("".parse::<Model>().is_err());
        assert!("klingon".parse::<Language>().is_err());
    }

    #[test]
    fn model_classes_partition_sensibly() {
        let native: Vec<_> = Model::ALL.into_iter().filter(|m| m.is_native()).collect();
        assert_eq!(native, vec![Model::Cuda, Model::Hip, Model::Sycl]);
        let directive: Vec<_> = Model::ALL.into_iter().filter(|m| m.is_directive_based()).collect();
        assert_eq!(directive, vec![Model::OpenAcc, Model::OpenMp]);
        let layers: Vec<_> = Model::ALL.into_iter().filter(|m| m.is_portability_layer()).collect();
        assert_eq!(layers, vec![Model::Kokkos, Model::Alpaka]);
    }

    #[test]
    fn serde_roundtrip() {
        for (v, m, l) in all_combinations() {
            let j = serde_json::to_string(&(v, m, l)).unwrap();
            let (v2, m2, l2): (Vendor, Model, Language) = serde_json::from_str(&j).unwrap();
            assert_eq!((v, m, l), (v2, m2, l2));
        }
    }
}
