//! Who provides a support route, and in what state of maintenance.
//!
//! The paper's categories (§3) hinge on *who* provides support (the device
//! vendor, another vendor, or the community) and whether the route is alive
//! (§5 "Topicality" discusses stale projects such as GPUFORT, ComputeCpp and
//! ZLUDA at length).

use crate::taxonomy::Vendor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The entity providing a particular support route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provider {
    /// The vendor of the GPU device itself (e.g. NVIDIA providing CUDA on
    /// NVIDIA GPUs, AMD providing AOMP on AMD GPUs).
    DeviceVendor,
    /// A *different* hardware/software vendor (e.g. AMD providing HIP's
    /// CUDA backend on NVIDIA GPUs; Intel's DPC++ targeting AMD GPUs;
    /// HPE Cray's programming environment).
    OtherVendor(Vendor),
    /// A commercial third party that is not one of the three GPU vendors
    /// (e.g. HPE Cray, CodePlay's ComputeCpp).
    Commercial(&'static str),
    /// A community / academic open-source project (e.g. Open SYCL, GCC,
    /// chipStar, Kokkos, Alpaka, PyCUDA).
    Community(&'static str),
}

impl Provider {
    /// Is this route provided by the vendor of the device it targets?
    pub fn is_device_vendor(self) -> bool {
        matches!(self, Provider::DeviceVendor)
    }

    /// A short display label.
    pub fn label(self) -> String {
        match self {
            Provider::DeviceVendor => "device vendor".to_owned(),
            Provider::OtherVendor(v) => format!("other vendor ({v})"),
            Provider::Commercial(name) => format!("commercial ({name})"),
            Provider::Community(name) => format!("community ({name})"),
        }
    }
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Maintenance status of a route (§5 "Topicality").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Maintenance {
    /// Actively developed and regularly updated.
    Active,
    /// Development ongoing but the route is explicitly experimental or
    /// pre-production (e.g. roc-stdpar, Kokkos' SYCL backend,
    /// Alpaka's SYCL support since v0.9.0).
    Experimental,
    /// No recent activity; coverage frozen "driven by use-case requirements"
    /// (e.g. GPUFORT, whose last commit the paper notes is two years old).
    Stale,
    /// Explicitly discontinued/unsupported (e.g. ComputeCpp since 09/2023,
    /// ZLUDA, Numba's ROCm target).
    Unmaintained,
}

impl Maintenance {
    /// All statuses, healthiest first.
    pub const ALL: [Maintenance; 4] = [
        Maintenance::Active,
        Maintenance::Experimental,
        Maintenance::Stale,
        Maintenance::Unmaintained,
    ];

    /// Can this route be recommended to a scientific programmer today?
    pub fn is_viable(self) -> bool {
        matches!(self, Maintenance::Active | Maintenance::Experimental)
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Maintenance::Active => "active",
            Maintenance::Experimental => "experimental",
            Maintenance::Stale => "stale",
            Maintenance::Unmaintained => "unmaintained",
        }
    }
}

impl fmt::Display for Maintenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_vendor_detection() {
        assert!(Provider::DeviceVendor.is_device_vendor());
        assert!(!Provider::OtherVendor(Vendor::Amd).is_device_vendor());
        assert!(!Provider::Community("Open SYCL").is_device_vendor());
        assert!(!Provider::Commercial("HPE Cray").is_device_vendor());
    }

    #[test]
    fn maintenance_viability() {
        assert!(Maintenance::Active.is_viable());
        assert!(Maintenance::Experimental.is_viable());
        assert!(!Maintenance::Stale.is_viable());
        assert!(!Maintenance::Unmaintained.is_viable());
    }

    #[test]
    fn labels_render() {
        assert_eq!(Provider::OtherVendor(Vendor::Intel).label(), "other vendor (Intel)");
        assert_eq!(Provider::Community("GCC").label(), "community (GCC)");
        assert_eq!(Maintenance::Stale.to_string(), "stale");
    }

    #[test]
    fn maintenance_order_healthiest_first() {
        assert!(Maintenance::Active < Maintenance::Experimental);
        assert!(Maintenance::Experimental < Maintenance::Stale);
        assert!(Maintenance::Stale < Maintenance::Unmaintained);
    }
}
