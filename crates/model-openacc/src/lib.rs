//! # mcmm-model-openacc — an OpenACC-style frontend
//!
//! OpenACC (descriptions 7, 8, 22, 23, 36, 37) is the older of the two
//! directive models, historically strongest on NVIDIA. The frontend
//! mirrors its surface: [`DataRegion`]s (`#pragma acc data copyin/copyout/
//! create`), [`DataRegion::parallel_loop`] (`#pragma acc parallel loop
//! gang vector`), and the `kernels` construct where the "compiler" (this
//! frontend) chooses the decomposition itself.
//!
//! Vendor coverage matches the paper exactly:
//!
//! * **NVIDIA** — vendor-complete (NVHPC), plus GCC and Clacc.
//! * **AMD** — community only (GCC, Clacc); Clacc internally *translates
//!   OpenACC to OpenMP*, which we reproduce by lowering through the same
//!   IR path with the Clacc route's efficiency.
//! * **Intel** — **no direct support** ([`AccError::NoSupport`]); the error
//!   points at Intel's OpenACC→OpenMP migration tool in `mcmm-translate`,
//!   as description 36 does.

use mcmm_core::taxonomy::{Language, Model, Vendor};
use mcmm_frontend::{ExecutionSession, Frontend, FrontendError};
use mcmm_gpu_sim::device::{Device, KernelArg, LaunchConfig};
use mcmm_gpu_sim::ir::{KernelBuilder, Reg, Type};
use mcmm_gpu_sim::mem::DevicePtr;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

pub use mcmm_gpu_sim::ir::{BinOp, CmpOp, Space, UnOp, Value};

/// OpenACC gang/vector decomposition of a `parallel loop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopSchedule {
    /// `num_gangs` — thread blocks.
    pub gangs: Option<u32>,
    /// `vector_length` — threads per gang.
    pub vector_length: u32,
}

impl Default for LoopSchedule {
    fn default() -> Self {
        Self { gangs: None, vector_length: 128 }
    }
}

/// Errors raised by the OpenACC frontend.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings are fully specified per variant
pub enum AccError {
    /// Description 36/37: no OpenACC support on this platform; the message
    /// names the migration path.
    NoSupport { vendor: Vendor, language: Language, hint: &'static str },
    /// Runtime/launch failure.
    Runtime(String),
}

impl fmt::Display for AccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccError::NoSupport { vendor, language, hint } => {
                write!(f, "OpenACC {language} is not supported on {vendor} GPUs; {hint}")
            }
            AccError::Runtime(m) => write!(f, "openacc runtime: {m}"),
        }
    }
}

impl std::error::Error for AccError {}

/// Result alias.
pub type AccResult<T> = Result<T, AccError>;

/// An OpenACC-capable device binding — a directive-flavored surface over
/// the shared [`ExecutionSession`] spine.
pub struct AccDevice {
    session: ExecutionSession,
}

impl AccDevice {
    /// Bind for C/C++ sources.
    pub fn new(device: Arc<Device>) -> AccResult<Self> {
        Self::with_language(device, Language::Cpp)
    }

    /// Bind for Fortran sources (descriptions 8, 23, 37).
    pub fn new_fortran(device: Arc<Device>) -> AccResult<Self> {
        Self::with_language(device, Language::Fortran)
    }

    fn with_language(device: Arc<Device>, language: Language) -> AccResult<Self> {
        let session =
            ExecutionSession::open_on(device, Model::OpenAcc, language).map_err(|e| match e {
                FrontendError::NoRoute { vendor, language, .. } => AccError::NoSupport {
                    vendor,
                    language,
                    hint: "use the Intel Application Migration Tool (mcmm-translate::acc2mp) \
                       to convert the directives to OpenMP",
                },
                other => AccError::Runtime(other.to_string()),
            })?;
        Ok(Self { session })
    }

    /// The resolved toolchain.
    pub fn toolchain(&self) -> &'static str {
        self.session.toolchain()
    }

    /// The execution-spine session under this binding.
    pub fn session(&self) -> &ExecutionSession {
        &self.session
    }

    /// Open a structured data region.
    pub fn data_region(&self) -> DataRegion<'_> {
        DataRegion { acc: self, arrays: Vec::new(), names: HashMap::new() }
    }

    fn launch_loop(
        &self,
        n: usize,
        schedule: LoopSchedule,
        arrays: &[(DevicePtr, usize)],
        body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]),
    ) -> AccResult<()> {
        let mut b = KernelBuilder::new("acc_parallel_loop");
        let bases: Vec<Reg> = arrays.iter().map(|_| b.param(Type::I64)).collect();
        let n_param = b.param(Type::I32);
        let i = b.global_thread_id_x();
        let ok = b.cmp(CmpOp::Lt, i, n_param);
        let mut f = Some(body);
        let bases_ref = &bases;
        b.if_(ok, |b| {
            if let Some(f) = f.take() {
                f(b, i, bases_ref);
            }
        });
        let kernel = b.finish();
        let module = self.session.compile(&kernel).map_err(|e| AccError::Runtime(e.to_string()))?;
        let vl = schedule.vector_length.max(1);
        let gangs = schedule.gangs.unwrap_or_else(|| (n as u32).div_ceil(vl).max(1));
        let cfg = LaunchConfig {
            grid_dim: gangs,
            block_dim: vl,
            policy: Default::default(),
            efficiency: self.session.efficiency(),
        };
        let mut args: Vec<KernelArg> = arrays.iter().map(|&(p, _)| KernelArg::Ptr(p)).collect();
        args.push(KernelArg::I32(n as i32));
        self.session
            .launch(&module, cfg, &args)
            .map(|_| ())
            .map_err(|e| AccError::Runtime(e.to_string()))
    }
}

/// The OpenACC column as a spine [`Frontend`]: vendor-complete on NVIDIA,
/// community compilers on AMD, refused on Intel (descriptions 7, 22, 36).
pub struct OpenAccFrontend;

impl Frontend for OpenAccFrontend {
    fn model(&self) -> Model {
        Model::OpenAcc
    }

    fn open(&self, vendor: Vendor) -> Result<ExecutionSession, FrontendError> {
        ExecutionSession::open(Model::OpenAcc, Language::Cpp, vendor)
    }
}

/// A structured `#pragma acc data` region: arrays are attached with
/// copyin/copyout/create semantics and transferred when the region closes.
pub struct DataRegion<'a> {
    acc: &'a AccDevice,
    arrays: Vec<(DevicePtr, usize, Transfer)>,
    names: HashMap<&'static str, usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transfer {
    CopyIn,
    CopyOut,
    Create,
}

impl<'a> DataRegion<'a> {
    /// `copyin(name[0:n])` — upload now, discard at region end.
    pub fn copyin(mut self, name: &'static str, data: &[f64]) -> AccResult<Self> {
        let ptr = self
            .acc
            .session
            .alloc_bytes(data.len() as u64 * 8)
            .map_err(|e| AccError::Runtime(e.to_string()))?;
        self.acc.session.upload_raw(ptr, data).map_err(|e| AccError::Runtime(e.to_string()))?;
        self.names.insert(name, self.arrays.len());
        self.arrays.push((ptr, data.len(), Transfer::CopyIn));
        Ok(self)
    }

    /// `copyout(name[0:n])` — allocate now, download at region end.
    pub fn copyout(mut self, name: &'static str, len: usize) -> AccResult<Self> {
        let ptr = self
            .acc
            .session
            .alloc_bytes(len as u64 * 8)
            .map_err(|e| AccError::Runtime(e.to_string()))?;
        self.names.insert(name, self.arrays.len());
        self.arrays.push((ptr, len, Transfer::CopyOut));
        Ok(self)
    }

    /// `create(name[0:n])` — device-only scratch.
    pub fn create(mut self, name: &'static str, len: usize) -> AccResult<Self> {
        let ptr = self
            .acc
            .session
            .alloc_bytes(len as u64 * 8)
            .map_err(|e| AccError::Runtime(e.to_string()))?;
        self.names.insert(name, self.arrays.len());
        self.arrays.push((ptr, len, Transfer::Create));
        Ok(self)
    }

    /// `#pragma acc parallel loop` over `0..n`. The body receives base
    /// registers in attachment order.
    pub fn parallel_loop(
        &self,
        n: usize,
        schedule: LoopSchedule,
        body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]),
    ) -> AccResult<()> {
        let arrays: Vec<(DevicePtr, usize)> = self.arrays.iter().map(|&(p, l, _)| (p, l)).collect();
        self.acc.launch_loop(n, schedule, &arrays, body)
    }

    /// `#pragma acc kernels` — the compiler picks the schedule.
    pub fn kernels(
        &self,
        n: usize,
        body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]),
    ) -> AccResult<()> {
        self.parallel_loop(n, LoopSchedule::default(), body)
    }

    /// `#pragma acc update host(name)` — read an array back mid-region
    /// (any transfer class).
    pub fn update_host(&self, name: &'static str) -> AccResult<Vec<f64>> {
        let &idx = self
            .names
            .get(name)
            .ok_or_else(|| AccError::Runtime(format!("no array named {name}")))?;
        let (ptr, len, _) = self.arrays[idx];
        self.acc.session.download_raw(ptr, len).map_err(|e| AccError::Runtime(e.to_string()))
    }

    /// `#pragma acc update device(name)` — push host data mid-region.
    pub fn update_device(&self, name: &'static str, data: &[f64]) -> AccResult<()> {
        let &idx = self
            .names
            .get(name)
            .ok_or_else(|| AccError::Runtime(format!("no array named {name}")))?;
        let (ptr, len, _) = self.arrays[idx];
        if data.len() > len {
            return Err(AccError::Runtime(format!("update device overflows {name}")));
        }
        self.acc
            .session
            .upload_raw(ptr, data)
            .map(|_| ())
            .map_err(|e| AccError::Runtime(e.to_string()))
    }

    /// Close the region: download every `copyout` array into the provided
    /// host slices (by name), free device memory.
    pub fn close(self, outputs: &mut [(&'static str, &mut [f64])]) -> AccResult<()> {
        for (name, host) in outputs.iter_mut() {
            let &idx = self
                .names
                .get(name)
                .ok_or_else(|| AccError::Runtime(format!("no array named {name}")))?;
            let (ptr, len, transfer) = self.arrays[idx];
            if transfer != Transfer::CopyOut {
                return Err(AccError::Runtime(format!("{name} is not a copyout array")));
            }
            let data: Vec<f64> = self
                .acc
                .session
                .download_raw(ptr, len)
                .map_err(|e| AccError::Runtime(e.to_string()))?;
            host.copy_from_slice(&data);
        }
        for (ptr, len, _) in self.arrays {
            self.acc.session.free_bytes(ptr, len as u64 * 8);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmm_gpu_sim::DeviceSpec;

    fn run_vec_scale(acc: &AccDevice) -> Vec<f64> {
        let n = 512;
        let input: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let region = acc.data_region().copyin("x", &input).unwrap().copyout("y", n).unwrap();
        region
            .parallel_loop(n, LoopSchedule::default(), |b, i, p| {
                let xv = b.ld_elem(Space::Global, Type::F64, p[0], i);
                let yv = b.bin(BinOp::Mul, xv, Value::F64(3.0));
                b.st_elem(Space::Global, p[1], i, yv);
            })
            .unwrap();
        let mut out = vec![0.0; n];
        region.close(&mut [("y", &mut out)]).unwrap();
        out
    }

    #[test]
    fn nvidia_uses_vendor_compiler() {
        // Description 7: NVHPC is the most extensive route; §5 pins the
        // cell as "complete".
        let acc = AccDevice::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        assert_eq!(acc.toolchain(), "NVIDIA HPC SDK (nvc/nvc++ -acc)");
        let out = run_vec_scale(&acc);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 3.0 * i as f64);
        }
    }

    #[test]
    fn amd_works_through_community_compilers() {
        // Description 22: GCC or Clacc, no AMD-provided route.
        let acc = AccDevice::new(Device::new(DeviceSpec::amd_mi250x())).unwrap();
        assert!(
            acc.toolchain().starts_with("GCC") || acc.toolchain().starts_with("Clacc"),
            "unexpected toolchain {}",
            acc.toolchain()
        );
        let out = run_vec_scale(&acc);
        assert_eq!(out[100], 300.0);
    }

    #[test]
    fn intel_has_no_openacc() {
        // Description 36 and the §6 conclusion: "support for Intel GPUs
        // does not exist". The migration tool is a translator, not a
        // compiler, so select_best finds nothing.
        match AccDevice::new(Device::new(DeviceSpec::intel_pvc())) {
            Err(AccError::NoSupport { vendor: Vendor::Intel, hint, .. }) => {
                assert!(hint.contains("acc2mp"));
            }
            other => panic!("expected NoSupport, got {:?}", other.err()),
        }
    }

    #[test]
    fn fortran_route_differs_from_cpp_on_amd() {
        // Description 23: Fortran OpenACC on AMD via gfortran/Cray.
        let acc = AccDevice::new_fortran(Device::new(DeviceSpec::amd_mi250x())).unwrap();
        assert!(
            acc.toolchain().contains("gfortran") || acc.toolchain().contains("Cray"),
            "unexpected {}",
            acc.toolchain()
        );
        let out = run_vec_scale(&acc);
        assert_eq!(out[7], 21.0);
    }

    #[test]
    fn explicit_gang_vector_schedule() {
        let acc = AccDevice::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        let n = 300;
        let input = vec![1.0f64; n];
        let region = acc.data_region().copyin("x", &input).unwrap().copyout("y", n).unwrap();
        region
            .parallel_loop(n, LoopSchedule { gangs: Some(5), vector_length: 64 }, |b, i, p| {
                let xv = b.ld_elem(Space::Global, Type::F64, p[0], i);
                let yv = b.bin(BinOp::Add, xv, Value::F64(41.0));
                b.st_elem(Space::Global, p[1], i, yv);
            })
            .unwrap();
        let mut out = vec![0.0; n];
        region.close(&mut [("y", &mut out)]).unwrap();
        assert!(out.iter().all(|&v| v == 42.0));
    }

    #[test]
    fn kernels_construct_picks_its_own_schedule() {
        let acc = AccDevice::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        let n = 100;
        let region = acc.data_region().copyout("y", n).unwrap();
        region
            .kernels(n, |b, i, p| {
                let iv = b.cvt(Type::F64, i);
                b.st_elem(Space::Global, p[0], i, iv);
            })
            .unwrap();
        let mut out = vec![0.0; n];
        region.close(&mut [("y", &mut out)]).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }

    #[test]
    fn closing_with_wrong_name_errors() {
        let acc = AccDevice::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        let region = acc.data_region().copyout("y", 4).unwrap();
        let mut out = vec![0.0; 4];
        let err = region.close(&mut [("nope", &mut out)]).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn copyin_arrays_cannot_be_copied_out() {
        let acc = AccDevice::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        let region = acc.data_region().copyin("x", &[1.0, 2.0]).unwrap();
        let mut out = vec![0.0; 2];
        let err = region.close(&mut [("x", &mut out)]).unwrap_err();
        assert!(err.to_string().contains("not a copyout"));
    }
}
