//! # mcmm-model-sycl — a SYCL-style frontend
//!
//! SYCL (descriptions 5, 21, 35) is the C++17-based Khronos standard and
//! Intel's prime model. This frontend mirrors its shape: a [`Queue`] bound
//! to a device, [`Buffer`]s with host shadows and accessor-style transfer
//! semantics, USM-style device allocations, and `parallel_for` over 1-D
//! ranges with the kernel body built through the shared IR builder.
//!
//! SYCL reaches **all three vendors**, but through different
//! implementations ([`SyclImpl`]):
//!
//! * [`SyclImpl::Dpcpp`] — Intel's LLVM compiler: native on Intel, a
//!   plugin on NVIDIA (CUDA) and AMD (ROCm).
//! * [`SyclImpl::OpenSycl`] — the community implementation (previously
//!   hipSYCL).
//! * [`SyclImpl::ComputeCpp`] — CodePlay's product, unsupported since
//!   September 2023: constructing a queue with it fails.
//!
//! There is **no Fortran surface** (description 6) — that absence is
//! type-level: nothing in this crate accepts Fortran.

use mcmm_core::taxonomy::{Language, Model, Vendor};
use mcmm_frontend::{Element, ExecutionSession, Frontend, FrontendError};
use mcmm_gpu_sim::device::{Device, KernelArg, LaunchReport};
use mcmm_gpu_sim::ir::{KernelBuilder, KernelIr, Reg, Type};
use mcmm_gpu_sim::mem::DevicePtr;
use std::fmt;
use std::sync::Arc;

pub use mcmm_gpu_sim::ir::{BinOp, CmpOp, Space, UnOp, Value};

/// SYCL implementations the paper surveys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyclImpl {
    /// Intel's LLVM-based DPC++ (open source + oneAPI commercial).
    Dpcpp,
    /// Open SYCL (previously hipSYCL).
    OpenSycl,
    /// CodePlay ComputeCpp — unsupported since 09/2023.
    ComputeCpp,
}

impl SyclImpl {
    /// The registry toolchain name realising this implementation on a
    /// vendor.
    fn toolchain_name(self, vendor: Vendor) -> Option<&'static str> {
        match (self, vendor) {
            (SyclImpl::Dpcpp, Vendor::Intel) => Some("Intel oneAPI DPC++ (icpx -fsycl)"),
            (SyclImpl::Dpcpp, Vendor::Nvidia) => Some("DPC++ (CUDA plugin)"),
            (SyclImpl::Dpcpp, Vendor::Amd) => Some("DPC++ (ROCm plugin)"),
            (SyclImpl::OpenSycl, Vendor::Nvidia) => Some("Open SYCL"),
            (SyclImpl::OpenSycl, Vendor::Amd) => Some("Open SYCL (HIP/ROCm)"),
            (SyclImpl::OpenSycl, Vendor::Intel) => Some("Open SYCL (SPIR-V/Level Zero)"),
            (SyclImpl::ComputeCpp, Vendor::Nvidia | Vendor::Intel) => Some("ComputeCpp"),
            (SyclImpl::ComputeCpp, Vendor::Amd) => None,
        }
    }
}

/// SYCL-style errors (`sycl::exception` categories).
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings are fully specified per variant
pub enum SyclError {
    /// No implementation covers this device (or the implementation is
    /// discontinued).
    NoImplementation { implementation: SyclImpl, vendor: Vendor },
    /// `errc::memory_allocation`.
    MemoryAllocation(String),
    /// `errc::invalid`.
    Invalid(String),
    /// Kernel/runtime failure.
    Runtime(String),
}

impl fmt::Display for SyclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyclError::NoImplementation { implementation, vendor } => {
                write!(f, "sycl: {implementation:?} has no backend for {vendor} devices")
            }
            SyclError::MemoryAllocation(m) => write!(f, "sycl: memory allocation failed: {m}"),
            SyclError::Invalid(m) => write!(f, "sycl: invalid: {m}"),
            SyclError::Runtime(m) => write!(f, "sycl: runtime error: {m}"),
        }
    }
}

impl std::error::Error for SyclError {}

/// Result alias.
pub type SyclResult<T> = Result<T, SyclError>;

/// An in-order SYCL queue on one device through one implementation — a
/// SYCL-flavored surface over the shared [`ExecutionSession`] spine.
pub struct Queue {
    session: ExecutionSession,
    implementation: SyclImpl,
}

impl Queue {
    /// Create a queue with an explicit implementation choice.
    pub fn with_impl(device: Arc<Device>, implementation: SyclImpl) -> SyclResult<Self> {
        let vendor = mcmm_toolchain::isa_vendor(device.spec().isa);
        let name = implementation
            .toolchain_name(vendor)
            .ok_or(SyclError::NoImplementation { implementation, vendor })?;
        // The spine resolves the named toolchain and refuses discontinued
        // ones (ComputeCpp after September 2023).
        let session =
            ExecutionSession::open_with_toolchain_on(device, Model::Sycl, Language::Cpp, name)
                .map_err(|e| match e {
                    FrontendError::NoRoute { vendor, .. }
                    | FrontendError::Discontinued { vendor, .. } => {
                        SyclError::NoImplementation { implementation, vendor }
                    }
                    other => SyclError::Runtime(other.to_string()),
                })?;
        Ok(Self { session, implementation })
    }

    /// Create a queue with the default (best available) implementation —
    /// what `sycl::queue{gpu_selector_v}` does.
    pub fn new(device: Arc<Device>) -> SyclResult<Self> {
        let vendor = mcmm_toolchain::isa_vendor(device.spec().isa);
        for implementation in [SyclImpl::Dpcpp, SyclImpl::OpenSycl] {
            if let Ok(q) = Self::with_impl(Arc::clone(&device), implementation) {
                return Ok(q);
            }
        }
        Err(SyclError::NoImplementation { implementation: SyclImpl::Dpcpp, vendor })
    }

    /// The implementation behind this queue.
    pub fn implementation(&self) -> SyclImpl {
        self.implementation
    }

    /// The toolchain name (diagnostics).
    pub fn toolchain(&self) -> &'static str {
        self.session.toolchain()
    }

    /// The device vendor.
    pub fn vendor(&self) -> Vendor {
        self.session.vendor()
    }

    /// The route efficiency applied at launch.
    pub fn efficiency(&self) -> f64 {
        self.session.efficiency()
    }

    /// The execution-spine session under this queue.
    pub fn session(&self) -> &ExecutionSession {
        &self.session
    }

    /// USM: `malloc_device<T>` — one generic allocation path for every
    /// element type (the old `_f32`/`_f64` pair is deprecated sugar).
    pub fn malloc_device<T: Element>(&self, n: usize) -> SyclResult<DevicePtr> {
        self.session
            .alloc_bytes((n * T::BYTES) as u64)
            .map_err(|e| SyclError::MemoryAllocation(e.to_string()))
    }

    /// USM: `malloc_device<f32>`.
    #[deprecated(since = "0.1.0", note = "use the generic `malloc_device::<f32>` instead")]
    pub fn malloc_device_f32(&self, n: usize) -> SyclResult<DevicePtr> {
        self.malloc_device::<f32>(n)
    }

    /// USM: `malloc_device<double>`.
    #[deprecated(since = "0.1.0", note = "use the generic `malloc_device::<f64>` instead")]
    pub fn malloc_device_f64(&self, n: usize) -> SyclResult<DevicePtr> {
        self.malloc_device::<f64>(n)
    }

    /// USM copy host→device for doubles.
    #[deprecated(since = "0.1.0", note = "use the generic `memcpy_to_device` instead")]
    pub fn memcpy_to_device_f64(&self, dst: DevicePtr, src: &[f64]) -> SyclResult<()> {
        self.memcpy_to_device(dst, src)
    }

    /// USM copy device→host for doubles.
    #[deprecated(since = "0.1.0", note = "use the generic `memcpy_from_device` instead")]
    pub fn memcpy_from_device_f64(&self, src: DevicePtr, n: usize) -> SyclResult<Vec<f64>> {
        self.memcpy_from_device(src, n)
    }

    /// `parallel_for` over raw USM pointers (no buffer bookkeeping): the
    /// body receives base registers in `ptrs` order. Returns the launch
    /// report (used by the BabelStream adapter for modeled timings).
    pub fn parallel_for_usm(
        &self,
        range: usize,
        ptrs: &[DevicePtr],
        body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]),
    ) -> SyclResult<LaunchReport> {
        let mut b = KernelBuilder::new("sycl_parallel_for_usm");
        let bases: Vec<Reg> = ptrs.iter().map(|_| b.param(Type::I64)).collect();
        let n_param = b.param(Type::I32);
        let i = b.global_thread_id_x();
        let ok = b.cmp(CmpOp::Lt, i, n_param);
        let mut f = Some(body);
        let bases_ref = &bases;
        b.if_(ok, |b| {
            if let Some(f) = f.take() {
                f(b, i, bases_ref);
            }
        });
        let kernel = b.finish();
        let mut args: Vec<KernelArg> = ptrs.iter().map(|&p| KernelArg::Ptr(p)).collect();
        args.push(KernelArg::I32(range as i32));
        self.session
            .run(&kernel, range as u64, 256, &args)
            .map_err(|e| SyclError::Runtime(e.to_string()))
    }

    /// USM copy host→device — generic over the element type ([`Element`]),
    /// replacing the old `f32`/`f64` method pair.
    pub fn memcpy_to_device<T: Element>(&self, dst: DevicePtr, src: &[T]) -> SyclResult<()> {
        self.session.upload_raw(dst, src).map(|_| ()).map_err(|e| SyclError::Invalid(e.to_string()))
    }

    /// USM copy device→host — generic over the element type.
    pub fn memcpy_from_device<T: Element>(&self, src: DevicePtr, n: usize) -> SyclResult<Vec<T>> {
        self.session.download_raw(src, n).map_err(|e| SyclError::Invalid(e.to_string()))
    }

    /// `parallel_for` over a 1-D range: the body closure receives the
    /// builder, the global index register (`item.get_id(0)`), and the base
    /// registers of the buffers passed in `buffers`.
    ///
    /// This is the buffer/accessor path: buffers are implicitly available
    /// to the kernel, the runtime wires their device pointers as arguments.
    pub fn parallel_for(
        &self,
        range: usize,
        buffers: &mut [&mut Buffer],
        body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]),
    ) -> SyclResult<LaunchReport> {
        // Ensure device copies are current.
        for buf in buffers.iter_mut() {
            buf.sync_to_device(self)?;
        }
        let mut b = KernelBuilder::new("sycl_parallel_for");
        let bases: Vec<Reg> = buffers.iter().map(|_| b.param(Type::I64)).collect();
        let n_param = b.param(Type::I32);
        let i = b.global_thread_id_x();
        let ok = b.cmp(CmpOp::Lt, i, n_param);
        let mut f = Some(body);
        let bases_ref = &bases;
        b.if_(ok, |b| {
            if let Some(f) = f.take() {
                f(b, i, bases_ref);
            }
        });
        let kernel = b.finish();
        let report = self.run_kernel(&kernel, range, buffers)?;
        for buf in buffers.iter_mut() {
            buf.mark_device_dirty();
        }
        Ok(report)
    }

    fn run_kernel(
        &self,
        kernel: &KernelIr,
        range: usize,
        buffers: &[&mut Buffer],
    ) -> SyclResult<LaunchReport> {
        let mut args: Vec<KernelArg> =
            buffers.iter().map(|buf| KernelArg::Ptr(buf.device_ptr.expect("synced"))).collect();
        args.push(KernelArg::I32(range as i32));
        self.session
            .run(kernel, range as u64, 256, &args)
            .map_err(|e| SyclError::Runtime(e.to_string()))
    }
}

/// The SYCL column as a spine [`Frontend`]: one model, all three vendors
/// (§6: SYCL "supports all three GPU platform[s]").
pub struct SyclFrontend;

impl Frontend for SyclFrontend {
    fn model(&self) -> Model {
        Model::Sycl
    }

    fn open(&self, vendor: Vendor) -> Result<ExecutionSession, FrontendError> {
        ExecutionSession::open(Model::Sycl, Language::Cpp, vendor)
    }
}

/// A SYCL buffer: host data with a lazily materialised device shadow.
/// Reading the host data after kernels ran synchronises back — the
/// accessor-at-destruction semantics of SYCL buffers, made explicit.
pub struct Buffer {
    host: Vec<f32>,
    device_ptr: Option<DevicePtr>,
    device_dirty: bool,
}

impl Buffer {
    /// Wrap host data.
    pub fn new(host: Vec<f32>) -> Self {
        Self { host, device_ptr: None, device_dirty: false }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.host.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.host.is_empty()
    }

    fn sync_to_device(&mut self, queue: &Queue) -> SyclResult<()> {
        if self.device_ptr.is_none() {
            let ptr = queue.malloc_device::<f32>(self.host.len())?;
            queue.memcpy_to_device(ptr, &self.host)?;
            self.device_ptr = Some(ptr);
        }
        Ok(())
    }

    fn mark_device_dirty(&mut self) {
        self.device_dirty = true;
    }

    /// Host accessor: synchronise back (if kernels wrote the buffer) and
    /// read the data.
    pub fn host_data(&mut self, queue: &Queue) -> SyclResult<&[f32]> {
        if self.device_dirty {
            let ptr = self.device_ptr.expect("dirty buffer must have a device copy");
            self.host = queue.memcpy_from_device(ptr, self.host.len())?;
            self.device_dirty = false;
        }
        Ok(&self.host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmm_gpu_sim::DeviceSpec;

    fn vector_add(queue: &Queue) -> Vec<f32> {
        let n = 1024;
        let mut a = Buffer::new((0..n).map(|i| i as f32).collect());
        let mut b = Buffer::new((0..n).map(|i| 2.0 * i as f32).collect());
        let mut c = Buffer::new(vec![0.0; n]);
        {
            let mut bufs = [&mut a, &mut b, &mut c];
            queue
                .parallel_for(n, &mut bufs, |k, i, bases| {
                    let av = k.ld_elem(Space::Global, Type::F32, bases[0], i);
                    let bv = k.ld_elem(Space::Global, Type::F32, bases[1], i);
                    let s = k.bin(BinOp::Add, av, bv);
                    k.st_elem(Space::Global, bases[2], i, s);
                })
                .unwrap();
        }
        c.host_data(queue).unwrap().to_vec()
    }

    #[test]
    fn sycl_reaches_all_three_vendors() {
        // §6: SYCL "supports all three GPU platform[s]".
        for spec in DeviceSpec::presets() {
            let name = spec.name;
            let queue = Queue::new(Device::new(spec)).unwrap();
            let out = vector_add(&queue);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, 3.0 * i as f32, "{name} wrong at {i}");
            }
        }
    }

    #[test]
    fn default_implementation_is_dpcpp_everywhere() {
        for spec in DeviceSpec::presets() {
            let queue = Queue::new(Device::new(spec)).unwrap();
            assert_eq!(queue.implementation(), SyclImpl::Dpcpp);
        }
    }

    #[test]
    fn native_on_intel_full_efficiency_elsewhere_not() {
        let q = Queue::new(Device::new(DeviceSpec::intel_pvc())).unwrap();
        assert_eq!(q.toolchain(), "Intel oneAPI DPC++ (icpx -fsycl)");
        assert_eq!(q.efficiency(), 1.0);
        let q = Queue::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        assert_eq!(q.toolchain(), "DPC++ (CUDA plugin)");
        // DPC++ on NVIDIA is complete+active (non-vendor good) → still 1.0
        // directness-wise; Open SYCL path also works:
        let q2 =
            Queue::with_impl(Device::new(DeviceSpec::nvidia_a100()), SyclImpl::OpenSycl).unwrap();
        assert_eq!(q2.toolchain(), "Open SYCL");
    }

    #[test]
    fn computecpp_is_discontinued() {
        // Description 5/35: ComputeCpp unsupported since 09/2023.
        for spec in [DeviceSpec::nvidia_a100(), DeviceSpec::intel_pvc()] {
            match Queue::with_impl(Device::new(spec), SyclImpl::ComputeCpp) {
                Err(SyclError::NoImplementation { .. }) => {}
                Err(other) => panic!("unexpected error {other:?}"),
                Ok(_) => panic!("ComputeCpp queue must not construct"),
            }
        }
        // And it never supported AMD at all in our registry.
        match Queue::with_impl(Device::new(DeviceSpec::amd_mi250x()), SyclImpl::ComputeCpp) {
            Err(SyclError::NoImplementation { vendor: Vendor::Amd, .. }) => {}
            Err(other) => panic!("unexpected error {other:?}"),
            Ok(_) => panic!("ComputeCpp never supported AMD"),
        }
    }

    #[test]
    fn usm_roundtrip() {
        let q = Queue::new(Device::new(DeviceSpec::amd_mi250x())).unwrap();
        let p = q.malloc_device::<f32>(100).unwrap();
        let data: Vec<f32> = (0..100).map(|i| i as f32 * 0.25).collect();
        q.memcpy_to_device(p, &data).unwrap();
        assert_eq!(q.memcpy_from_device::<f32>(p, 100).unwrap(), data);
        // f64 goes through the very same generic path.
        let p64 = q.malloc_device::<f64>(50).unwrap();
        let data64: Vec<f64> = (0..50).map(|i| i as f64 * 0.125).collect();
        q.memcpy_to_device(p64, &data64).unwrap();
        assert_eq!(q.memcpy_from_device::<f64>(p64, 50).unwrap(), data64);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_memcpy_names_still_work() {
        let q = Queue::new(Device::new(DeviceSpec::intel_pvc())).unwrap();
        let p = q.malloc_device_f64(8).unwrap();
        let data: Vec<f64> = (0..8).map(|i| i as f64).collect();
        q.memcpy_to_device_f64(p, &data).unwrap();
        assert_eq!(q.memcpy_from_device_f64(p, 8).unwrap(), data);
        let p32 = q.malloc_device_f32(4).unwrap();
        q.memcpy_to_device(p32, &[1.0f32; 4]).unwrap();
        assert_eq!(q.memcpy_from_device::<f32>(p32, 4).unwrap(), vec![1.0; 4]);
    }

    #[test]
    fn buffer_host_accessor_syncs_back_only_when_dirty() {
        let q = Queue::new(Device::new(DeviceSpec::intel_pvc())).unwrap();
        let mut buf = Buffer::new(vec![1.0; 16]);
        // Untouched buffer: host data readable without any device traffic.
        assert_eq!(buf.host_data(&q).unwrap(), &[1.0; 16][..]);
        let mut bufs = [&mut buf];
        q.parallel_for(16, &mut bufs, |k, i, bases| {
            let v = k.ld_elem(Space::Global, Type::F32, bases[0], i);
            let w = k.bin(BinOp::Add, v, Value::F32(1.0));
            k.st_elem(Space::Global, bases[0], i, w);
        })
        .unwrap();
        assert_eq!(buf.host_data(&q).unwrap(), &[2.0; 16][..]);
    }
}
