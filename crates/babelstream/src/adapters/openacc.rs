//! BabelStream in OpenACC — one data region, one `parallel loop` per
//! kernel. Not available on Intel (the paper's conclusion: OpenACC
//! "support for Intel GPUs does not exist").

use super::Stopwatch;
use crate::{
    Gold, RunResult, StreamBackend, StreamError, StreamKernel, SCALAR, START_A, START_B, START_C,
};
use mcmm_core::taxonomy::Vendor;
use mcmm_gpu_sim::device::Device;
use mcmm_gpu_sim::ir::{AtomicOp, Space, Type};
use mcmm_model_openacc::{AccDevice, BinOp, LoopSchedule, Value};

/// The OpenACC BabelStream adapter.
pub struct OpenAccStream;

impl StreamBackend for OpenAccStream {
    fn model_name(&self) -> &'static str {
        "OpenACC"
    }

    fn run(&self, vendor: Vendor, n: usize, iters: usize) -> Result<RunResult, StreamError> {
        let device = Device::new(mcmm_toolchain::vendor_device_spec(vendor));
        let dev = device.clone();
        let acc = AccDevice::new(device).map_err(|e| StreamError::Unsupported {
            model: "OpenACC",
            vendor,
            detail: e.to_string(),
        })?;
        let fail = |e: mcmm_model_openacc::AccError| StreamError::Failed(e.to_string());

        let region = acc
            .data_region()
            .copyin("a", &vec![START_A; n])
            .map_err(fail)?
            .copyin("b", &vec![START_B; n])
            .map_err(fail)?
            .copyin("c", &vec![START_C; n])
            .map_err(fail)?
            .copyin("sum", &[0.0])
            .map_err(fail)?;
        let sched = LoopSchedule::default();

        let mut sw = Stopwatch::new(&dev);
        let mut gold = Gold::initial();
        let mut dot = 0.0;
        for _ in 0..iters {
            sw.time(StreamKernel::Copy, || {
                region.parallel_loop(n, sched, |k, i, p| {
                    let v = k.ld_elem(Space::Global, Type::F64, p[0], i);
                    k.st_elem(Space::Global, p[2], i, v);
                })
            })
            .map_err(fail)?;
            sw.time(StreamKernel::Mul, || {
                region.parallel_loop(n, sched, |k, i, p| {
                    let v = k.ld_elem(Space::Global, Type::F64, p[2], i);
                    let w = k.bin(BinOp::Mul, v, Value::F64(SCALAR));
                    k.st_elem(Space::Global, p[1], i, w);
                })
            })
            .map_err(fail)?;
            sw.time(StreamKernel::Add, || {
                region.parallel_loop(n, sched, |k, i, p| {
                    let va = k.ld_elem(Space::Global, Type::F64, p[0], i);
                    let vb = k.ld_elem(Space::Global, Type::F64, p[1], i);
                    let s = k.bin(BinOp::Add, va, vb);
                    k.st_elem(Space::Global, p[2], i, s);
                })
            })
            .map_err(fail)?;
            sw.time(StreamKernel::Triad, || {
                region.parallel_loop(n, sched, |k, i, p| {
                    let vb = k.ld_elem(Space::Global, Type::F64, p[1], i);
                    let vc = k.ld_elem(Space::Global, Type::F64, p[2], i);
                    let sc = k.bin(BinOp::Mul, vc, Value::F64(SCALAR));
                    let s = k.bin(BinOp::Add, vb, sc);
                    k.st_elem(Space::Global, p[0], i, s);
                })
            })
            .map_err(fail)?;
            gold.step();
            region.update_device("sum", &[0.0]).map_err(fail)?;
            sw.time(StreamKernel::Dot, || {
                region.parallel_loop(n, sched, |k, i, p| {
                    let va = k.ld_elem(Space::Global, Type::F64, p[0], i);
                    let vb = k.ld_elem(Space::Global, Type::F64, p[1], i);
                    let prod = k.bin(BinOp::Mul, va, vb);
                    let _ = k.atomic(AtomicOp::Add, Space::Global, p[3], prod);
                })
            })
            .map_err(fail)?;
            dot = region.update_host("sum").map_err(fail)?[0];
        }

        let ha = region.update_host("a").map_err(fail)?;
        let hb = region.update_host("b").map_err(fail)?;
        let hc = region.update_host("c").map_err(fail)?;
        let dot_ok = ((dot - gold.expected_dot(n)) / gold.expected_dot(n)).abs() < 1e-8;
        Ok(RunResult {
            model: "OpenACC",
            toolchain: acc.toolchain().to_owned(),
            vendor,
            n,
            kernels: sw.results(n),
            dot,
            verified: crate::verify(&ha, &hb, &hc, gold) && dot_ok,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_on_nvidia_and_amd_not_intel() {
        let nv = OpenAccStream.run(Vendor::Nvidia, 2048, 2).unwrap();
        assert!(nv.verified);
        assert_eq!(nv.toolchain, "NVIDIA HPC SDK (nvc/nvc++ -acc)");
        let amd = OpenAccStream.run(Vendor::Amd, 2048, 2).unwrap();
        assert!(amd.verified);
        assert!(matches!(
            OpenAccStream.run(Vendor::Intel, 64, 1),
            Err(StreamError::Unsupported { model: "OpenACC", .. })
        ));
    }

    #[test]
    fn community_route_on_amd_is_slower_than_vendor_route_on_nvidia_modulo_bandwidth() {
        // The AMD route is GCC at majority completeness (0.95 efficiency);
        // normalising by each device's peak BW *after* removing launch
        // latency (which otherwise dominates at benchmark-test sizes),
        // NVIDIA's native route achieves a higher fraction of peak.
        let nv = OpenAccStream.run(Vendor::Nvidia, 65536, 1).unwrap();
        let amd = OpenAccStream.run(Vendor::Amd, 65536, 1).unwrap();
        let busy_frac = |r: &crate::RunResult, peak: f64, latency_us: f64| {
            let k = r.kernel(StreamKernel::Triad).unwrap();
            let busy = k.best_time.seconds() - latency_us * 1e-6;
            (k.bytes as f64 / 1e9) / busy / peak
        };
        let nv_frac = busy_frac(&nv, 2039.0, 5.0);
        let amd_frac = busy_frac(&amd, 1638.0, 6.0);
        assert!(nv_frac > amd_frac, "nv {nv_frac} !> amd {amd_frac}");
    }
}
