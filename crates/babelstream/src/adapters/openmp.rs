//! BabelStream in OpenMP target offload — a persistent `target data`
//! region with one `target teams distribute parallel for` per kernel.

use super::Stopwatch;
use crate::{
    Gold, RunResult, StreamBackend, StreamError, StreamKernel, SCALAR, START_A, START_B, START_C,
};
use mcmm_core::taxonomy::Vendor;
use mcmm_gpu_sim::device::Device;
use mcmm_gpu_sim::ir::{AtomicOp, Space, Type};
use mcmm_model_openmp::{BinOp, OmpDevice, Value};

/// The OpenMP BabelStream adapter.
pub struct OpenMpStream;

impl StreamBackend for OpenMpStream {
    fn model_name(&self) -> &'static str {
        "OpenMP"
    }

    fn run(&self, vendor: Vendor, n: usize, iters: usize) -> Result<RunResult, StreamError> {
        let device = Device::new(mcmm_toolchain::vendor_device_spec(vendor));
        let dev = device.clone();
        let omp = OmpDevice::new(device).map_err(|e| StreamError::Unsupported {
            model: "OpenMP",
            vendor,
            detail: e.to_string(),
        })?;
        let fail = |e: mcmm_model_openmp::OmpError| StreamError::Failed(e.to_string());

        let mut region = omp.target_data();
        let a = region.map_to(&vec![START_A; n]).map_err(fail)?;
        let b = region.map_to(&vec![START_B; n]).map_err(fail)?;
        let c = region.map_to(&vec![START_C; n]).map_err(fail)?;
        let sum = region.map_to(&[0.0]).map_err(fail)?;

        let mut sw = Stopwatch::new(&dev);
        let mut gold = Gold::initial();
        let mut dot = 0.0;
        for _ in 0..iters {
            sw.time(StreamKernel::Copy, || {
                region.parallel_for(n, |k, i, p| {
                    let v = k.ld_elem(Space::Global, Type::F64, p[0], i);
                    k.st_elem(Space::Global, p[2], i, v);
                })
            })
            .map_err(fail)?;
            sw.time(StreamKernel::Mul, || {
                region.parallel_for(n, |k, i, p| {
                    let v = k.ld_elem(Space::Global, Type::F64, p[2], i);
                    let w = k.bin(BinOp::Mul, v, Value::F64(SCALAR));
                    k.st_elem(Space::Global, p[1], i, w);
                })
            })
            .map_err(fail)?;
            sw.time(StreamKernel::Add, || {
                region.parallel_for(n, |k, i, p| {
                    let va = k.ld_elem(Space::Global, Type::F64, p[0], i);
                    let vb = k.ld_elem(Space::Global, Type::F64, p[1], i);
                    let s = k.bin(BinOp::Add, va, vb);
                    k.st_elem(Space::Global, p[2], i, s);
                })
            })
            .map_err(fail)?;
            sw.time(StreamKernel::Triad, || {
                region.parallel_for(n, |k, i, p| {
                    let vb = k.ld_elem(Space::Global, Type::F64, p[1], i);
                    let vc = k.ld_elem(Space::Global, Type::F64, p[2], i);
                    let sc = k.bin(BinOp::Mul, vc, Value::F64(SCALAR));
                    let s = k.bin(BinOp::Add, vb, sc);
                    k.st_elem(Space::Global, p[0], i, s);
                })
            })
            .map_err(fail)?;
            gold.step();
            // Zero the reduction cell with a one-element region, then dot.
            region
                .parallel_for(1, |k, i, p| {
                    let zero = k.imm(Value::F64(0.0));
                    k.st_elem(Space::Global, p[3], i, zero);
                })
                .map_err(fail)?;
            sw.time(StreamKernel::Dot, || {
                region.parallel_for(n, |k, i, p| {
                    let va = k.ld_elem(Space::Global, Type::F64, p[0], i);
                    let vb = k.ld_elem(Space::Global, Type::F64, p[1], i);
                    let prod = k.bin(BinOp::Mul, va, vb);
                    let _ = k.atomic(AtomicOp::Add, Space::Global, p[3], prod);
                })
            })
            .map_err(fail)?;
            dot = region.update_from(sum).map_err(fail)?[0];
        }

        let ha = region.update_from(a).map_err(fail)?;
        let hb = region.update_from(b).map_err(fail)?;
        let hc = region.update_from(c).map_err(fail)?;
        region.close();
        let dot_ok = ((dot - gold.expected_dot(n)) / gold.expected_dot(n)).abs() < 1e-8;
        Ok(RunResult {
            model: "OpenMP",
            toolchain: omp.toolchain().to_owned(),
            vendor,
            n,
            kernels: sw.results(n),
            dot,
            verified: crate::verify(&ha, &hb, &hc, gold) && dot_ok,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_on_all_three_vendors() {
        // §6: OpenMP "is supported on all three platforms".
        for v in Vendor::ALL {
            let r = OpenMpStream.run(v, 2048, 2).unwrap();
            assert!(r.verified, "{v}");
        }
    }

    #[test]
    fn vendor_toolchains_resolve() {
        assert_eq!(
            OpenMpStream.run(Vendor::Intel, 256, 1).unwrap().toolchain,
            "Intel oneAPI DPC++/C++ (icpx -qopenmp)"
        );
        assert_eq!(OpenMpStream.run(Vendor::Amd, 256, 1).unwrap().toolchain, "AOMP (Clang-based)");
    }
}
