//! BabelStream in HIP — identical kernels to the CUDA variant (the paper:
//! "keywords of the kernel syntax are identical"), different runtime.

use super::cuda::stream_kernels;
use super::Stopwatch;
use crate::{Gold, RunResult, StreamBackend, StreamError, StreamKernel, START_A, START_B, START_C};
use mcmm_core::taxonomy::Vendor;
use mcmm_gpu_sim::device::{Device, KernelArg};
use mcmm_gpu_sim::ir::Value;
use mcmm_model_hip::{HipContext, HipKernel};

/// The HIP BabelStream adapter.
pub struct HipStream;

impl StreamBackend for HipStream {
    fn model_name(&self) -> &'static str {
        "HIP"
    }

    fn run(&self, vendor: Vendor, n: usize, iters: usize) -> Result<RunResult, StreamError> {
        let device = Device::new(mcmm_toolchain::vendor_device_spec(vendor));
        let ctx = HipContext::new(device).map_err(|e| StreamError::Unsupported {
            model: "HIP",
            vendor,
            detail: e.to_string(),
        })?;
        let fail = |e: mcmm_model_hip::HipError| StreamError::Failed(e.to_string());

        let kernels: Vec<HipKernel> = stream_kernels()
            .iter()
            .map(|k| ctx.compile(k))
            .collect::<Result<_, _>>()
            .map_err(fail)?;
        let toolchain = kernels[0].toolchain.to_owned();

        let da = ctx.upload_f64(&vec![START_A; n]).map_err(fail)?;
        let db = ctx.upload_f64(&vec![START_B; n]).map_err(fail)?;
        let dc = ctx.upload_f64(&vec![START_C; n]).map_err(fail)?;
        let dsum = ctx.upload_f64(&[0.0]).map_err(fail)?;
        let args = [
            KernelArg::Ptr(da),
            KernelArg::Ptr(db),
            KernelArg::Ptr(dc),
            KernelArg::Ptr(dsum),
            KernelArg::I32(n as i32),
        ];
        let grid = (n as u32).div_ceil(256);

        let dev = ctx.device().clone();
        let mut sw = Stopwatch::new(&dev);
        let mut gold = Gold::initial();
        let mut dot = 0.0;
        for _ in 0..iters {
            for (idx, kernel) in
                [StreamKernel::Copy, StreamKernel::Mul, StreamKernel::Add, StreamKernel::Triad]
                    .iter()
                    .enumerate()
            {
                sw.time(*kernel, || ctx.launch(&kernels[idx], grid, 256, &args)).map_err(fail)?;
            }
            gold.step();
            ctx.device()
                .memory()
                .store(dsum.0, Value::F64(0.0))
                .map_err(|e| StreamError::Failed(e.to_string()))?;
            sw.time(StreamKernel::Dot, || ctx.launch(&kernels[4], grid, 256, &args))
                .map_err(fail)?;
            dot = ctx.download_f64(dsum, 1).map_err(fail)?[0];
        }

        let a = ctx.download_f64(da, n).map_err(fail)?;
        let b = ctx.download_f64(db, n).map_err(fail)?;
        let c = ctx.download_f64(dc, n).map_err(fail)?;
        let dot_ok = ((dot - gold.expected_dot(n)) / gold.expected_dot(n)).abs() < 1e-8;
        Ok(RunResult {
            model: "HIP",
            toolchain,
            vendor,
            n,
            kernels: sw.results(n),
            dot,
            verified: crate::verify(&a, &b, &c, gold) && dot_ok,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_on_amd_natively_and_nvidia_via_cuda_backend() {
        let amd = HipStream.run(Vendor::Amd, 2048, 2).unwrap();
        assert!(amd.verified);
        assert_eq!(amd.toolchain, "hipcc (ROCm/Clang AMDGPU)");
        let nv = HipStream.run(Vendor::Nvidia, 2048, 2).unwrap();
        assert!(nv.verified);
        assert_eq!(nv.toolchain, "hipcc (CUDA backend)");
    }

    #[test]
    fn unsupported_on_intel() {
        assert!(matches!(
            HipStream.run(Vendor::Intel, 64, 1),
            Err(StreamError::Unsupported { model: "HIP", .. })
        ));
    }

    #[test]
    fn translated_route_is_slower_than_native_cuda() {
        // The HIP-on-NVIDIA path pays the translated-route penalty, so its
        // triad bandwidth lands below native CUDA's on the same device.
        let hip = HipStream.run(Vendor::Nvidia, 8192, 1).unwrap();
        let cuda = super::super::cuda::CudaStream.run(Vendor::Nvidia, 8192, 1).unwrap();
        assert!(
            hip.triad_gbps() < cuda.triad_gbps(),
            "hip {} !< cuda {}",
            hip.triad_gbps(),
            cuda.triad_gbps()
        );
    }
}
