//! BabelStream in Alpaka — kernel functors with explicit work division.

use super::Stopwatch;
use crate::{
    Gold, RunResult, StreamBackend, StreamError, StreamKernel, SCALAR, START_A, START_B, START_C,
};
use mcmm_core::taxonomy::Vendor;
use mcmm_gpu_sim::device::Device;
use mcmm_gpu_sim::ir::{AtomicOp, KernelBuilder, Reg, Space, Type};
use mcmm_model_alpaka::{Accelerator, AlpakaKernel, BinOp, Value, WorkDiv};

/// The Alpaka BabelStream adapter.
pub struct AlpakaStream;

struct CopyK;
struct MulK;
struct AddK;
struct TriadK;
struct DotK;

impl AlpakaKernel for CopyK {
    fn operator(&self, acc: &mut KernelBuilder, i: Reg, p: &[Reg]) {
        let v = acc.ld_elem(Space::Global, Type::F64, p[0], i);
        acc.st_elem(Space::Global, p[2], i, v);
    }
}
impl AlpakaKernel for MulK {
    fn operator(&self, acc: &mut KernelBuilder, i: Reg, p: &[Reg]) {
        let v = acc.ld_elem(Space::Global, Type::F64, p[2], i);
        let w = acc.bin(BinOp::Mul, v, Value::F64(SCALAR));
        acc.st_elem(Space::Global, p[1], i, w);
    }
}
impl AlpakaKernel for AddK {
    fn operator(&self, acc: &mut KernelBuilder, i: Reg, p: &[Reg]) {
        let va = acc.ld_elem(Space::Global, Type::F64, p[0], i);
        let vb = acc.ld_elem(Space::Global, Type::F64, p[1], i);
        let s = acc.bin(BinOp::Add, va, vb);
        acc.st_elem(Space::Global, p[2], i, s);
    }
}
impl AlpakaKernel for TriadK {
    fn operator(&self, acc: &mut KernelBuilder, i: Reg, p: &[Reg]) {
        let vb = acc.ld_elem(Space::Global, Type::F64, p[1], i);
        let vc = acc.ld_elem(Space::Global, Type::F64, p[2], i);
        let sc = acc.bin(BinOp::Mul, vc, Value::F64(SCALAR));
        let s = acc.bin(BinOp::Add, vb, sc);
        acc.st_elem(Space::Global, p[0], i, s);
    }
}
impl AlpakaKernel for DotK {
    fn operator(&self, acc: &mut KernelBuilder, i: Reg, p: &[Reg]) {
        let va = acc.ld_elem(Space::Global, Type::F64, p[0], i);
        let vb = acc.ld_elem(Space::Global, Type::F64, p[1], i);
        let prod = acc.bin(BinOp::Mul, va, vb);
        let _ = acc.atomic(AtomicOp::Add, Space::Global, p[3], prod);
    }
}

impl StreamBackend for AlpakaStream {
    fn model_name(&self) -> &'static str {
        "ALPAKA"
    }

    fn run(&self, vendor: Vendor, n: usize, iters: usize) -> Result<RunResult, StreamError> {
        let device = Device::new(mcmm_toolchain::vendor_device_spec(vendor));
        let dev = device.clone();
        let acc = Accelerator::default_for_device(device).map_err(|e| {
            StreamError::Unsupported { model: "ALPAKA", vendor, detail: e.to_string() }
        })?;
        let fail = |e: mcmm_model_alpaka::AlpakaError| StreamError::Failed(e.to_string());

        let a = acc.alloc_buf(&vec![START_A; n]).map_err(fail)?;
        let b = acc.alloc_buf(&vec![START_B; n]).map_err(fail)?;
        let c = acc.alloc_buf(&vec![START_C; n]).map_err(fail)?;
        let sum = acc.alloc_buf(&[0.0]).map_err(fail)?;
        let bufs = [a, b, c, sum];
        let work = WorkDiv::for_elements(n, 256);

        let mut sw = Stopwatch::new(&dev);
        let mut gold = Gold::initial();
        let mut dot = 0.0;
        for _ in 0..iters {
            sw.time(StreamKernel::Copy, || acc.exec(work, n, &CopyK, &bufs)).map_err(fail)?;
            sw.time(StreamKernel::Mul, || acc.exec(work, n, &MulK, &bufs)).map_err(fail)?;
            sw.time(StreamKernel::Add, || acc.exec(work, n, &AddK, &bufs)).map_err(fail)?;
            sw.time(StreamKernel::Triad, || acc.exec(work, n, &TriadK, &bufs)).map_err(fail)?;
            gold.step();
            // Reset the reduction cell, then dot.
            dev.memory()
                .store(sum.0, Value::F64(0.0))
                .map_err(|e| StreamError::Failed(e.to_string()))?;
            sw.time(StreamKernel::Dot, || acc.exec(work, n, &DotK, &bufs)).map_err(fail)?;
            dot = acc.memcpy_to_host(sum, 1).map_err(fail)?[0];
        }

        let ha = acc.memcpy_to_host(a, n).map_err(fail)?;
        let hb = acc.memcpy_to_host(b, n).map_err(fail)?;
        let hc = acc.memcpy_to_host(c, n).map_err(fail)?;
        let dot_ok = ((dot - gold.expected_dot(n)) / gold.expected_dot(n)).abs() < 1e-8;
        Ok(RunResult {
            model: "ALPAKA",
            toolchain: format!("{:?}", acc.tag()),
            vendor,
            n,
            kernels: sw.results(n),
            dot,
            verified: crate::verify(&ha, &hb, &hc, gold) && dot_ok,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_on_all_three_vendors() {
        for v in Vendor::ALL {
            let r = AlpakaStream.run(v, 2048, 2).unwrap();
            assert!(r.verified, "{v}");
        }
    }
}
