//! The blanket BabelStream adapter over the shared execution spine.
//!
//! Until the `mcmm-frontend` refactor, this directory held one
//! hand-written adapter per programming model (~1.3k lines re-stating
//! the same five kernels and the same alloc/launch/verify loop nine
//! times). The paper's point — every model is a vendor-flavored surface
//! over the same launch-and-memcpy reality — is now structural: each
//! `model-*` crate exports a [`Frontend`], and a single
//! [`FrontendAdapter`] runs BabelStream through whatever session that
//! frontend opens. Vendor-refusal semantics stay with the frontends
//! (the session open refuses exactly where the matrix refuses), so the
//! 27-cell sweep pattern is unchanged.

use crate::{
    Gold, KernelResult, RunResult, StreamBackend, StreamError, StreamKernel, SCALAR, START_A,
    START_B, START_C,
};
use mcmm_core::taxonomy::Vendor;
use mcmm_frontend::{Frontend, FrontendRegistry};
use mcmm_gpu_sim::device::{Device, KernelArg};
use mcmm_gpu_sim::ir::{AtomicOp, BinOp, CmpOp, KernelBuilder, KernelIr, Space, Type, Value};
use mcmm_gpu_sim::timing::ModeledTime;
use std::collections::HashMap;

/// Build the five kernels with the uniform signature
/// `(a: ptr, b: ptr, c: ptr, sum: ptr, n: i32)`. Public so the analyzer's
/// clean-corpus tests and the `analyze` report binary can audit the exact
/// kernels the benchmark launches.
pub fn stream_kernels() -> [KernelIr; 5] {
    let build = |name: &str,
                 f: &dyn Fn(
        &mut KernelBuilder,
        mcmm_gpu_sim::ir::Reg,
        [mcmm_gpu_sim::ir::Reg; 4],
    )| {
        let mut k = KernelBuilder::new(name);
        let a = k.param(Type::I64);
        let b = k.param(Type::I64);
        let c = k.param(Type::I64);
        let sum = k.param(Type::I64);
        let n = k.param(Type::I32);
        let i = k.global_thread_id_x();
        let ok = k.cmp(CmpOp::Lt, i, n);
        let mut body = Some(f);
        k.if_(ok, |k| {
            if let Some(f) = body.take() {
                f(k, i, [a, b, c, sum]);
            }
        });
        k.finish()
    };
    [
        build("stream_copy", &|k, i, [a, _b, c, _s]| {
            let v = k.ld_elem(Space::Global, Type::F64, a, i);
            k.st_elem(Space::Global, c, i, v);
        }),
        build("stream_mul", &|k, i, [_a, b, c, _s]| {
            let v = k.ld_elem(Space::Global, Type::F64, c, i);
            let w = k.bin(BinOp::Mul, v, Value::F64(SCALAR));
            k.st_elem(Space::Global, b, i, w);
        }),
        build("stream_add", &|k, i, [a, b, c, _s]| {
            let va = k.ld_elem(Space::Global, Type::F64, a, i);
            let vb = k.ld_elem(Space::Global, Type::F64, b, i);
            let s = k.bin(BinOp::Add, va, vb);
            k.st_elem(Space::Global, c, i, s);
        }),
        build("stream_triad", &|k, i, [a, b, c, _s]| {
            let vb = k.ld_elem(Space::Global, Type::F64, b, i);
            let vc = k.ld_elem(Space::Global, Type::F64, c, i);
            let sc = k.bin(BinOp::Mul, vc, Value::F64(SCALAR));
            let s = k.bin(BinOp::Add, vb, sc);
            k.st_elem(Space::Global, a, i, s);
        }),
        build("stream_dot", &|k, i, [a, b, _c, sum]| {
            let va = k.ld_elem(Space::Global, Type::F64, a, i);
            let vb = k.ld_elem(Space::Global, Type::F64, b, i);
            let p = k.bin(BinOp::Mul, va, vb);
            let _ = k.atomic(AtomicOp::Add, Space::Global, sum, p);
        }),
    ]
}

/// The blanket adapter: BabelStream through any [`Frontend`]'s session.
pub struct FrontendAdapter {
    frontend: Box<dyn Frontend>,
}

impl FrontendAdapter {
    /// Wrap a concrete frontend.
    pub fn new(frontend: impl Frontend + 'static) -> Self {
        Self { frontend: Box::new(frontend) }
    }

    /// Wrap an already-boxed frontend (registry entries).
    pub fn boxed(frontend: Box<dyn Frontend>) -> Self {
        Self { frontend }
    }
}

impl StreamBackend for FrontendAdapter {
    fn model_name(&self) -> &'static str {
        self.frontend.name()
    }

    fn run(&self, vendor: Vendor, n: usize, iters: usize) -> Result<RunResult, StreamError> {
        let model = self.frontend.name();
        // The frontend applies its own refusal semantics; a refusal is a
        // matrix hole, anything else is a real failure.
        let session = self.frontend.open(vendor).map_err(|e| {
            if e.is_refusal() {
                StreamError::Unsupported { model, vendor, detail: e.to_string() }
            } else {
                StreamError::Failed(e.to_string())
            }
        })?;
        let fail = |e: mcmm_frontend::FrontendError| StreamError::Failed(e.to_string());

        let modules = stream_kernels()
            .iter()
            .map(|k| session.compile(k))
            .collect::<Result<Vec<_>, _>>()
            .map_err(fail)?;
        let toolchain = session.toolchain().to_owned();

        let da = session.upload(&vec![START_A; n]).map_err(fail)?;
        let db = session.upload(&vec![START_B; n]).map_err(fail)?;
        let dc = session.upload(&vec![START_C; n]).map_err(fail)?;
        let dsum = session.upload(&[0.0f64]).map_err(fail)?;
        let args = [
            KernelArg::Ptr(da.ptr()),
            KernelArg::Ptr(db.ptr()),
            KernelArg::Ptr(dc.ptr()),
            KernelArg::Ptr(dsum.ptr()),
            KernelArg::I32(n as i32),
        ];
        let cfg = session.launch_config(n as u64, 256);

        let mut sw = Stopwatch::new(session.device());
        let mut gold = Gold::initial();
        let mut dot = 0.0;
        for _ in 0..iters {
            for (idx, kernel) in
                [StreamKernel::Copy, StreamKernel::Mul, StreamKernel::Add, StreamKernel::Triad]
                    .iter()
                    .enumerate()
            {
                sw.time(*kernel, || session.launch(&modules[idx], cfg, &args)).map_err(fail)?;
            }
            gold.step();
            // Dot: zero the cell, then reduce.
            session
                .device()
                .memory()
                .store(dsum.ptr().0, Value::F64(0.0))
                .map_err(|e| StreamError::Failed(e.to_string()))?;
            sw.time(StreamKernel::Dot, || session.launch(&modules[4], cfg, &args)).map_err(fail)?;
            dot = session.download(&dsum).map_err(fail)?[0];
        }

        let a = session.download(&da).map_err(fail)?;
        let b = session.download(&db).map_err(fail)?;
        let c = session.download(&dc).map_err(fail)?;
        let dot_ok = ((dot - gold.expected_dot(n)) / gold.expected_dot(n)).abs() < 1e-8;
        Ok(RunResult {
            model,
            toolchain,
            vendor,
            n,
            kernels: sw.results(n),
            dot,
            verified: crate::verify(&a, &b, &c, gold) && dot_ok,
            programs: session.device().program_cache_stats(),
            opt: session.device().opt_stats(),
            mem: (session.device().mem_launches() > 0).then(|| session.device().mem_stats()),
        })
    }
}

/// The nine model frontends in Figure 1 column order (Python last; the
/// three native models first).
pub fn frontend_registry() -> FrontendRegistry {
    FrontendRegistry::new()
        .with(Box::new(mcmm_model_cuda::CudaFrontend))
        .with(Box::new(mcmm_model_hip::HipFrontend))
        .with(Box::new(mcmm_model_sycl::SyclFrontend))
        .with(Box::new(mcmm_model_openacc::OpenAccFrontend))
        .with(Box::new(mcmm_model_openmp::OpenMpFrontend))
        .with(Box::new(mcmm_model_stdpar::StdparFrontend))
        .with(Box::new(mcmm_model_kokkos::KokkosFrontend))
        .with(Box::new(mcmm_model_alpaka::AlpakaFrontend))
        .with(Box::new(mcmm_model_python::PythonFrontend))
}

/// All adapters, derived from the frontend registry instead of a
/// hand-maintained list.
pub fn all_backends() -> Vec<Box<dyn StreamBackend>> {
    frontend_registry()
        .into_frontends()
        .into_iter()
        .map(|f| Box::new(FrontendAdapter::boxed(f)) as Box<dyn StreamBackend>)
        .collect()
}

/// Per-kernel minimum-time tracker based on the device's modeled clock —
/// frontends without a report-returning launch are timed by clock deltas.
pub(crate) struct Stopwatch<'d> {
    device: &'d Device,
    best: HashMap<StreamKernel, f64>,
}

impl<'d> Stopwatch<'d> {
    pub fn new(device: &'d Device) -> Self {
        Self { device, best: HashMap::new() }
    }

    /// Time one kernel execution (modeled time, not wall time).
    pub fn time<T, E>(
        &mut self,
        kernel: StreamKernel,
        f: impl FnOnce() -> Result<T, E>,
    ) -> Result<T, E> {
        let t0 = self.device.modeled_clock().seconds();
        let out = f()?;
        let dt = self.device.modeled_clock().seconds() - t0;
        let entry = self.best.entry(kernel).or_insert(f64::INFINITY);
        if dt < *entry {
            *entry = dt;
        }
        Ok(out)
    }

    /// Finish: per-kernel results with BabelStream's assumed byte counts.
    pub fn results(&self, n: usize) -> Vec<KernelResult> {
        StreamKernel::ALL
            .iter()
            .filter_map(|&k| {
                self.best.get(&k).map(|&secs| KernelResult {
                    kernel: k,
                    best_time: ModeledTime::from_seconds(secs),
                    bytes: k.bytes_per_element() * n as u64,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmm_gpu_sim::DeviceSpec;

    #[test]
    fn nine_backends_registered() {
        let names: Vec<_> = all_backends().iter().map(|b| b.model_name()).collect();
        assert_eq!(
            names,
            vec![
                "CUDA",
                "HIP",
                "SYCL",
                "OpenACC",
                "OpenMP",
                "Standard",
                "Kokkos",
                "ALPAKA",
                "etc (Python)"
            ]
        );
    }

    #[test]
    fn native_runs_verify_with_pinned_toolchains() {
        for (model, vendor, toolchain) in [
            ("CUDA", Vendor::Nvidia, "CUDA Toolkit (nvcc)"),
            ("HIP", Vendor::Amd, "hipcc (ROCm/Clang AMDGPU)"),
            ("SYCL", Vendor::Intel, "Intel oneAPI DPC++ (icpx -fsycl)"),
        ] {
            let backends = all_backends();
            let backend = backends.iter().find(|b| b.model_name() == model).unwrap();
            let r = backend.run(vendor, 4096, 2).unwrap();
            assert!(r.verified, "{model} on {vendor} failed verification");
            assert_eq!(r.kernels.len(), 5);
            assert!(r.triad_gbps() > 0.0);
            assert_eq!(r.toolchain, toolchain);
        }
    }

    #[test]
    fn matrix_holes_refuse_with_unsupported() {
        // The CUDA *runtime* refuses non-NVIDIA devices; translators are
        // a different program (see mcmm-translate). Same for HIP and
        // OpenACC on Intel.
        let backends = all_backends();
        for (model, vendor) in [
            ("CUDA", Vendor::Amd),
            ("CUDA", Vendor::Intel),
            ("HIP", Vendor::Intel),
            ("OpenACC", Vendor::Intel),
        ] {
            let backend = backends.iter().find(|b| b.model_name() == model).unwrap();
            match backend.run(vendor, 64, 1) {
                Err(StreamError::Unsupported { model: m, vendor: v, detail }) => {
                    assert_eq!(m, model);
                    assert_eq!(v, vendor);
                    assert!(
                        detail.contains(vendor.name()),
                        "refusal must name the vendor: {detail}"
                    );
                }
                other => panic!("{model} on {vendor}: expected Unsupported, got {other:?}"),
            }
        }
    }

    #[test]
    fn stopwatch_tracks_minimum() {
        let dev = Device::new(DeviceSpec::nvidia_a100());
        let mut sw = Stopwatch::new(&dev);
        // Two timed ops of different modeled cost; the smaller wins.
        sw.time::<_, std::convert::Infallible>(StreamKernel::Copy, || {
            let p = dev.alloc(1 << 20).unwrap();
            dev.memcpy_h2d(p, &vec![0u8; 1 << 20]).unwrap();
            Ok(())
        })
        .unwrap();
        sw.time::<_, std::convert::Infallible>(StreamKernel::Copy, || {
            let p = dev.alloc(1 << 10).unwrap();
            dev.memcpy_h2d(p, &vec![0u8; 1 << 10]).unwrap();
            Ok(())
        })
        .unwrap();
        let r = sw.results(1024);
        assert_eq!(r.len(), 1);
        // The best time must correspond to the small copy.
        assert!(r[0].best_time.seconds() < 1e-4);
    }
}
