//! One BabelStream adapter per programming-model frontend.
//!
//! Every adapter goes through its frontend's **public API** — the point is
//! to exercise the same surfaces a scientific programmer would port
//! BabelStream to, including each model's quirks (SYCL USM, OpenMP target
//! data regions, OpenACC data regions, NumPy-style temporaries in Python).

pub mod alpaka;
pub mod cuda;
pub mod hip;
pub mod kokkos;
pub mod openacc;
pub mod openmp;
pub mod python;
pub mod stdpar;
pub mod sycl;

use crate::{KernelResult, StreamBackend, StreamKernel};
use mcmm_gpu_sim::device::Device;
use mcmm_gpu_sim::timing::ModeledTime;
use std::collections::HashMap;

/// All adapters, in Figure 1 column order (Python last; the three native
/// models first).
pub fn all_backends() -> Vec<Box<dyn StreamBackend>> {
    vec![
        Box::new(cuda::CudaStream),
        Box::new(hip::HipStream),
        Box::new(sycl::SyclStream),
        Box::new(openacc::OpenAccStream),
        Box::new(openmp::OpenMpStream),
        Box::new(stdpar::StdparStream),
        Box::new(kokkos::KokkosStream),
        Box::new(alpaka::AlpakaStream),
        Box::new(python::PythonStream),
    ]
}

/// Per-kernel minimum-time tracker based on the device's modeled clock —
/// frontends without a report-returning launch are timed by clock deltas.
pub(crate) struct Stopwatch<'d> {
    device: &'d Device,
    best: HashMap<StreamKernel, f64>,
}

impl<'d> Stopwatch<'d> {
    pub fn new(device: &'d Device) -> Self {
        Self { device, best: HashMap::new() }
    }

    /// Time one kernel execution (modeled time, not wall time).
    pub fn time<T, E>(
        &mut self,
        kernel: StreamKernel,
        f: impl FnOnce() -> Result<T, E>,
    ) -> Result<T, E> {
        let t0 = self.device.modeled_clock().seconds();
        let out = f()?;
        let dt = self.device.modeled_clock().seconds() - t0;
        let entry = self.best.entry(kernel).or_insert(f64::INFINITY);
        if dt < *entry {
            *entry = dt;
        }
        Ok(out)
    }

    /// Finish: per-kernel results with BabelStream's assumed byte counts.
    pub fn results(&self, n: usize) -> Vec<KernelResult> {
        StreamKernel::ALL
            .iter()
            .filter_map(|&k| {
                self.best.get(&k).map(|&secs| KernelResult {
                    kernel: k,
                    best_time: ModeledTime::from_seconds(secs),
                    bytes: k.bytes_per_element() * n as u64,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmm_gpu_sim::DeviceSpec;

    #[test]
    fn nine_backends_registered() {
        let names: Vec<_> = all_backends().iter().map(|b| b.model_name()).collect();
        assert_eq!(
            names,
            vec![
                "CUDA",
                "HIP",
                "SYCL",
                "OpenACC",
                "OpenMP",
                "Standard",
                "Kokkos",
                "ALPAKA",
                "etc (Python)"
            ]
        );
    }

    #[test]
    fn stopwatch_tracks_minimum() {
        let dev = Device::new(DeviceSpec::nvidia_a100());
        let mut sw = Stopwatch::new(&dev);
        // Two timed ops of different modeled cost; the smaller wins.
        sw.time::<_, std::convert::Infallible>(StreamKernel::Copy, || {
            let p = dev.alloc(1 << 20).unwrap();
            dev.memcpy_h2d(p, &vec![0u8; 1 << 20]).unwrap();
            Ok(())
        })
        .unwrap();
        sw.time::<_, std::convert::Infallible>(StreamKernel::Copy, || {
            let p = dev.alloc(1 << 10).unwrap();
            dev.memcpy_h2d(p, &vec![0u8; 1 << 10]).unwrap();
            Ok(())
        })
        .unwrap();
        let r = sw.results(1024);
        assert_eq!(r.len(), 1);
        // The best time must correspond to the small copy.
        assert!(r[0].best_time.seconds() < 1e-4);
    }
}
