//! BabelStream in SYCL — USM pointers and `parallel_for`, as the
//! reference implementation's sycl2020 variant does.

use super::Stopwatch;
use crate::{
    Gold, RunResult, StreamBackend, StreamError, StreamKernel, SCALAR, START_A, START_B, START_C,
};
use mcmm_core::taxonomy::Vendor;
use mcmm_gpu_sim::device::Device;
use mcmm_gpu_sim::ir::{AtomicOp, Space, Type};
use mcmm_model_sycl::{BinOp, Queue, Value};

/// The SYCL BabelStream adapter.
pub struct SyclStream;

impl StreamBackend for SyclStream {
    fn model_name(&self) -> &'static str {
        "SYCL"
    }

    fn run(&self, vendor: Vendor, n: usize, iters: usize) -> Result<RunResult, StreamError> {
        let device = Device::new(mcmm_toolchain::vendor_device_spec(vendor));
        let dev = device.clone();
        let queue = Queue::new(device).map_err(|e| StreamError::Unsupported {
            model: "SYCL",
            vendor,
            detail: e.to_string(),
        })?;
        let fail = |e: mcmm_model_sycl::SyclError| StreamError::Failed(e.to_string());

        let a = queue.malloc_device_f64(n).map_err(fail)?;
        let b = queue.malloc_device_f64(n).map_err(fail)?;
        let c = queue.malloc_device_f64(n).map_err(fail)?;
        let sum = queue.malloc_device_f64(1).map_err(fail)?;
        queue.memcpy_to_device_f64(a, &vec![START_A; n]).map_err(fail)?;
        queue.memcpy_to_device_f64(b, &vec![START_B; n]).map_err(fail)?;
        queue.memcpy_to_device_f64(c, &vec![START_C; n]).map_err(fail)?;

        let mut sw = Stopwatch::new(&dev);
        let mut gold = Gold::initial();
        let mut dot = 0.0;
        for _ in 0..iters {
            sw.time(StreamKernel::Copy, || {
                queue.parallel_for_usm(n, &[a, c], |k, i, p| {
                    let v = k.ld_elem(Space::Global, Type::F64, p[0], i);
                    k.st_elem(Space::Global, p[1], i, v);
                })
            })
            .map_err(fail)?;
            sw.time(StreamKernel::Mul, || {
                queue.parallel_for_usm(n, &[c, b], |k, i, p| {
                    let v = k.ld_elem(Space::Global, Type::F64, p[0], i);
                    let w = k.bin(BinOp::Mul, v, Value::F64(SCALAR));
                    k.st_elem(Space::Global, p[1], i, w);
                })
            })
            .map_err(fail)?;
            sw.time(StreamKernel::Add, || {
                queue.parallel_for_usm(n, &[a, b, c], |k, i, p| {
                    let va = k.ld_elem(Space::Global, Type::F64, p[0], i);
                    let vb = k.ld_elem(Space::Global, Type::F64, p[1], i);
                    let s = k.bin(BinOp::Add, va, vb);
                    k.st_elem(Space::Global, p[2], i, s);
                })
            })
            .map_err(fail)?;
            sw.time(StreamKernel::Triad, || {
                queue.parallel_for_usm(n, &[a, b, c], |k, i, p| {
                    let vb = k.ld_elem(Space::Global, Type::F64, p[1], i);
                    let vc = k.ld_elem(Space::Global, Type::F64, p[2], i);
                    let sc = k.bin(BinOp::Mul, vc, Value::F64(SCALAR));
                    let s = k.bin(BinOp::Add, vb, sc);
                    k.st_elem(Space::Global, p[0], i, s);
                })
            })
            .map_err(fail)?;
            gold.step();
            queue.memcpy_to_device_f64(sum, &[0.0]).map_err(fail)?;
            sw.time(StreamKernel::Dot, || {
                queue.parallel_for_usm(n, &[a, b, sum], |k, i, p| {
                    let va = k.ld_elem(Space::Global, Type::F64, p[0], i);
                    let vb = k.ld_elem(Space::Global, Type::F64, p[1], i);
                    let prod = k.bin(BinOp::Mul, va, vb);
                    let _ = k.atomic(AtomicOp::Add, Space::Global, p[2], prod);
                })
            })
            .map_err(fail)?;
            dot = queue.memcpy_from_device_f64(sum, 1).map_err(fail)?[0];
        }

        let ha = queue.memcpy_from_device_f64(a, n).map_err(fail)?;
        let hb = queue.memcpy_from_device_f64(b, n).map_err(fail)?;
        let hc = queue.memcpy_from_device_f64(c, n).map_err(fail)?;
        let dot_ok = ((dot - gold.expected_dot(n)) / gold.expected_dot(n)).abs() < 1e-8;
        Ok(RunResult {
            model: "SYCL",
            toolchain: queue.toolchain().to_owned(),
            vendor,
            n,
            kernels: sw.results(n),
            dot,
            verified: crate::verify(&ha, &hb, &hc, gold) && dot_ok,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_on_all_three_vendors() {
        // §6: SYCL "supports all three GPU platform[s]".
        for v in Vendor::ALL {
            let r = SyclStream.run(v, 2048, 2).unwrap();
            assert!(r.verified, "{v}");
            assert_eq!(r.kernels.len(), 5);
        }
    }

    #[test]
    fn native_on_intel() {
        let r = SyclStream.run(Vendor::Intel, 1024, 1).unwrap();
        assert_eq!(r.toolchain, "Intel oneAPI DPC++ (icpx -fsycl)");
    }
}
