//! BabelStream in CUDA (the reference implementation's CUDA variant).

use super::Stopwatch;
use crate::{
    Gold, RunResult, StreamBackend, StreamError, StreamKernel, SCALAR, START_A, START_B, START_C,
};
use mcmm_core::taxonomy::Vendor;
use mcmm_gpu_sim::device::{Device, KernelArg};
use mcmm_gpu_sim::ir::{AtomicOp, BinOp, CmpOp, KernelBuilder, KernelIr, Space, Type, Value};
use mcmm_model_cuda::{CudaContext, CudaKernel};

/// The CUDA BabelStream adapter.
pub struct CudaStream;

/// Build the five kernels with the uniform signature
/// `(a: ptr, b: ptr, c: ptr, sum: ptr, n: i32)`. Public so the analyzer's
/// clean-corpus tests and the `analyze` report binary can audit the exact
/// kernels the benchmark launches.
pub fn stream_kernels() -> [KernelIr; 5] {
    let build = |name: &str,
                 f: &dyn Fn(
        &mut KernelBuilder,
        mcmm_gpu_sim::ir::Reg,
        [mcmm_gpu_sim::ir::Reg; 4],
    )| {
        let mut k = KernelBuilder::new(name);
        let a = k.param(Type::I64);
        let b = k.param(Type::I64);
        let c = k.param(Type::I64);
        let sum = k.param(Type::I64);
        let n = k.param(Type::I32);
        let i = k.global_thread_id_x();
        let ok = k.cmp(CmpOp::Lt, i, n);
        let mut body = Some(f);
        k.if_(ok, |k| {
            if let Some(f) = body.take() {
                f(k, i, [a, b, c, sum]);
            }
        });
        k.finish()
    };
    [
        build("stream_copy", &|k, i, [a, _b, c, _s]| {
            let v = k.ld_elem(Space::Global, Type::F64, a, i);
            k.st_elem(Space::Global, c, i, v);
        }),
        build("stream_mul", &|k, i, [_a, b, c, _s]| {
            let v = k.ld_elem(Space::Global, Type::F64, c, i);
            let w = k.bin(BinOp::Mul, v, Value::F64(SCALAR));
            k.st_elem(Space::Global, b, i, w);
        }),
        build("stream_add", &|k, i, [a, b, c, _s]| {
            let va = k.ld_elem(Space::Global, Type::F64, a, i);
            let vb = k.ld_elem(Space::Global, Type::F64, b, i);
            let s = k.bin(BinOp::Add, va, vb);
            k.st_elem(Space::Global, c, i, s);
        }),
        build("stream_triad", &|k, i, [a, b, c, _s]| {
            let vb = k.ld_elem(Space::Global, Type::F64, b, i);
            let vc = k.ld_elem(Space::Global, Type::F64, c, i);
            let sc = k.bin(BinOp::Mul, vc, Value::F64(SCALAR));
            let s = k.bin(BinOp::Add, vb, sc);
            k.st_elem(Space::Global, a, i, s);
        }),
        build("stream_dot", &|k, i, [a, b, _c, sum]| {
            let va = k.ld_elem(Space::Global, Type::F64, a, i);
            let vb = k.ld_elem(Space::Global, Type::F64, b, i);
            let p = k.bin(BinOp::Mul, va, vb);
            let _ = k.atomic(AtomicOp::Add, Space::Global, sum, p);
        }),
    ]
}

impl StreamBackend for CudaStream {
    fn model_name(&self) -> &'static str {
        "CUDA"
    }

    fn run(&self, vendor: Vendor, n: usize, iters: usize) -> Result<RunResult, StreamError> {
        let device = Device::new(mcmm_toolchain::vendor_device_spec(vendor));
        let ctx = CudaContext::new(device).map_err(|e| StreamError::Unsupported {
            model: "CUDA",
            vendor,
            detail: e.to_string(),
        })?;
        let fail = |e: mcmm_model_cuda::CudaError| StreamError::Failed(e.to_string());

        let kernels: Vec<CudaKernel> = stream_kernels()
            .iter()
            .map(|k| ctx.compile(k))
            .collect::<Result<_, _>>()
            .map_err(fail)?;
        let toolchain = kernels[0].toolchain.to_owned();

        let da = ctx.upload_f64(&vec![START_A; n]).map_err(fail)?;
        let db = ctx.upload_f64(&vec![START_B; n]).map_err(fail)?;
        let dc = ctx.upload_f64(&vec![START_C; n]).map_err(fail)?;
        let dsum = ctx.upload_f64(&[0.0]).map_err(fail)?;
        let args = [
            KernelArg::Ptr(da),
            KernelArg::Ptr(db),
            KernelArg::Ptr(dc),
            KernelArg::Ptr(dsum),
            KernelArg::I32(n as i32),
        ];
        let grid = (n as u32).div_ceil(256);

        let dev = ctx.device().clone();
        let mut sw = Stopwatch::new(&dev);
        let mut gold = Gold::initial();
        let mut dot = 0.0;
        for _ in 0..iters {
            for (idx, kernel) in
                [StreamKernel::Copy, StreamKernel::Mul, StreamKernel::Add, StreamKernel::Triad]
                    .iter()
                    .enumerate()
            {
                sw.time(*kernel, || ctx.launch(&kernels[idx], grid, 256, &args)).map_err(fail)?;
            }
            gold.step();
            // Dot: zero the cell, then reduce.
            ctx.device()
                .memory()
                .store(dsum.0, Value::F64(0.0))
                .map_err(|e| StreamError::Failed(e.to_string()))?;
            sw.time(StreamKernel::Dot, || ctx.launch(&kernels[4], grid, 256, &args))
                .map_err(fail)?;
            dot = ctx.download_f64(dsum, 1).map_err(fail)?[0];
        }

        let a = ctx.download_f64(da, n).map_err(fail)?;
        let b = ctx.download_f64(db, n).map_err(fail)?;
        let c = ctx.download_f64(dc, n).map_err(fail)?;
        let dot_ok = ((dot - gold.expected_dot(n)) / gold.expected_dot(n)).abs() < 1e-8;
        Ok(RunResult {
            model: "CUDA",
            toolchain,
            vendor,
            n,
            kernels: sw.results(n),
            dot,
            verified: crate::verify(&a, &b, &c, gold) && dot_ok,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_verified_on_nvidia() {
        let r = CudaStream.run(Vendor::Nvidia, 4096, 2).unwrap();
        assert!(r.verified, "verification failed");
        assert_eq!(r.kernels.len(), 5);
        assert!(r.triad_gbps() > 0.0);
        assert_eq!(r.toolchain, "CUDA Toolkit (nvcc)");
    }

    #[test]
    fn unsupported_on_amd_and_intel() {
        // The CUDA *runtime* refuses non-NVIDIA devices; translators are a
        // different program (see mcmm-translate).
        for v in [Vendor::Amd, Vendor::Intel] {
            assert!(matches!(
                CudaStream.run(v, 64, 1),
                Err(StreamError::Unsupported { model: "CUDA", .. })
            ));
        }
    }
}
