//! BabelStream in Python — NumPy-style array expressions with their
//! temporaries, as a CuPy/dpnp user would write them. The extra temporary
//! traffic is the point: the Python route reports lower sustained
//! bandwidth than the compiled models on the same device, which is the
//! realistic shape for naive array code.

use super::Stopwatch;
use crate::{
    Gold, RunResult, StreamBackend, StreamError, StreamKernel, SCALAR, START_A, START_B, START_C,
};
use mcmm_core::taxonomy::Vendor;
use mcmm_gpu_sim::device::Device;
use mcmm_gpu_sim::ir::BinOp;
#[cfg(test)]
use mcmm_model_python::DType;
use mcmm_model_python::PyRuntime;

/// The Python BabelStream adapter.
pub struct PythonStream;

impl StreamBackend for PythonStream {
    fn model_name(&self) -> &'static str {
        "etc (Python)"
    }

    fn run(&self, vendor: Vendor, n: usize, iters: usize) -> Result<RunResult, StreamError> {
        let device = Device::new(mcmm_toolchain::vendor_device_spec(vendor));
        let dev = device.clone();
        let py = PyRuntime::new(device).map_err(|e| StreamError::Unsupported {
            model: "etc (Python)",
            vendor,
            detail: e.to_string(),
        })?;
        let fail = |e: mcmm_model_python::PyError| StreamError::Failed(e.to_string());

        let mut a = py.asarray_f64(&vec![START_A; n]).map_err(fail)?;
        let mut b = py.asarray_f64(&vec![START_B; n]).map_err(fail)?;
        let mut c = py.asarray_f64(&vec![START_C; n]).map_err(fail)?;

        let mut sw = Stopwatch::new(&dev);
        let mut gold = Gold::initial();
        let mut dot = 0.0;
        for _ in 0..iters {
            // c = a.copy()
            c = sw.time(StreamKernel::Copy, || py.copy(&a)).map_err(fail)?;
            // b = scalar * c  (one temporary-free broadcast in real cupy)
            b = sw.time(StreamKernel::Mul, || py.scalar_mul(SCALAR, &c)).map_err(fail)?;
            // c = a + b
            c = sw.time(StreamKernel::Add, || py.elementwise(BinOp::Add, &a, &b)).map_err(fail)?;
            // a = b + scalar * c — note the temporary, like real numpy code
            a = sw
                .time(StreamKernel::Triad, || {
                    let tmp = py.scalar_mul(SCALAR, &c)?;
                    py.elementwise(BinOp::Add, &b, &tmp)
                })
                .map_err(fail)?;
            gold.step();
            // dot = (a * b).sum() — two passes, again like numpy
            dot = sw
                .time(StreamKernel::Dot, || {
                    let prod = py.elementwise(BinOp::Mul, &a, &b)?;
                    py.sum(&prod)
                })
                .map_err(fail)?;
        }

        let ha = py.asnumpy_f64(&a).map_err(fail)?;
        let hb = py.asnumpy_f64(&b).map_err(fail)?;
        let hc = py.asnumpy_f64(&c).map_err(fail)?;
        let dot_ok = ((dot - gold.expected_dot(n)) / gold.expected_dot(n)).abs() < 1e-8;
        Ok(RunResult {
            model: "etc (Python)",
            toolchain: py.backend_package.clone(),
            vendor,
            n,
            kernels: sw.results(n),
            dot,
            verified: crate::verify(&ha, &hb, &hc, gold) && dot_ok,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_on_all_three_vendors() {
        // §6: "Python … is also well-supported by all three platforms."
        for v in Vendor::ALL {
            let r = PythonStream.run(v, 1024, 2).unwrap();
            assert!(r.verified, "{v}");
        }
    }

    #[test]
    fn temporaries_cost_bandwidth_vs_compiled_models() {
        // The Triad in Python runs two kernels (temporary + add); assumed
        // bytes stay the BabelStream count, so reported GB/s drops below
        // the compiled CUDA variant on the same device.
        let py = PythonStream.run(Vendor::Nvidia, 8192, 1).unwrap();
        let cuda = super::super::cuda::CudaStream.run(Vendor::Nvidia, 8192, 1).unwrap();
        assert!(
            py.triad_gbps() < cuda.triad_gbps(),
            "python {} !< cuda {}",
            py.triad_gbps(),
            cuda.triad_gbps()
        );
    }

    #[test]
    fn dtype_is_float64_throughout() {
        let dev = Device::new(mcmm_toolchain::vendor_device_spec(Vendor::Intel));
        let py = PyRuntime::new(dev).unwrap();
        let a = py.asarray_f64(&[1.0]).unwrap();
        assert_eq!(a.dtype, DType::Float64);
    }
}
