//! BabelStream in Kokkos — Views plus `parallel_for`/`parallel_reduce`,
//! as the reference implementation's Kokkos variant.

use super::Stopwatch;
use crate::{
    Gold, RunResult, StreamBackend, StreamError, StreamKernel, SCALAR, START_A, START_B, START_C,
};
use mcmm_core::taxonomy::Vendor;
use mcmm_gpu_sim::device::Device;
use mcmm_gpu_sim::ir::{Space, Type};
use mcmm_model_kokkos::{BinOp, ExecSpace, Value};

/// The Kokkos BabelStream adapter.
pub struct KokkosStream;

impl StreamBackend for KokkosStream {
    fn model_name(&self) -> &'static str {
        "Kokkos"
    }

    fn run(&self, vendor: Vendor, n: usize, iters: usize) -> Result<RunResult, StreamError> {
        let device = Device::new(mcmm_toolchain::vendor_device_spec(vendor));
        let dev = device.clone();
        let space = ExecSpace::new(device).map_err(|e| StreamError::Unsupported {
            model: "Kokkos",
            vendor,
            detail: e.to_string(),
        })?;
        let fail = |e: mcmm_model_kokkos::KokkosError| StreamError::Failed(e.to_string());

        let a = space.view_from_host("a", &vec![START_A; n]).map_err(fail)?;
        let b = space.view_from_host("b", &vec![START_B; n]).map_err(fail)?;
        let c = space.view_from_host("c", &vec![START_C; n]).map_err(fail)?;

        let mut sw = Stopwatch::new(&dev);
        let mut gold = Gold::initial();
        let mut dot = 0.0;
        for _ in 0..iters {
            sw.time(StreamKernel::Copy, || {
                space.parallel_for(n, &[&a, &c], |k, i, p| {
                    let v = k.ld_elem(Space::Global, Type::F64, p[0], i);
                    k.st_elem(Space::Global, p[1], i, v);
                })
            })
            .map_err(fail)?;
            sw.time(StreamKernel::Mul, || {
                space.parallel_for(n, &[&c, &b], |k, i, p| {
                    let v = k.ld_elem(Space::Global, Type::F64, p[0], i);
                    let w = k.bin(BinOp::Mul, v, Value::F64(SCALAR));
                    k.st_elem(Space::Global, p[1], i, w);
                })
            })
            .map_err(fail)?;
            sw.time(StreamKernel::Add, || {
                space.parallel_for(n, &[&a, &b, &c], |k, i, p| {
                    let va = k.ld_elem(Space::Global, Type::F64, p[0], i);
                    let vb = k.ld_elem(Space::Global, Type::F64, p[1], i);
                    let s = k.bin(BinOp::Add, va, vb);
                    k.st_elem(Space::Global, p[2], i, s);
                })
            })
            .map_err(fail)?;
            sw.time(StreamKernel::Triad, || {
                space.parallel_for(n, &[&a, &b, &c], |k, i, p| {
                    let vb = k.ld_elem(Space::Global, Type::F64, p[1], i);
                    let vc = k.ld_elem(Space::Global, Type::F64, p[2], i);
                    let sc = k.bin(BinOp::Mul, vc, Value::F64(SCALAR));
                    let s = k.bin(BinOp::Add, vb, sc);
                    k.st_elem(Space::Global, p[0], i, s);
                })
            })
            .map_err(fail)?;
            gold.step();
            dot = sw
                .time(StreamKernel::Dot, || {
                    space.parallel_reduce_sum(n, &[&a, &b], |k, i, p| {
                        let va = k.ld_elem(Space::Global, Type::F64, p[0], i);
                        let vb = k.ld_elem(Space::Global, Type::F64, p[1], i);
                        k.bin(BinOp::Mul, va, vb)
                    })
                })
                .map_err(fail)?;
        }

        let ha = space.deep_copy_to_host(&a).map_err(fail)?;
        let hb = space.deep_copy_to_host(&b).map_err(fail)?;
        let hc = space.deep_copy_to_host(&c).map_err(fail)?;
        let dot_ok = ((dot - gold.expected_dot(n)) / gold.expected_dot(n)).abs() < 1e-8;
        Ok(RunResult {
            model: "Kokkos",
            toolchain: space.backend().to_owned(),
            vendor,
            n,
            kernels: sw.results(n),
            dot,
            verified: crate::verify(&ha, &hb, &hc, gold) && dot_ok,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_on_all_three_vendors() {
        for v in Vendor::ALL {
            let r = KokkosStream.run(v, 2048, 2).unwrap();
            assert!(r.verified, "{v}");
        }
    }

    #[test]
    fn intel_experimental_backend_trails_native_backends() {
        let nv = KokkosStream.run(Vendor::Nvidia, 4096, 1).unwrap();
        let intel = KokkosStream.run(Vendor::Intel, 4096, 1).unwrap();
        let nv_frac = nv.triad_gbps() / 2039.0;
        let intel_frac = intel.triad_gbps() / 1638.0;
        assert!(intel_frac < nv_frac, "intel {intel_frac} !< nv {nv_frac}");
    }
}
