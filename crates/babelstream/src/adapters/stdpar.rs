//! BabelStream in C++ standard parallelism — the `std::for_each_n` over
//! an index iota, as the reference implementation's STD variants do.

use super::Stopwatch;
use crate::{
    Gold, RunResult, StreamBackend, StreamError, StreamKernel, SCALAR, START_A, START_B, START_C,
};
use mcmm_core::taxonomy::Vendor;
use mcmm_gpu_sim::device::Device;
use mcmm_gpu_sim::ir::{Space, Type};
use mcmm_model_stdpar::{par_unseq, BinOp, DeviceVec, Value};

/// The C++ standard parallelism BabelStream adapter.
pub struct StdparStream;

impl StreamBackend for StdparStream {
    fn model_name(&self) -> &'static str {
        "Standard"
    }

    fn run(&self, vendor: Vendor, n: usize, iters: usize) -> Result<RunResult, StreamError> {
        let device = Device::new(mcmm_toolchain::vendor_device_spec(vendor));
        let dev = device.clone();
        let policy = par_unseq(device).map_err(|e| StreamError::Unsupported {
            model: "Standard",
            vendor,
            detail: e.to_string(),
        })?;
        let fail = |e: mcmm_model_stdpar::StdparError| StreamError::Failed(e.to_string());

        let a = DeviceVec::from_host(&policy, &vec![START_A; n]).map_err(fail)?;
        let b = DeviceVec::from_host(&policy, &vec![START_B; n]).map_err(fail)?;
        let c = DeviceVec::from_host(&policy, &vec![START_C; n]).map_err(fail)?;

        let mut sw = Stopwatch::new(&dev);
        let mut gold = Gold::initial();
        let mut dot = 0.0;
        for _ in 0..iters {
            sw.time(StreamKernel::Copy, || {
                policy.for_each_zip(n, &[&a, &c], |k, i, p| {
                    let v = k.ld_elem(Space::Global, Type::F64, p[0], i);
                    k.st_elem(Space::Global, p[1], i, v);
                })
            })
            .map_err(fail)?;
            sw.time(StreamKernel::Mul, || {
                policy.for_each_zip(n, &[&c, &b], |k, i, p| {
                    let v = k.ld_elem(Space::Global, Type::F64, p[0], i);
                    let w = k.bin(BinOp::Mul, v, Value::F64(SCALAR));
                    k.st_elem(Space::Global, p[1], i, w);
                })
            })
            .map_err(fail)?;
            sw.time(StreamKernel::Add, || {
                policy.for_each_zip(n, &[&a, &b, &c], |k, i, p| {
                    let va = k.ld_elem(Space::Global, Type::F64, p[0], i);
                    let vb = k.ld_elem(Space::Global, Type::F64, p[1], i);
                    let s = k.bin(BinOp::Add, va, vb);
                    k.st_elem(Space::Global, p[2], i, s);
                })
            })
            .map_err(fail)?;
            sw.time(StreamKernel::Triad, || {
                policy.for_each_zip(n, &[&a, &b, &c], |k, i, p| {
                    let vb = k.ld_elem(Space::Global, Type::F64, p[1], i);
                    let vc = k.ld_elem(Space::Global, Type::F64, p[2], i);
                    let sc = k.bin(BinOp::Mul, vc, Value::F64(SCALAR));
                    let s = k.bin(BinOp::Add, vb, sc);
                    k.st_elem(Space::Global, p[0], i, s);
                })
            })
            .map_err(fail)?;
            gold.step();
            // Dot via std::transform_reduce ≈ elementwise product + reduce.
            let prod = DeviceVec::zeroed(&policy, n).map_err(fail)?;
            dot = sw
                .time(StreamKernel::Dot, || -> Result<f64, mcmm_model_stdpar::StdparError> {
                    policy.for_each_zip(n, &[&a, &b, &prod], |k, i, p| {
                        let va = k.ld_elem(Space::Global, Type::F64, p[0], i);
                        let vb = k.ld_elem(Space::Global, Type::F64, p[1], i);
                        let m = k.bin(BinOp::Mul, va, vb);
                        k.st_elem(Space::Global, p[2], i, m);
                    })?;
                    policy.reduce(&prod, 0.0)
                })
                .map_err(fail)?;
        }

        let ha = policy.to_host(&a).map_err(fail)?;
        let hb = policy.to_host(&b).map_err(fail)?;
        let hc = policy.to_host(&c).map_err(fail)?;
        let dot_ok = ((dot - gold.expected_dot(n)) / gold.expected_dot(n)).abs() < 1e-8;
        Ok(RunResult {
            model: "Standard",
            toolchain: policy.toolchain().to_owned(),
            vendor,
            n,
            kernels: sw.results(n),
            dot,
            verified: crate::verify(&ha, &hb, &hc, gold) && dot_ok,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_on_all_vendors_with_amd_penalty() {
        let nv = StdparStream.run(Vendor::Nvidia, 2048, 1).unwrap();
        assert!(nv.verified);
        assert_eq!(nv.toolchain, "NVIDIA HPC SDK (nvc++ -stdpar=gpu)");
        let intel = StdparStream.run(Vendor::Intel, 2048, 1).unwrap();
        assert!(intel.verified);
        let amd = StdparStream.run(Vendor::Amd, 2048, 1).unwrap();
        assert!(amd.verified);
        // §5: AMD's stdpar venues are experimental (route efficiency well
        // below 1); latency-corrected fraction-of-peak must trail NVIDIA's
        // vendor-complete route.
        let nv_big = StdparStream.run(Vendor::Nvidia, 65536, 1).unwrap();
        let amd_big = StdparStream.run(Vendor::Amd, 65536, 1).unwrap();
        let busy_frac = |r: &crate::RunResult, peak: f64, latency_us: f64| {
            let k = r.kernel(StreamKernel::Triad).unwrap();
            let busy = k.best_time.seconds() - latency_us * 1e-6;
            (k.bytes as f64 / 1e9) / busy / peak
        };
        let nv_frac = busy_frac(&nv_big, 2039.0, 5.0);
        let amd_frac = busy_frac(&amd_big, 1638.0, 6.0);
        assert!(amd_frac < nv_frac, "amd {amd_frac} !< nv {nv_frac}");
    }
}
