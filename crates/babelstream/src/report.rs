//! Text reports for the BabelStream sweep.

use crate::runner::SweepEntry;
use crate::{StreamError, StreamKernel};
use mcmm_core::taxonomy::Vendor;

/// The classic per-run BabelStream table (one model on one vendor):
/// function, modeled GB/s, best modeled time.
pub fn run_table(entry: &SweepEntry) -> String {
    let mut out = String::new();
    match &entry.outcome {
        Ok(r) => {
            out.push_str(&format!(
                "BabelStream — {} on {} via {} (n = {}, modeled)\n",
                r.model, r.vendor, r.toolchain, r.n
            ));
            out.push_str("Function    GBytes/s   Best-time(µs)\n");
            for k in &r.kernels {
                out.push_str(&format!(
                    "{:<10} {:>9.1} {:>14.2}\n",
                    k.kernel.name(),
                    k.gbps(),
                    k.best_time.micros()
                ));
            }
            out.push_str(&format!(
                "Dot result {:.6e}; verification {}\n",
                r.dot,
                if r.verified { "PASSED" } else { "FAILED" }
            ));
            if let Some(m) = r.mem {
                out.push_str(&format!(
                    "Mem hierarchy: L1 {:.1}% hit, L2 {:.1}% hit, {:.0}% sector utilization, \
                     {:.3} GB DRAM traffic\n",
                    m.l1_hit_rate() * 100.0,
                    m.l2_hit_rate() * 100.0,
                    m.sector_utilization() * 100.0,
                    m.dram_bytes as f64 / 1e9,
                ));
            }
        }
        Err(e) => out.push_str(&format!("{} on {}: {e}\n", entry.model, entry.vendor)),
    }
    out
}

/// The cross-model overview: one row per model, triad GB/s per vendor,
/// `--` where the matrix has a hole.
pub fn sweep_table(entries: &[SweepEntry]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<14}", "Model"));
    for v in Vendor::ALL {
        out.push_str(&format!("{:>22}", format!("{v} Triad GB/s")));
    }
    out.push('\n');
    out.push_str(&"-".repeat(14 + 22 * 3));
    out.push('\n');
    let mut models: Vec<&'static str> = Vec::new();
    for e in entries {
        if !models.contains(&e.model) {
            models.push(e.model);
        }
    }
    for model in models {
        out.push_str(&format!("{model:<14}"));
        for v in Vendor::ALL {
            let cell = entries.iter().find(|e| e.model == model && e.vendor == v);
            let text = match cell.map(|e| &e.outcome) {
                Some(Ok(r)) if r.verified => format!("{:.0}", r.triad_gbps()),
                Some(Ok(_)) => "UNVERIFIED".to_owned(),
                Some(Err(StreamError::Unsupported { .. })) => "--".to_owned(),
                Some(Err(_)) => "ERROR".to_owned(),
                None => "?".to_owned(),
            };
            out.push_str(&format!("{text:>22}"));
        }
        out.push('\n');
    }
    out
}

/// Per-kernel detail for one model across vendors.
pub fn kernel_series(entries: &[SweepEntry], model: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{model} — modeled GB/s per kernel\n"));
    out.push_str(&format!("{:<8}", "Kernel"));
    for v in Vendor::ALL {
        out.push_str(&format!("{:>12}", v.name()));
    }
    out.push('\n');
    for k in StreamKernel::ALL {
        out.push_str(&format!("{:<8}", k.name()));
        for v in Vendor::ALL {
            let cell = entries.iter().find(|e| e.model == model && e.vendor == v);
            let text = match cell.map(|e| &e.outcome) {
                Some(Ok(r)) => {
                    r.kernel(k).map(|kr| format!("{:.0}", kr.gbps())).unwrap_or_else(|| "?".into())
                }
                _ => "--".into(),
            };
            out.push_str(&format!("{text:>12}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::sweep;

    #[test]
    fn tables_render_for_a_small_sweep() {
        let entries = sweep(256, 1);
        let table = sweep_table(&entries);
        assert!(table.contains("CUDA"));
        assert!(table.contains("--"), "expected unsupported markers:\n{table}");
        assert!(!table.contains("ERROR"), "{table}");
        assert!(!table.contains("UNVERIFIED"), "{table}");

        let cuda_on_nvidia =
            entries.iter().find(|e| e.model == "CUDA" && e.vendor == Vendor::Nvidia).unwrap();
        let one = run_table(cuda_on_nvidia);
        assert!(one.contains("Copy"));
        assert!(one.contains("PASSED"));

        let cuda_on_amd =
            entries.iter().find(|e| e.model == "CUDA" && e.vendor == Vendor::Amd).unwrap();
        assert!(run_table(cuda_on_amd).contains("does not run"));

        let series = kernel_series(&entries, "SYCL");
        assert!(series.contains("Triad"));
    }
}
