//! # mcmm-babelstream — BabelStream across every model and vendor
//!
//! The paper declines to evaluate performance (§5) but names BabelStream
//! \[53\] as the closest thing to a performance overview. This crate builds
//! that extension: the five STREAM kernels
//!
//! ```text
//! Copy:  c[i] = a[i]
//! Mul:   b[i] = scalar * c[i]
//! Add:   c[i] = a[i] + b[i]
//! Triad: a[i] = b[i] + scalar * c[i]
//! Dot:   sum += a[i] * b[i]
//! ```
//!
//! implemented **through each programming-model frontend's own public
//! API** (one adapter per model in [`adapters`]), run on each simulated
//! vendor device, reporting *modeled* GB/s from the analytic timing model.
//! Shapes — which routes reach which devices, native vs translated vs
//! experimental gradients, per-device peak-bandwidth ordering — reproduce;
//! absolute numbers are calibration, not measurement (EXPERIMENTS.md).

pub mod adapters;
pub mod report;
pub mod runner;

use mcmm_core::taxonomy::Vendor;
use mcmm_gpu_sim::timing::ModeledTime;
use mcmm_gpu_sim::{MemStats, OptStats, ProgramCacheStats};
use std::fmt;

/// The five BabelStream kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKernel {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = scalar * c[i]`
    Mul,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + scalar * c[i]`
    Triad,
    /// `sum += a[i] * b[i]`
    Dot,
}

impl StreamKernel {
    /// All kernels in BabelStream order.
    pub const ALL: [StreamKernel; 5] = [
        StreamKernel::Copy,
        StreamKernel::Mul,
        StreamKernel::Add,
        StreamKernel::Triad,
        StreamKernel::Dot,
    ];

    /// The kernel's BabelStream name.
    pub fn name(self) -> &'static str {
        match self {
            StreamKernel::Copy => "Copy",
            StreamKernel::Mul => "Mul",
            StreamKernel::Add => "Add",
            StreamKernel::Triad => "Triad",
            StreamKernel::Dot => "Dot",
        }
    }

    /// Bytes moved per element (f64): the canonical BabelStream counting.
    pub fn bytes_per_element(self) -> u64 {
        match self {
            StreamKernel::Copy | StreamKernel::Mul | StreamKernel::Dot => 2 * 8,
            StreamKernel::Add | StreamKernel::Triad => 3 * 8,
        }
    }
}

impl fmt::Display for StreamKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// BabelStream's canonical initial value for array `a`.
pub const START_A: f64 = 0.1;
/// BabelStream's canonical initial value for array `b`.
pub const START_B: f64 = 0.2;
/// BabelStream's canonical initial value for array `c`.
pub const START_C: f64 = 0.0;
/// BabelStream's canonical Mul/Triad scalar.
pub const SCALAR: f64 = 0.4;

/// Per-kernel outcome of a run.
#[derive(Debug, Clone, Copy)]
pub struct KernelResult {
    /// Which kernel this result belongs to.
    pub kernel: StreamKernel,
    /// Best (minimum) modeled time of a single iteration.
    pub best_time: ModeledTime,
    /// Bytes the kernel moves per iteration (counted, not assumed).
    pub bytes: u64,
}

impl KernelResult {
    /// Modeled bandwidth in GB/s.
    pub fn gbps(&self) -> f64 {
        self.best_time.bandwidth_gbps(self.bytes)
    }
}

/// The outcome of running the benchmark through one model on one vendor.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The frontend ("CUDA", "HIP", …).
    pub model: &'static str,
    /// The toolchain the frontend resolved (diagnostics).
    pub toolchain: String,
    /// The vendor whose simulated device ran the benchmark.
    pub vendor: Vendor,
    /// Elements per array.
    pub n: usize,
    /// Per-kernel results.
    pub kernels: Vec<KernelResult>,
    /// The dot-product result.
    pub dot: f64,
    /// Did the final array contents match the host-side gold recurrence?
    pub verified: bool,
    /// Lowered-program cache traffic on this run's device (sessions own a
    /// fresh device, so this is exactly what the run itself generated).
    pub programs: ProgramCacheStats,
    /// Middle-end statistics for kernels the run's device lowered at
    /// O1/O2; all-zero at the default O0 (the middle-end is bypassed).
    pub opt: OptStats,
    /// Memory-hierarchy statistics summed over this run's launches, when
    /// the device traced them (`MCMM_MEM_TRACE` / trace-driven timing);
    /// `None` on untraced runs.
    pub mem: Option<MemStats>,
}

impl RunResult {
    /// Result for one kernel.
    pub fn kernel(&self, k: StreamKernel) -> Option<&KernelResult> {
        self.kernels.iter().find(|r| r.kernel == k)
    }

    /// Triad bandwidth — the headline BabelStream number.
    pub fn triad_gbps(&self) -> f64 {
        self.kernel(StreamKernel::Triad).map(KernelResult::gbps).unwrap_or(0.0)
    }
}

/// Why a model couldn't run on a vendor.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings are fully specified per variant
pub enum StreamError {
    /// The matrix has no route (e.g. OpenACC on Intel).
    Unsupported { model: &'static str, vendor: Vendor, detail: String },
    /// The run failed.
    Failed(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Unsupported { model, vendor, detail } => {
                write!(f, "{model} does not run on {vendor}: {detail}")
            }
            StreamError::Failed(m) => write!(f, "benchmark failed: {m}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Host-side gold values: BabelStream's uniform arrays mean each array is
/// one scalar evolving by the kernel recurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gold {
    /// Current uniform value of array `a`.
    pub a: f64,
    /// Current uniform value of array `b`.
    pub b: f64,
    /// Current uniform value of array `c`.
    pub c: f64,
}

impl Gold {
    /// The gold values before any iteration.
    pub fn initial() -> Self {
        Self { a: START_A, b: START_B, c: START_C }
    }

    /// Advance one full iteration (Copy, Mul, Add, Triad; Dot is
    /// side-effect-free).
    pub fn step(&mut self) {
        self.c = self.a;
        self.b = SCALAR * self.c;
        self.c = self.a + self.b;
        self.a = self.b + SCALAR * self.c;
    }

    /// The expected dot product after the last iteration, for `n`
    /// elements.
    pub fn expected_dot(&self, n: usize) -> f64 {
        self.a * self.b * n as f64
    }
}

/// A model adapter: runs BabelStream through one frontend.
pub trait StreamBackend: Sync {
    /// The model column this adapter represents.
    fn model_name(&self) -> &'static str;

    /// Run `iters` iterations of the five kernels over `n` f64 elements on
    /// the given vendor's simulated device.
    fn run(&self, vendor: Vendor, n: usize, iters: usize) -> Result<RunResult, StreamError>;
}

/// Verify device arrays against the gold recurrence within BabelStream's
/// tolerance.
pub fn verify(a: &[f64], b: &[f64], c: &[f64], gold: Gold) -> bool {
    let tol = 1e-8;
    let close = |xs: &[f64], g: f64| xs.iter().all(|&x| ((x - g) / g.max(1e-30)).abs() < tol);
    close(a, gold.a) && close(b, gold.b) && close(c, gold.c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_counts_match_babelstream() {
        assert_eq!(StreamKernel::Copy.bytes_per_element(), 16);
        assert_eq!(StreamKernel::Mul.bytes_per_element(), 16);
        assert_eq!(StreamKernel::Add.bytes_per_element(), 24);
        assert_eq!(StreamKernel::Triad.bytes_per_element(), 24);
        assert_eq!(StreamKernel::Dot.bytes_per_element(), 16);
    }

    #[test]
    fn gold_recurrence_stays_finite_and_positive() {
        let mut g = Gold::initial();
        for _ in 0..100 {
            g.step();
            assert!(g.a.is_finite() && g.a > 0.0);
            assert!(g.b.is_finite() && g.b > 0.0);
            assert!(g.c.is_finite() && g.c > 0.0);
        }
    }

    #[test]
    fn verify_accepts_gold_and_rejects_garbage() {
        let mut g = Gold::initial();
        g.step();
        let a = vec![g.a; 10];
        let b = vec![g.b; 10];
        let c = vec![g.c; 10];
        assert!(verify(&a, &b, &c, g));
        let bad = vec![g.a * 1.01; 10];
        assert!(!verify(&bad, &b, &c, g));
    }

    #[test]
    fn gbps_computation() {
        let r = KernelResult {
            kernel: StreamKernel::Copy,
            best_time: ModeledTime::from_seconds(0.001),
            bytes: 16_000_000,
        };
        assert!((r.gbps() - 16.0).abs() < 1e-9);
    }
}
