//! Run the full model × vendor sweep.

use crate::adapters::all_backends;
use crate::{RunResult, StreamError};
use mcmm_core::taxonomy::Vendor;
use mcmm_frontend::{shared_cache, CacheStats, ProgramCacheStats};
use mcmm_gpu_sim::{MemStats, OptStats};
use std::ops::Deref;

/// The outcome of one (model, vendor) cell of the sweep.
#[derive(Debug)]
pub struct SweepEntry {
    /// The model column.
    pub model: &'static str,
    /// The vendor row.
    pub vendor: Vendor,
    /// The run's result, or why it could not run.
    pub outcome: Result<RunResult, StreamError>,
}

/// A completed sweep: the 27 cell outcomes plus what the sweep did to
/// the process-wide [`CompileCache`](mcmm_frontend::CompileCache)
/// every session compiles through. Derefs to the entry slice, so report
/// helpers taking `&[SweepEntry]` accept a `&Sweep` unchanged.
#[derive(Debug)]
pub struct Sweep {
    /// One entry per (model, vendor) cell.
    pub entries: Vec<SweepEntry>,
    /// Shared-cache hits attributable to this sweep (counter delta).
    pub cache_hits: u64,
    /// Shared-cache misses attributable to this sweep (counter delta).
    pub cache_misses: u64,
    /// Lowered-program cache traffic summed over every cell that ran
    /// (each session brings up a fresh device, so per-run stats add up
    /// cleanly — no delta needed).
    pub programs: ProgramCacheStats,
    /// Middle-end statistics summed over every cell that ran; all-zero
    /// at the default O0.
    pub opt: OptStats,
    /// Memory-hierarchy statistics summed over every traced cell, `None`
    /// when no cell traced (the default: tracing off, analytic timing).
    pub mem: Option<MemStats>,
}

impl Sweep {
    /// Fraction of this sweep's compile requests served from the shared
    /// cache (0 when the sweep compiled nothing).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl Deref for Sweep {
    type Target = [SweepEntry];

    fn deref(&self) -> &[SweepEntry] {
        &self.entries
    }
}

/// Sweep every registered model over every vendor, reporting the shared
/// compile-cache traffic the sweep generated.
pub fn sweep(n: usize, iters: usize) -> Sweep {
    let before: CacheStats = shared_cache().stats();
    let backends = all_backends();
    let mut entries = Vec::with_capacity(backends.len() * Vendor::ALL.len());
    for backend in &backends {
        for vendor in Vendor::ALL {
            entries.push(SweepEntry {
                model: backend.model_name(),
                vendor,
                outcome: backend.run(vendor, n, iters),
            });
        }
    }
    let after = shared_cache().stats();
    let programs = entries
        .iter()
        .filter_map(|e| e.outcome.as_ref().ok())
        .fold(ProgramCacheStats::default(), |acc, r| acc.merged(r.programs));
    let opt = entries
        .iter()
        .filter_map(|e| e.outcome.as_ref().ok())
        .fold(OptStats::default(), |acc, r| acc.merged(r.opt));
    let mem = entries
        .iter()
        .filter_map(|e| e.outcome.as_ref().ok())
        .filter_map(|r| r.mem)
        .fold(None, |acc: Option<MemStats>, m| Some(acc.map_or(m, |a| a.merged(m))));
    Sweep {
        entries,
        cache_hits: after.hits.saturating_sub(before.hits),
        cache_misses: after.misses.saturating_sub(before.misses),
        programs,
        opt,
        mem,
    }
}

/// How many sweep cells ran and verified.
pub fn verified_count(entries: &[SweepEntry]) -> usize {
    entries.iter().filter(|e| matches!(&e.outcome, Ok(r) if r.verified)).count()
}

/// How many sweep cells are unsupported (matrix holes).
pub fn unsupported_count(entries: &[SweepEntry]) -> usize {
    entries.iter().filter(|e| matches!(&e.outcome, Err(StreamError::Unsupported { .. }))).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_expected_support_pattern() {
        // Small n to keep the full 27-cell sweep quick.
        let entries = sweep(512, 1);
        assert_eq!(entries.len(), 27);
        // Holes: CUDA on AMD+Intel, HIP on Intel, OpenACC on Intel = 4.
        assert_eq!(unsupported_count(&entries), 4);
        // Everything else runs and verifies.
        assert_eq!(verified_count(&entries), 23);
        // No cell fails for any reason other than Unsupported.
        for e in entries.iter() {
            if let Err(err) = &e.outcome {
                assert!(
                    matches!(err, StreamError::Unsupported { .. }),
                    "{} on {} failed: {err}",
                    e.model,
                    e.vendor
                );
            }
        }
    }

    #[test]
    fn repeated_sweep_hits_the_shared_cache() {
        // Warm the process-wide cache, then sweep again: every cell
        // re-compiles the same five kernels through the same routes, so
        // the second pass must be served from the cache.
        let _warm = sweep(256, 1);
        let again = sweep(256, 1);
        assert!(
            again.cache_hits > 0,
            "second sweep saw no cache hits (hits {}, misses {})",
            again.cache_hits,
            again.cache_misses
        );
        assert!(again.cache_hit_rate() > 0.0);
    }

    #[test]
    fn multi_iteration_sweep_hits_the_program_cache() {
        // With two iterations every kernel launches twice on its session's
        // fresh device: the first launch lowers (miss), the second reuses
        // the cached lane-vector program (hit).
        let s = sweep(256, 2);
        assert!(s.programs.misses > 0, "expected at least one lowering (got {:?})", s.programs);
        assert!(
            s.programs.hits > 0,
            "second launches saw no program-cache hits (got {:?})",
            s.programs
        );
        assert!(s.programs.hit_rate() > 0.0);
    }
}
