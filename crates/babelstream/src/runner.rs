//! Run the full model × vendor sweep.

use crate::adapters::all_backends;
use crate::{RunResult, StreamError};
use mcmm_core::taxonomy::Vendor;

/// The outcome of one (model, vendor) cell of the sweep.
#[derive(Debug)]
pub struct SweepEntry {
    /// The model column.
    pub model: &'static str,
    /// The vendor row.
    pub vendor: Vendor,
    /// The run's result, or why it could not run.
    pub outcome: Result<RunResult, StreamError>,
}

/// Sweep every registered model over every vendor.
pub fn sweep(n: usize, iters: usize) -> Vec<SweepEntry> {
    let backends = all_backends();
    let mut out = Vec::with_capacity(backends.len() * Vendor::ALL.len());
    for backend in &backends {
        for vendor in Vendor::ALL {
            out.push(SweepEntry {
                model: backend.model_name(),
                vendor,
                outcome: backend.run(vendor, n, iters),
            });
        }
    }
    out
}

/// How many sweep cells ran and verified.
pub fn verified_count(entries: &[SweepEntry]) -> usize {
    entries.iter().filter(|e| matches!(&e.outcome, Ok(r) if r.verified)).count()
}

/// How many sweep cells are unsupported (matrix holes).
pub fn unsupported_count(entries: &[SweepEntry]) -> usize {
    entries.iter().filter(|e| matches!(&e.outcome, Err(StreamError::Unsupported { .. }))).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_expected_support_pattern() {
        // Small n to keep the full 27-cell sweep quick.
        let entries = sweep(512, 1);
        assert_eq!(entries.len(), 27);
        // Holes: CUDA on AMD+Intel, HIP on Intel, OpenACC on Intel = 4.
        assert_eq!(unsupported_count(&entries), 4);
        // Everything else runs and verifies.
        assert_eq!(verified_count(&entries), 23);
        // No cell fails for any reason other than Unsupported.
        for e in &entries {
            if let Err(err) = &e.outcome {
                assert!(
                    matches!(err, StreamError::Unsupported { .. }),
                    "{} on {} failed: {err}",
                    e.model,
                    e.vendor
                );
            }
        }
    }
}
