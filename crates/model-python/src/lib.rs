//! # mcmm-model-python — the "etc (Python)" column
//!
//! Python reaches GPUs through per-vendor package stacks (descriptions 17,
//! 30, 44): CUDA Python / CuPy / Numba on NVIDIA, the experimental
//! CuPy-ROCm / PyHIP stack on AMD, and Intel's dpctl / numba-dpex / dpnp.
//! This frontend models the two defining properties of that ecosystem:
//!
//! * **Dynamic typing** — [`PyArray`] carries its dtype at runtime
//!   ([`DType`]); elementwise operations type-check dynamically and raise
//!   [`PyError::TypeError`], not compile errors.
//! * **Package availability per platform** — [`PyRuntime::import_`]
//!   succeeds or raises [`PyError::ImportError`] according to the matrix
//!   (e.g. `import cupy` works on NVIDIA, warns-but-works on ROCm, fails
//!   on Intel; `import dpnp` only works on Intel).
//!
//! Operations are JIT-built to kernel IR and launched through the
//! vendor's Python-route toolchain — exactly how CuPy/dpnp wrap native
//! runtimes underneath (the paper: Python "relies on backends in
//! lower-level languages").

use mcmm_core::taxonomy::{Language, Model, Vendor};
use mcmm_frontend::{Element, ExecutionSession, Frontend, FrontendError};
use mcmm_gpu_sim::device::{Device, KernelArg};
use mcmm_gpu_sim::ir::{BinOp, CmpOp, KernelBuilder, Space, Type};
use mcmm_gpu_sim::mem::DevicePtr;
use std::fmt;
use std::sync::Arc;

pub use mcmm_gpu_sim::ir::Value;

/// NumPy-style dtypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    /// `numpy.float32`.
    Float32,
    /// `numpy.float64`.
    Float64,
    /// `numpy.int32`.
    Int32,
    /// `numpy.int64`.
    Int64,
}

impl DType {
    fn ir_type(self) -> Type {
        match self {
            DType::Float32 => Type::F32,
            DType::Float64 => Type::F64,
            DType::Int32 => Type::I32,
            DType::Int64 => Type::I64,
        }
    }

    /// NumPy type-promotion for binary ops (subset).
    pub fn promote(self, other: DType) -> DType {
        use DType::*;
        match (self, other) {
            (Float64, _) | (_, Float64) => Float64,
            (Float32, _) | (_, Float32) => Float32,
            (Int64, _) | (_, Int64) => Int64,
            _ => Int32,
        }
    }

    /// The NumPy dtype name.
    pub fn name(self) -> &'static str {
        match self {
            DType::Float32 => "float32",
            DType::Float64 => "float64",
            DType::Int32 => "int32",
            DType::Int64 => "int64",
        }
    }
}

/// Python-style exceptions.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings are fully specified per variant
pub enum PyError {
    /// `ImportError: no module named ...` — the package is not available
    /// on this platform (or is unmaintained).
    ImportError { package: String, vendor: Vendor, reason: String },
    /// `TypeError` — dynamic dtype/shape mismatch.
    TypeError(String),
    /// `RuntimeError`.
    RuntimeError(String),
}

impl fmt::Display for PyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PyError::ImportError { package, vendor, reason } => {
                write!(f, "ImportError: no usable module '{package}' on {vendor}: {reason}")
            }
            PyError::TypeError(m) => write!(f, "TypeError: {m}"),
            PyError::RuntimeError(m) => write!(f, "RuntimeError: {m}"),
        }
    }
}

impl std::error::Error for PyError {}

/// Result alias.
pub type PyResult<T> = Result<T, PyError>;

/// The Python packages the paper's descriptions 17/30/44 cover, with their
/// registry toolchain names per vendor.
fn package_toolchain(package: &str, vendor: Vendor) -> Option<&'static str> {
    match (package, vendor) {
        ("cuda-python", Vendor::Nvidia) => Some("CUDA Python"),
        ("cupy", Vendor::Nvidia) => Some("CuPy"),
        ("cupy", Vendor::Amd) => Some("CuPy (ROCm, experimental)"),
        ("pycuda", Vendor::Nvidia) => Some("PyCUDA"),
        ("numba", Vendor::Nvidia) => Some("Numba (CUDA target)"),
        ("numba", Vendor::Amd) => Some("Numba (ROCm target)"),
        ("cunumeric", Vendor::Nvidia) => Some("cuNumeric"),
        ("pyhip-interface", Vendor::Amd) => Some("PyHIP"),
        ("pyopencl", Vendor::Amd) => Some("PyOpenCL"),
        ("dpctl", Vendor::Intel) => Some("dpctl"),
        ("numba-dpex", Vendor::Intel) => Some("numba-dpex"),
        ("dpnp", Vendor::Intel) => Some("dpnp"),
        _ => None,
    }
}

/// A typed element with a NumPy dtype — ties the spine's [`Element`]
/// transfer path to the runtime [`DType`] tag carried by [`PyArray`].
pub trait PyElement: Element {
    /// The NumPy dtype this element type maps to.
    const DTYPE: DType;
}

impl PyElement for f32 {
    const DTYPE: DType = DType::Float32;
}

impl PyElement for f64 {
    const DTYPE: DType = DType::Float64;
}

/// A Python runtime bound to one device — `python` with the platform's
/// GPU stack installed, layered over the shared [`ExecutionSession`].
pub struct PyRuntime {
    session: ExecutionSession,
    /// Which package is serving as the array backend.
    pub backend_package: String,
}

/// Map a spine refusal to a Python `ImportError` for `package`.
fn import_error(package: &str, e: FrontendError) -> PyError {
    match e {
        FrontendError::NoRoute { vendor, detail, .. } => {
            PyError::ImportError { package: package.to_owned(), vendor, reason: detail }
        }
        FrontendError::Discontinued { vendor, .. } => PyError::ImportError {
            package: package.to_owned(),
            vendor,
            reason: "package is unmaintained (paper §5 'Topicality')".into(),
        },
        other => PyError::RuntimeError(other.to_string()),
    }
}

impl PyRuntime {
    /// Start a runtime with the platform's default array package
    /// (CuPy on NVIDIA, CuPy-ROCm on AMD, dpnp on Intel).
    pub fn new(device: Arc<Device>) -> PyResult<Self> {
        let vendor = mcmm_toolchain::isa_vendor(device.spec().isa);
        let package = match vendor {
            Vendor::Nvidia | Vendor::Amd => "cupy",
            Vendor::Intel => "dpnp",
        };
        Self::with_package(device, package)
    }

    /// `import <package>` and use it as the array backend.
    pub fn with_package(device: Arc<Device>, package: &str) -> PyResult<Self> {
        let session = import_session(Arc::clone(&device), package)?;
        Ok(Self { session, backend_package: package.to_owned() })
    }

    /// `import <package>` — checks availability without rebinding.
    pub fn import_(&self, package: &str) -> PyResult<()> {
        import_session(Arc::clone(self.session.device()), package).map(|_| ())
    }

    /// The execution-spine session under this runtime.
    pub fn session(&self) -> &ExecutionSession {
        &self.session
    }

    /// `cupy.asarray(host)` — upload, tagging the array with the dtype of
    /// the host slice. One generic path; the `_f32`/`_f64` names are
    /// deprecated sugar over it.
    pub fn asarray<T: PyElement>(&self, data: &[T]) -> PyResult<PyArray> {
        let ptr = self
            .session
            .alloc_bytes((data.len() * T::BYTES) as u64)
            .map_err(|e| PyError::RuntimeError(e.to_string()))?;
        self.session.upload_raw(ptr, data).map_err(|e| PyError::RuntimeError(e.to_string()))?;
        Ok(PyArray { ptr, len: data.len(), dtype: T::DTYPE })
    }

    /// `cupy.asarray(host)` for `float64`.
    #[deprecated(since = "0.1.0", note = "use the generic `asarray` instead")]
    pub fn asarray_f64(&self, data: &[f64]) -> PyResult<PyArray> {
        self.asarray(data)
    }

    /// `cupy.asarray(host, dtype=float32)`.
    #[deprecated(since = "0.1.0", note = "use the generic `asarray` instead")]
    pub fn asarray_f32(&self, data: &[f32]) -> PyResult<PyArray> {
        self.asarray(data)
    }

    /// `cupy.zeros(n, dtype)`.
    pub fn zeros(&self, n: usize, dtype: DType) -> PyResult<PyArray> {
        match dtype {
            DType::Float64 => self.asarray(&vec![0.0f64; n]),
            DType::Float32 => self.asarray(&vec![0.0f32; n]),
            other => Err(PyError::TypeError(format!("zeros: unsupported dtype {}", other.name()))),
        }
    }

    /// Elementwise binary op (`a + b`, `a * b`, …) with NumPy promotion.
    pub fn elementwise(&self, op: BinOp, a: &PyArray, b: &PyArray) -> PyResult<PyArray> {
        if a.len != b.len {
            return Err(PyError::TypeError(format!(
                "operands could not be broadcast together: {} vs {}",
                a.len, b.len
            )));
        }
        let out_dtype = a.dtype.promote(b.dtype);
        if out_dtype != a.dtype || out_dtype != b.dtype {
            return Err(PyError::TypeError(format!(
                "implicit promotion {} vs {} not supported by this backend; cast first",
                a.dtype.name(),
                b.dtype.name()
            )));
        }
        let out = self.zeros(a.len, out_dtype)?;
        let ty = out_dtype.ir_type();
        let mut k = KernelBuilder::new("py_elementwise");
        let pa = k.param(Type::I64);
        let pb = k.param(Type::I64);
        let po = k.param(Type::I64);
        let n = k.param(Type::I32);
        let i = k.global_thread_id_x();
        let ok = k.cmp(CmpOp::Lt, i, n);
        k.if_(ok, |k| {
            let va = k.ld_elem(Space::Global, ty, pa, i);
            let vb = k.ld_elem(Space::Global, ty, pb, i);
            let vo = k.bin(op, va, vb);
            k.st_elem(Space::Global, po, i, vo);
        });
        self.launch(&k.finish(), a.len, &[a.ptr, b.ptr, out.ptr])?;
        Ok(out)
    }

    /// `arr.copy()` — an explicit device-side copy into a new array.
    pub fn copy(&self, a: &PyArray) -> PyResult<PyArray> {
        let out = self.zeros(a.len, a.dtype)?;
        let ty = a.dtype.ir_type();
        let mut k = KernelBuilder::new("py_copy");
        let pa = k.param(Type::I64);
        let po = k.param(Type::I64);
        let n = k.param(Type::I32);
        let i = k.global_thread_id_x();
        let ok = k.cmp(CmpOp::Lt, i, n);
        k.if_(ok, |k| {
            let v = k.ld_elem(Space::Global, ty, pa, i);
            k.st_elem(Space::Global, po, i, v);
        });
        self.launch(&k.finish(), a.len, &[a.ptr, out.ptr])?;
        Ok(out)
    }

    /// `alpha * arr` — scalar multiplication producing a new array
    /// (f64 arrays), the NumPy broadcast idiom with its temporary.
    pub fn scalar_mul(&self, alpha: f64, a: &PyArray) -> PyResult<PyArray> {
        if a.dtype != DType::Float64 {
            return Err(PyError::TypeError(format!(
                "scalar_mul: expected float64, got {}",
                a.dtype.name()
            )));
        }
        let out = self.zeros(a.len, a.dtype)?;
        let mut k = KernelBuilder::new("py_scalar_mul");
        let pa = k.param(Type::I64);
        let po = k.param(Type::I64);
        let alpha_p = k.param(Type::F64);
        let n = k.param(Type::I32);
        let i = k.global_thread_id_x();
        let ok = k.cmp(CmpOp::Lt, i, n);
        k.if_(ok, |k| {
            let v = k.ld_elem(Space::Global, Type::F64, pa, i);
            let w = k.bin(BinOp::Mul, v, alpha_p);
            k.st_elem(Space::Global, po, i, w);
        });
        // scalar_mul has an extra f64 argument between the pointers and n.
        let args = [
            KernelArg::Ptr(a.ptr),
            KernelArg::Ptr(out.ptr),
            KernelArg::F64(alpha),
            KernelArg::I32(a.len as i32),
        ];
        self.session
            .run(&k.finish(), a.len as u64, 256, &args)
            .map_err(|e| PyError::RuntimeError(e.to_string()))?;
        Ok(out)
    }

    /// `arr.sum()` — reduction to a host scalar (f64 arrays).
    pub fn sum(&self, a: &PyArray) -> PyResult<f64> {
        if a.dtype != DType::Float64 {
            return Err(PyError::TypeError(format!(
                "sum: expected float64, got {}",
                a.dtype.name()
            )));
        }
        let cell = self.session.alloc_bytes(8).map_err(|e| PyError::RuntimeError(e.to_string()))?;
        self.session
            .device()
            .memory()
            .store(cell.0, Value::F64(0.0))
            .map_err(|e| PyError::RuntimeError(e.to_string()))?;
        let mut k = KernelBuilder::new("py_sum");
        let pa = k.param(Type::I64);
        let pc = k.param(Type::I64);
        let n = k.param(Type::I32);
        let i = k.global_thread_id_x();
        let ok = k.cmp(CmpOp::Lt, i, n);
        k.if_(ok, |k| {
            let v = k.ld_elem(Space::Global, Type::F64, pa, i);
            let _ = k.atomic(mcmm_gpu_sim::ir::AtomicOp::Add, Space::Global, pc, v);
        });
        self.launch(&k.finish(), a.len, &[a.ptr, cell])?;
        let out = self
            .session
            .device()
            .memory()
            .load(Type::F64, cell.0)
            .map_err(|e| PyError::RuntimeError(e.to_string()))?;
        self.session.free_bytes(cell, 8);
        match out {
            Value::F64(x) => Ok(x),
            _ => unreachable!("sum cell is f64"),
        }
    }

    /// `cupy.asnumpy(arr)` — download to host, checking the runtime dtype
    /// against the requested element type.
    pub fn asnumpy<T: PyElement>(&self, a: &PyArray) -> PyResult<Vec<T>> {
        if a.dtype != T::DTYPE {
            return Err(PyError::TypeError(format!(
                "asnumpy: array is {}, requested {}",
                a.dtype.name(),
                T::DTYPE.name()
            )));
        }
        self.session.download_raw(a.ptr, a.len).map_err(|e| PyError::RuntimeError(e.to_string()))
    }

    /// `cupy.asnumpy(arr)` for `float64`.
    #[deprecated(since = "0.1.0", note = "use the generic `asnumpy` instead")]
    pub fn asnumpy_f64(&self, a: &PyArray) -> PyResult<Vec<f64>> {
        self.asnumpy(a)
    }

    fn launch(
        &self,
        kernel: &mcmm_gpu_sim::ir::KernelIr,
        n: usize,
        ptrs: &[DevicePtr],
    ) -> PyResult<()> {
        let mut args: Vec<KernelArg> = ptrs.iter().map(|&p| KernelArg::Ptr(p)).collect();
        args.push(KernelArg::I32(n as i32));
        self.session
            .run(kernel, n as u64, 256, &args)
            .map(|_| ())
            .map_err(|e| PyError::RuntimeError(e.to_string()))
    }
}

fn import_session(device: Arc<Device>, package: &str) -> PyResult<ExecutionSession> {
    let vendor = mcmm_toolchain::isa_vendor(device.spec().isa);
    let toolchain = package_toolchain(package, vendor).ok_or_else(|| PyError::ImportError {
        package: package.to_owned(),
        vendor,
        reason: "package does not exist for this platform".into(),
    })?;
    ExecutionSession::open_with_toolchain_on(device, Model::Python, Language::Python, toolchain)
        .map_err(|e| import_error(package, e))
}

/// The "etc (Python)" column as a spine [`Frontend`] (§6: "well-supported
/// by all three platforms").
pub struct PythonFrontend;

impl Frontend for PythonFrontend {
    fn model(&self) -> Model {
        Model::Python
    }

    fn language(&self) -> Language {
        Language::Python
    }

    fn open(&self, vendor: Vendor) -> Result<ExecutionSession, FrontendError> {
        ExecutionSession::open(Model::Python, Language::Python, vendor)
    }
}

/// A device array with runtime dtype — the `cupy.ndarray`/`dpnp.ndarray`
/// analogue (rank 1).
#[derive(Debug)]
pub struct PyArray {
    ptr: DevicePtr,
    len: usize,
    /// Runtime dtype.
    pub dtype: DType,
}

impl PyArray {
    /// `len(arr)`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `len(arr) == 0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmm_gpu_sim::DeviceSpec;

    #[test]
    fn numpy_style_arithmetic_on_all_vendors() {
        // §6: "Python … is also well-supported by all three platforms."
        for spec in DeviceSpec::presets() {
            let name = spec.name;
            let py = PyRuntime::new(Device::new(spec)).unwrap();
            let a = py.asarray(&[1.0, 2.0, 3.0, 4.0]).unwrap();
            let b = py.asarray(&[10.0, 20.0, 30.0, 40.0]).unwrap();
            let c = py.elementwise(BinOp::Add, &a, &b).unwrap();
            assert_eq!(py.asnumpy::<f64>(&c).unwrap(), vec![11.0, 22.0, 33.0, 44.0], "{name}");
            let d = py.elementwise(BinOp::Mul, &a, &b).unwrap();
            assert_eq!(py.asnumpy::<f64>(&d).unwrap(), vec![10.0, 40.0, 90.0, 160.0], "{name}");
        }
    }

    #[test]
    fn default_backends_per_vendor() {
        let nv = PyRuntime::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        assert_eq!(nv.backend_package, "cupy");
        let amd = PyRuntime::new(Device::new(DeviceSpec::amd_mi250x())).unwrap();
        assert_eq!(amd.backend_package, "cupy"); // cupy-rocm, experimental
        let intel = PyRuntime::new(Device::new(DeviceSpec::intel_pvc())).unwrap();
        assert_eq!(intel.backend_package, "dpnp");
    }

    #[test]
    fn import_availability_matches_matrix() {
        let nv = PyRuntime::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        nv.import_("cuda-python").unwrap();
        nv.import_("numba").unwrap();
        nv.import_("cunumeric").unwrap();
        assert!(matches!(nv.import_("dpnp"), Err(PyError::ImportError { .. })));

        let amd = PyRuntime::new(Device::new(DeviceSpec::amd_mi250x())).unwrap();
        amd.import_("pyhip-interface").unwrap();
        amd.import_("pyopencl").unwrap();
        // Description 30: Numba's ROCm target "is not maintained anymore".
        match amd.import_("numba") {
            Err(PyError::ImportError { reason, .. }) => assert!(reason.contains("unmaintained")),
            other => panic!("expected ImportError, got {other:?}"),
        }

        let intel = PyRuntime::new(Device::new(DeviceSpec::intel_pvc())).unwrap();
        intel.import_("dpctl").unwrap();
        intel.import_("numba-dpex").unwrap();
        assert!(matches!(intel.import_("cupy"), Err(PyError::ImportError { .. })));
    }

    #[test]
    fn dynamic_type_errors() {
        let py = PyRuntime::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        let a = py.asarray(&[1.0, 2.0]).unwrap();
        let b = py.asarray(&[1.0, 2.0, 3.0]).unwrap();
        match py.elementwise(BinOp::Add, &a, &b) {
            Err(PyError::TypeError(m)) => assert!(m.contains("broadcast")),
            other => panic!("expected TypeError, got {other:?}"),
        }
        let c = py.asarray(&[1.0f32, 2.0]).unwrap();
        assert!(matches!(py.elementwise(BinOp::Add, &a, &c), Err(PyError::TypeError(_))));
    }

    #[test]
    fn sum_reduction() {
        let py = PyRuntime::new(Device::new(DeviceSpec::intel_pvc())).unwrap();
        let a = py.asarray(&(0..100).map(f64::from).collect::<Vec<_>>()).unwrap();
        assert_eq!(py.sum(&a).unwrap(), 4950.0);
        let f32arr = py.asarray(&[1.0f32]).unwrap();
        assert!(matches!(py.sum(&f32arr), Err(PyError::TypeError(_))));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_asarray_names_still_work() {
        let py = PyRuntime::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        let a = py.asarray_f64(&[1.0, 2.0]).unwrap();
        assert_eq!(py.asnumpy_f64(&a).unwrap(), vec![1.0, 2.0]);
        let b = py.asarray_f32(&[1.0, 2.0]).unwrap();
        assert_eq!(b.dtype, DType::Float32);
    }

    #[test]
    fn dtype_promotion_table() {
        assert_eq!(DType::Float32.promote(DType::Float64), DType::Float64);
        assert_eq!(DType::Int32.promote(DType::Int64), DType::Int64);
        assert_eq!(DType::Int64.promote(DType::Float32), DType::Float32);
        assert_eq!(DType::Int32.promote(DType::Int32), DType::Int32);
    }

    #[test]
    fn f32_arrays_work_end_to_end() {
        let py = PyRuntime::new(Device::new(DeviceSpec::amd_mi250x())).unwrap();
        let a = py.asarray(&[1.5f32, 2.5]).unwrap();
        let b = py.asarray(&[0.5f32, 0.5]).unwrap();
        let c = py.elementwise(BinOp::Sub, &a, &b).unwrap();
        assert_eq!(c.dtype, DType::Float32);
        // Read back as f32 through the device API.
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }
}
