//! # mcmm-model-stdpar — standard-language parallelism
//!
//! "Standard language parallelism appears to be the model with the fastest
//! change at the moment" (§6). This frontend mirrors both surfaces the
//! paper tracks (descriptions 11, 12, 26, 27, 40, 41):
//!
//! * **C++ parallel STL** — [`DeviceVec`] plus offloaded algorithms
//!   (`for_each`, `transform`, `reduce`, `inclusive_scan`) under an
//!   execution policy ([`par_unseq`]). Vendor coverage follows the matrix:
//!   NVIDIA full (`nvc++ -stdpar=gpu`), Intel through oneDPL (note the
//!   **custom namespace** — our policy carries `namespace_note`), AMD only
//!   through experimental venues (roc-stdpar; expect reduced efficiency).
//! * **Fortran `do concurrent`** — [`do_concurrent`]: supported on NVIDIA
//!   (nvfortran) and Intel (ifx), **nowhere on AMD** (description 27
//!   returns [`StdparError::NoSupport`]).

use mcmm_core::taxonomy::{Language, Model, Vendor};
use mcmm_frontend::{Element, ExecutionSession, Frontend, FrontendError};
use mcmm_gpu_sim::device::{Device, KernelArg};
use mcmm_gpu_sim::ir::{AtomicOp, KernelBuilder, Reg, Type};
use mcmm_gpu_sim::mem::DevicePtr;
use std::fmt;
use std::sync::Arc;

pub use mcmm_gpu_sim::ir::{BinOp, CmpOp, Space, UnOp, Value};

/// Errors raised by the stdpar frontend.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings are fully specified per variant
pub enum StdparError {
    /// No standard-parallelism route on this platform/language —
    /// description 27 (AMD Fortran) is the canonical case.
    NoSupport { vendor: Vendor, language: Language },
    /// Runtime failure.
    Runtime(String),
}

impl fmt::Display for StdparError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StdparError::NoSupport { vendor, language } => {
                write!(f, "no standard-parallelism offload for {language} on {vendor} GPUs")
            }
            StdparError::Runtime(m) => write!(f, "stdpar runtime: {m}"),
        }
    }
}

impl std::error::Error for StdparError {}

/// Result alias.
pub type StdparResult<T> = Result<T, StdparError>;

/// An execution policy bound to a device (``std::execution::par_unseq``
/// with offload, as `-stdpar=gpu` interprets it) — a pSTL-flavored surface
/// over the shared [`ExecutionSession`] spine.
pub struct Policy {
    session: ExecutionSession,
    /// Intel's oneDPL keeps pSTL in `oneapi::dpl::` rather than `std::`
    /// (§5 "ambivalence") — surfaced so callers can see the caveat.
    pub namespace_note: Option<&'static str>,
}

/// Construct the offloading policy for a device (C++ surface).
pub fn par_unseq(device: Arc<Device>) -> StdparResult<Policy> {
    let session =
        ExecutionSession::open_on(device, Model::Standard, Language::Cpp).map_err(|e| match e {
            FrontendError::NoRoute { vendor, language, .. } => {
                StdparError::NoSupport { vendor, language }
            }
            other => StdparError::Runtime(other.to_string()),
        })?;
    let namespace_note = (session.vendor() == Vendor::Intel)
        .then_some("algorithms live in oneapi::dpl::, not std:: (paper §5)");
    Ok(Policy { session, namespace_note })
}

impl Policy {
    /// The resolved toolchain.
    pub fn toolchain(&self) -> &'static str {
        self.session.toolchain()
    }

    /// The route efficiency (AMD's experimental venues pay a penalty).
    pub fn efficiency(&self) -> f64 {
        self.session.efficiency()
    }

    /// The execution-spine session under this policy.
    pub fn session(&self) -> &ExecutionSession {
        &self.session
    }

    fn run(
        &self,
        n: usize,
        arrays: &[DevicePtr],
        extra: &[KernelArg],
        body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]),
    ) -> StdparResult<()> {
        let mut b = KernelBuilder::new("stdpar_algorithm");
        let bases: Vec<Reg> = arrays.iter().map(|_| b.param(Type::I64)).collect();
        for a in extra {
            match a {
                KernelArg::Ptr(_) | KernelArg::I64(_) => b.param(Type::I64),
                KernelArg::I32(_) => b.param(Type::I32),
                KernelArg::F32(_) => b.param(Type::F32),
                KernelArg::F64(_) => b.param(Type::F64),
            };
        }
        let n_param = b.param(Type::I32);
        let i = b.global_thread_id_x();
        let ok = b.cmp(CmpOp::Lt, i, n_param);
        let mut f = Some(body);
        let bases_ref = &bases;
        b.if_(ok, |b| {
            if let Some(f) = f.take() {
                f(b, i, bases_ref);
            }
        });
        let kernel = b.finish();
        let mut args: Vec<KernelArg> = arrays.iter().map(|&p| KernelArg::Ptr(p)).collect();
        args.extend_from_slice(extra);
        args.push(KernelArg::I32(n as i32));
        self.session
            .run(&kernel, n as u64, 256, &args)
            .map(|_| ())
            .map_err(|e| StdparError::Runtime(e.to_string()))
    }

    /// `std::for_each(policy, v.begin(), v.end(), f)` — `f` mutates
    /// elements in place via the builder.
    pub fn for_each(
        &self,
        v: &mut DeviceVec,
        body: impl FnOnce(&mut KernelBuilder, Reg, Reg),
    ) -> StdparResult<()> {
        self.run(v.len, &[v.ptr], &[], |b, i, bases| body(b, i, bases[0]))
    }

    /// The counted, multi-range form — `std::for_each_n` over a zip of
    /// device vectors, as BabelStream's stdpar variant writes it with
    /// `views::iota` indices. The body receives base registers in `vs`
    /// order.
    pub fn for_each_zip(
        &self,
        n: usize,
        vs: &[&DeviceVec],
        body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]),
    ) -> StdparResult<()> {
        let ptrs: Vec<DevicePtr> = vs.iter().map(|v| v.ptr).collect();
        self.run(n, &ptrs, &[], body)
    }

    /// `std::transform(policy, in.begin(), in.end(), out.begin(), f)`.
    pub fn transform(
        &self,
        input: &DeviceVec,
        output: &mut DeviceVec,
        body: impl FnOnce(&mut KernelBuilder, Reg) -> Reg,
    ) -> StdparResult<()> {
        assert_eq!(input.len, output.len, "transform length mismatch");
        self.run(input.len, &[input.ptr, output.ptr], &[], |b, i, bases| {
            let x = b.ld_elem(Space::Global, Type::F64, bases[0], i);
            let y = body(b, x);
            b.st_elem(Space::Global, bases[1], i, y);
        })
    }

    /// `std::reduce(policy, v.begin(), v.end(), init)` — atomic-add tree.
    pub fn reduce(&self, v: &DeviceVec, init: f64) -> StdparResult<f64> {
        let cell = self.session.alloc_bytes(8).map_err(|e| StdparError::Runtime(e.to_string()))?;
        self.session
            .device()
            .memory()
            .store(cell.0, Value::F64(init))
            .map_err(|e| StdparError::Runtime(e.to_string()))?;
        self.run(v.len, &[v.ptr], &[KernelArg::Ptr(cell)], |b, i, bases| {
            let x = b.ld_elem(Space::Global, Type::F64, bases[0], i);
            let cell_reg = mcmm_gpu_sim::ir::Reg(1); // second param
            let _ = b.atomic(AtomicOp::Add, Space::Global, cell_reg, x);
        })?;
        let out = self
            .session
            .device()
            .memory()
            .load(Type::F64, cell.0)
            .map_err(|e| StdparError::Runtime(e.to_string()))?;
        self.session.free_bytes(cell, 8);
        match out {
            Value::F64(x) => Ok(x),
            _ => unreachable!("reduction cell is f64"),
        }
    }

    /// `std::inclusive_scan` — implemented as a (work-inefficient but
    /// correct) multi-pass Hillis–Steele scan on the device.
    pub fn inclusive_scan(&self, v: &mut DeviceVec) -> StdparResult<()> {
        let n = v.len;
        if n == 0 {
            return Ok(());
        }
        let tmp = DeviceVec::zeroed(self, n)?;
        let mut src = v.ptr;
        let mut dst = tmp.ptr;
        let mut offset = 1usize;
        let mut flipped = false;
        while offset < n {
            let off = offset as i32;
            self.run(n, &[src, dst], &[KernelArg::I32(off)], |b, i, bases| {
                let x = b.ld_elem(Space::Global, Type::F64, bases[0], i);
                let off_reg = mcmm_gpu_sim::ir::Reg(2); // third param
                let j = b.bin(BinOp::Sub, i, off_reg);
                let has_prev = b.cmp(CmpOp::Ge, j, Value::I32(0));
                b.if_else(
                    has_prev,
                    |b| {
                        let prev = b.ld_elem(Space::Global, Type::F64, bases[0], j);
                        let s = b.bin(BinOp::Add, x, prev);
                        b.st_elem(Space::Global, bases[1], i, s);
                    },
                    |b| {
                        b.st_elem(Space::Global, bases[1], i, x);
                    },
                );
            })?;
            std::mem::swap(&mut src, &mut dst);
            flipped = !flipped;
            offset *= 2;
        }
        if flipped {
            // Result currently lives in tmp; copy back.
            self.session
                .device()
                .memory()
                .copy_within(src, v.ptr, n as u64 * 8)
                .map_err(|e| StdparError::Runtime(e.to_string()))?;
        }
        self.session.free_bytes(tmp.ptr, n as u64 * 8);
        Ok(())
    }

    /// Download a vector (generic element path; `DeviceVec` holds `f64`).
    pub fn to_host(&self, v: &DeviceVec) -> StdparResult<Vec<f64>> {
        self.session.download_raw(v.ptr, v.len).map_err(|e| StdparError::Runtime(e.to_string()))
    }
}

/// The C++ pSTL column as a spine [`Frontend`] (§6: "the model with the
/// fastest change at the moment").
pub struct StdparFrontend;

impl Frontend for StdparFrontend {
    fn model(&self) -> Model {
        Model::Standard
    }

    fn open(&self, vendor: Vendor) -> Result<ExecutionSession, FrontendError> {
        ExecutionSession::open(Model::Standard, Language::Cpp, vendor)
    }
}

/// A device-resident `std::vector<double>` analogue.
pub struct DeviceVec {
    ptr: DevicePtr,
    len: usize,
}

impl DeviceVec {
    /// Upload host data (generic element path; `DeviceVec` holds `f64`).
    pub fn from_host(policy: &Policy, data: &[f64]) -> StdparResult<Self> {
        let ptr = policy
            .session
            .alloc_bytes((data.len() * f64::BYTES) as u64)
            .map_err(|e| StdparError::Runtime(e.to_string()))?;
        policy.session.upload_raw(ptr, data).map_err(|e| StdparError::Runtime(e.to_string()))?;
        Ok(Self { ptr, len: data.len() })
    }

    /// Zero-initialised device vector.
    pub fn zeroed(policy: &Policy, len: usize) -> StdparResult<Self> {
        Self::from_host(policy, &vec![0.0; len])
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Fortran `do concurrent` (descriptions 12, 27, 41): loop over `1..=n`
/// with the body receiving the 1-based index and array bases.
///
/// Supported on NVIDIA (nvfortran -stdpar=gpu) and Intel (ifx); **AMD has
/// no venue** and returns [`StdparError::NoSupport`].
pub fn do_concurrent(
    device: Arc<Device>,
    n: usize,
    arrays: &[DevicePtr],
    body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]),
) -> StdparResult<()> {
    let session = ExecutionSession::open_on(device, Model::Standard, Language::Fortran).map_err(
        |e| match e {
            FrontendError::NoRoute { vendor, language, .. } => {
                StdparError::NoSupport { vendor, language }
            }
            other => StdparError::Runtime(other.to_string()),
        },
    )?;
    let mut b = KernelBuilder::new("do_concurrent");
    let bases: Vec<Reg> = arrays.iter().map(|_| b.param(Type::I64)).collect();
    let n_param = b.param(Type::I32);
    let i0 = b.global_thread_id_x();
    let i = b.bin(BinOp::Add, i0, Value::I32(1)); // 1-based, Fortran-style
    let ok = b.cmp(CmpOp::Le, i, n_param);
    let mut f = Some(body);
    let bases_ref = &bases;
    b.if_(ok, |b| {
        if let Some(f) = f.take() {
            f(b, i, bases_ref);
        }
    });
    let kernel = b.finish();
    let mut args: Vec<KernelArg> = arrays.iter().map(|&p| KernelArg::Ptr(p)).collect();
    args.push(KernelArg::I32(n as i32));
    session
        .run(&kernel, n as u64, 256, &args)
        .map(|_| ())
        .map_err(|e| StdparError::Runtime(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmm_gpu_sim::DeviceSpec;

    #[test]
    fn for_each_and_transform_on_nvidia() {
        let policy = par_unseq(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        assert_eq!(policy.toolchain(), "NVIDIA HPC SDK (nvc++ -stdpar=gpu)");
        assert!(policy.namespace_note.is_none());
        let mut v = DeviceVec::from_host(&policy, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        policy
            .for_each(&mut v, |b, i, base| {
                let x = b.ld_elem(Space::Global, Type::F64, base, i);
                let y = b.bin(BinOp::Mul, x, Value::F64(2.0));
                b.st_elem(Space::Global, base, i, y);
            })
            .unwrap();
        assert_eq!(policy.to_host(&v).unwrap(), vec![2.0, 4.0, 6.0, 8.0]);

        let mut out = DeviceVec::zeroed(&policy, 4).unwrap();
        policy.transform(&v, &mut out, |b, x| b.un(UnOp::Sqrt, x)).unwrap();
        let host = policy.to_host(&out).unwrap();
        for (a, b) in host.iter().zip([2.0f64, 4.0, 6.0, 8.0]) {
            assert!((a - b.sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn reduce_matches_sequential() {
        let policy = par_unseq(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let v = DeviceVec::from_host(&policy, &data).unwrap();
        let sum = policy.reduce(&v, 10.0).unwrap();
        assert_eq!(sum, 10.0 + data.iter().sum::<f64>());
    }

    #[test]
    fn inclusive_scan_matches_sequential() {
        let policy = par_unseq(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        for n in [1usize, 2, 3, 17, 64, 100] {
            let data: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
            let mut v = DeviceVec::from_host(&policy, &data).unwrap();
            policy.inclusive_scan(&mut v).unwrap();
            let got = policy.to_host(&v).unwrap();
            let mut expect = data.clone();
            for i in 1..n {
                expect[i] += expect[i - 1];
            }
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn intel_carries_the_namespace_caveat() {
        // §5: "all pSTL functionality currently resides in a custom
        // namespace" — the 'some support' ambivalence.
        let policy = par_unseq(Device::new(DeviceSpec::intel_pvc())).unwrap();
        assert_eq!(policy.toolchain(), "oneDPL (oneapi::dpl::)");
        assert!(policy.namespace_note.unwrap().contains("oneapi::dpl::"));
    }

    #[test]
    fn amd_cpp_works_but_with_experimental_penalty() {
        // Description 26: only experimental venues on AMD.
        let policy = par_unseq(Device::new(DeviceSpec::amd_mi250x())).unwrap();
        assert!(policy.efficiency() < 0.9, "experimental routes must pay: {}", policy.efficiency());
        let mut v = DeviceVec::from_host(&policy, &[1.0; 128]).unwrap();
        policy
            .for_each(&mut v, |b, i, base| {
                let x = b.ld_elem(Space::Global, Type::F64, base, i);
                let y = b.bin(BinOp::Add, x, Value::F64(1.0));
                b.st_elem(Space::Global, base, i, y);
            })
            .unwrap();
        assert!(policy.to_host(&v).unwrap().iter().all(|&x| x == 2.0));
    }

    #[test]
    fn do_concurrent_on_nvidia_and_intel_but_not_amd() {
        // Descriptions 12 & 41 vs 27.
        for spec in [DeviceSpec::nvidia_a100(), DeviceSpec::intel_pvc()] {
            let dev = Device::new(spec);
            let data: Vec<f64> = vec![5.0; 100];
            let ptr = dev.alloc_copy_f64(&data).unwrap();
            do_concurrent(Arc::clone(&dev), 100, &[ptr], |b, i, bases| {
                let i0 = b.bin(BinOp::Sub, i, Value::I32(1));
                let x = b.ld_elem(Space::Global, Type::F64, bases[0], i0);
                let iv = b.cvt(Type::F64, i);
                let y = b.bin(BinOp::Add, x, iv);
                b.st_elem(Space::Global, bases[0], i0, y);
            })
            .unwrap();
            let out = dev.read_f64(ptr, 100).unwrap();
            for (idx, v) in out.iter().enumerate() {
                assert_eq!(*v, 5.0 + (idx + 1) as f64);
            }
        }
        // AMD: description 27 — "no (known) way".
        let dev = Device::new(DeviceSpec::amd_mi250x());
        let err = do_concurrent(dev, 10, &[], |_, _, _| {}).unwrap_err();
        assert!(matches!(
            err,
            StdparError::NoSupport { vendor: Vendor::Amd, language: Language::Fortran }
        ));
    }
}
