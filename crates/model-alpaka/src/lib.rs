//! # mcmm-model-alpaka — an Alpaka-style frontend
//!
//! Alpaka (descriptions 15, 16, 29, 43) abstracts accelerators behind
//! *accelerator tags* and explicit *work division*. The frontend mirrors
//! that: [`AccTag`] selects the backend (CUDA / Clang-CUDA on NVIDIA,
//! HIP / OpenMP on AMD, the **experimental** SYCL backend on Intel since
//! v0.9.0), [`WorkDiv`] carries the grid/block split, and kernels are
//! types implementing [`AlpakaKernel`] — Alpaka kernels are functors, not
//! lambdas.
//!
//! There is no Fortran surface (description 16) — nothing here accepts
//! Fortran, matching the type-level absence in SYCL.

use mcmm_core::provider::Maintenance;
use mcmm_core::taxonomy::{Language, Model, Vendor};
use mcmm_frontend::{Element, ExecutionSession, Frontend, FrontendError};
use mcmm_gpu_sim::device::{Device, KernelArg, LaunchConfig};
use mcmm_gpu_sim::ir::{KernelBuilder, Reg, Type};
use mcmm_gpu_sim::mem::DevicePtr;
use std::fmt;
use std::sync::Arc;

pub use mcmm_gpu_sim::ir::{BinOp, CmpOp, Space, UnOp, Value};

/// Alpaka accelerator tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccTag {
    /// `AccGpuCudaRt` — NVIDIA through nvcc.
    GpuCudaRt,
    /// NVIDIA through Clang's CUDA support.
    GpuCudaClang,
    /// `AccGpuHipRt` — AMD through HIP.
    GpuHipRt,
    /// AMD through the OpenMP backend.
    GpuOmp,
    /// Intel through the experimental SYCL backend (v0.9.0+).
    GpuSyclIntel,
}

impl AccTag {
    /// The registry toolchain realising this tag.
    fn toolchain_name(self) -> &'static str {
        match self {
            AccTag::GpuCudaRt => "Alpaka CUDA backend (nvcc)",
            AccTag::GpuCudaClang => "Alpaka Clang-CUDA backend (clang++)",
            AccTag::GpuHipRt => "Alpaka HIP backend",
            AccTag::GpuOmp => "Alpaka OpenMP backend",
            AccTag::GpuSyclIntel => "Alpaka SYCL backend (experimental, v0.9.0+)",
        }
    }

    /// The vendor each tag targets.
    fn vendor(self) -> Vendor {
        match self {
            AccTag::GpuCudaRt | AccTag::GpuCudaClang => Vendor::Nvidia,
            AccTag::GpuHipRt | AccTag::GpuOmp => Vendor::Amd,
            AccTag::GpuSyclIntel => Vendor::Intel,
        }
    }

    /// The default tag for a vendor (what `alpaka::ExampleDefaultAcc`
    /// resolves to).
    pub fn default_for(vendor: Vendor) -> AccTag {
        match vendor {
            Vendor::Nvidia => AccTag::GpuCudaRt,
            Vendor::Amd => AccTag::GpuHipRt,
            Vendor::Intel => AccTag::GpuSyclIntel,
        }
    }
}

/// Explicit work division (alpaka::WorkDivMembers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkDiv {
    /// Number of blocks in the grid.
    pub blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl WorkDiv {
    /// A valid work division covering `n` elements.
    pub fn for_elements(n: usize, threads_per_block: u32) -> Self {
        let t = threads_per_block.max(1);
        Self { blocks: (n as u32).div_ceil(t).max(1), threads_per_block: t }
    }
}

/// Alpaka kernels are functors: a type with an `operator()` receiving the
/// accelerator (here: the builder + thread index + buffer bases).
pub trait AlpakaKernel {
    /// Build the kernel body for one element index.
    fn operator(&self, acc: &mut KernelBuilder, idx: Reg, buffers: &[Reg]);
}

/// Alpaka errors.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings are fully specified per variant
pub enum AlpakaError {
    /// The tag does not match the device, or the backend is missing.
    WrongAccelerator { tag: AccTag, device_vendor: Vendor },
    /// Runtime failure.
    Runtime(String),
}

impl fmt::Display for AlpakaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlpakaError::WrongAccelerator { tag, device_vendor } => {
                write!(f, "accelerator {tag:?} does not match a {device_vendor} device")
            }
            AlpakaError::Runtime(m) => write!(f, "alpaka: {m}"),
        }
    }
}

impl std::error::Error for AlpakaError {}

/// Result alias.
pub type AlpakaResult<T> = Result<T, AlpakaError>;

/// An accelerator instance: device + tag + resolved route.
pub struct Accelerator {
    session: ExecutionSession,
    tag: AccTag,
}

impl Accelerator {
    /// Construct with an explicit tag; the tag must match the device.
    pub fn new(device: Arc<Device>, tag: AccTag) -> AlpakaResult<Self> {
        let vendor = mcmm_toolchain::isa_vendor(device.spec().isa);
        if tag.vendor() != vendor {
            return Err(AlpakaError::WrongAccelerator { tag, device_vendor: vendor });
        }
        let session = ExecutionSession::open_with_toolchain_on(
            device,
            Model::Alpaka,
            Language::Cpp,
            tag.toolchain_name(),
        )
        .map_err(|e| match e {
            FrontendError::NoRoute { .. } | FrontendError::Discontinued { .. } => {
                AlpakaError::WrongAccelerator { tag, device_vendor: vendor }
            }
            other => AlpakaError::Runtime(other.to_string()),
        })?;
        Ok(Self { session, tag })
    }

    /// Construct the default accelerator for a device.
    pub fn default_for_device(device: Arc<Device>) -> AlpakaResult<Self> {
        let vendor = mcmm_toolchain::isa_vendor(device.spec().isa);
        Self::new(device, AccTag::default_for(vendor))
    }

    /// The accelerator tag.
    pub fn tag(&self) -> AccTag {
        self.tag
    }

    /// The shared execution session underneath this accelerator.
    pub fn session(&self) -> &ExecutionSession {
        &self.session
    }

    /// Is the backend experimental (Intel SYCL, description 43)?
    pub fn is_experimental(&self) -> bool {
        self.session.route().maintenance == Maintenance::Experimental
    }

    /// Allocate a device buffer from host data.
    pub fn alloc_buf(&self, data: &[f64]) -> AlpakaResult<DevicePtr> {
        let ptr = self
            .session
            .alloc_bytes((data.len() * f64::BYTES) as u64)
            .map_err(|e| AlpakaError::Runtime(e.to_string()))?;
        self.session.upload_raw(ptr, data).map_err(|e| AlpakaError::Runtime(e.to_string()))?;
        Ok(ptr)
    }

    /// Read a device buffer back.
    pub fn memcpy_to_host(&self, ptr: DevicePtr, n: usize) -> AlpakaResult<Vec<f64>> {
        self.session.download_raw::<f64>(ptr, n).map_err(|e| AlpakaError::Runtime(e.to_string()))
    }

    /// `alpaka::exec` — run a kernel functor with an explicit work
    /// division over `n` elements.
    pub fn exec<K: AlpakaKernel>(
        &self,
        work: WorkDiv,
        n: usize,
        kernel: &K,
        buffers: &[DevicePtr],
    ) -> AlpakaResult<()> {
        let mut b = KernelBuilder::new("alpaka_kernel");
        let bases: Vec<Reg> = buffers.iter().map(|_| b.param(Type::I64)).collect();
        let n_param = b.param(Type::I32);
        let i = b.global_thread_id_x();
        let ok = b.cmp(CmpOp::Lt, i, n_param);
        // Functor trait takes &self, so it can be invoked inside the
        // closure without the Option dance.
        let bases_ref = &bases;
        b.if_(ok, |b| kernel.operator(b, i, bases_ref));
        let ir = b.finish();
        let module = self.session.compile(&ir).map_err(|e| AlpakaError::Runtime(e.to_string()))?;
        let mut args: Vec<KernelArg> = buffers.iter().map(|&p| KernelArg::Ptr(p)).collect();
        args.push(KernelArg::I32(n as i32));
        // Alpaka's work division is explicit, so the launch geometry comes
        // from the WorkDiv rather than the session's linear default.
        let cfg = LaunchConfig {
            grid_dim: work.blocks,
            block_dim: work.threads_per_block,
            policy: Default::default(),
            efficiency: self.session.efficiency(),
        };
        self.session
            .launch(&module, cfg, &args)
            .map(|_| ())
            .map_err(|e| AlpakaError::Runtime(e.to_string()))
    }
}

/// [`Frontend`] registration for the shared BabelStream adapter.
pub struct AlpakaFrontend;

impl Frontend for AlpakaFrontend {
    fn model(&self) -> Model {
        Model::Alpaka
    }

    fn open(&self, vendor: Vendor) -> Result<ExecutionSession, FrontendError> {
        ExecutionSession::open(Model::Alpaka, Language::Cpp, vendor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmm_gpu_sim::DeviceSpec;

    struct AxpyKernel {
        alpha: f64,
    }

    impl AlpakaKernel for AxpyKernel {
        fn operator(&self, acc: &mut KernelBuilder, idx: Reg, buffers: &[Reg]) {
            let x = acc.ld_elem(Space::Global, Type::F64, buffers[0], idx);
            let y = acc.ld_elem(Space::Global, Type::F64, buffers[1], idx);
            let ax = acc.bin(BinOp::Mul, x, Value::F64(self.alpha));
            let s = acc.bin(BinOp::Add, ax, y);
            acc.st_elem(Space::Global, buffers[1], idx, s);
        }
    }

    #[test]
    fn default_accelerators_cover_all_vendors() {
        for spec in DeviceSpec::presets() {
            let name = spec.name;
            let acc = Accelerator::default_for_device(Device::new(spec)).unwrap();
            let n = 333;
            let x = acc.alloc_buf(&(0..n).map(|i| i as f64).collect::<Vec<_>>()).unwrap();
            let y = acc.alloc_buf(&vec![100.0; n]).unwrap();
            acc.exec(WorkDiv::for_elements(n, 64), n, &AxpyKernel { alpha: 2.0 }, &[x, y]).unwrap();
            let out = acc.memcpy_to_host(y, n).unwrap();
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, 2.0 * i as f64 + 100.0, "{name}");
            }
        }
    }

    #[test]
    fn intel_backend_is_experimental() {
        // Description 43: experimental SYCL support since v0.9.0.
        let acc = Accelerator::default_for_device(Device::new(DeviceSpec::intel_pvc())).unwrap();
        assert_eq!(acc.tag(), AccTag::GpuSyclIntel);
        assert!(acc.is_experimental());
        let nv = Accelerator::default_for_device(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        assert!(!nv.is_experimental());
    }

    #[test]
    fn mismatched_tag_is_rejected() {
        match Accelerator::new(Device::new(DeviceSpec::amd_mi250x()), AccTag::GpuCudaRt) {
            Err(AlpakaError::WrongAccelerator {
                tag: AccTag::GpuCudaRt,
                device_vendor: Vendor::Amd,
            }) => {}
            Err(other) => panic!("unexpected error {other:?}"),
            Ok(_) => panic!("CUDA tag must not bind an AMD device"),
        }
    }

    #[test]
    fn alternate_backends_work() {
        // NVIDIA via Clang-CUDA, AMD via the OpenMP backend.
        let acc =
            Accelerator::new(Device::new(DeviceSpec::nvidia_a100()), AccTag::GpuCudaClang).unwrap();
        let n = 64;
        let x = acc.alloc_buf(&vec![1.0; n]).unwrap();
        let y = acc.alloc_buf(&vec![1.0; n]).unwrap();
        acc.exec(WorkDiv::for_elements(n, 32), n, &AxpyKernel { alpha: 1.0 }, &[x, y]).unwrap();
        assert!(acc.memcpy_to_host(y, n).unwrap().iter().all(|&v| v == 2.0));

        let acc = Accelerator::new(Device::new(DeviceSpec::amd_mi250x()), AccTag::GpuOmp).unwrap();
        let x = acc.alloc_buf(&vec![2.0; n]).unwrap();
        let y = acc.alloc_buf(&vec![0.0; n]).unwrap();
        acc.exec(WorkDiv::for_elements(n, 32), n, &AxpyKernel { alpha: 3.0 }, &[x, y]).unwrap();
        assert!(acc.memcpy_to_host(y, n).unwrap().iter().all(|&v| v == 6.0));
    }

    #[test]
    fn workdiv_covers_elements() {
        let w = WorkDiv::for_elements(1000, 128);
        assert!(u64::from(w.blocks) * u64::from(w.threads_per_block) >= 1000);
        let w = WorkDiv::for_elements(0, 128);
        assert_eq!(w.blocks, 1);
        let w = WorkDiv::for_elements(5, 0);
        assert_eq!(w.threads_per_block, 1);
        assert_eq!(w.blocks, 5);
    }
}
