//! # mcmm-model-openmp — an OpenMP-target-offload-style frontend
//!
//! OpenMP is "supported on all three platforms — and even for both C++ and
//! Fortran" (§6); it is the paper's portability workhorse. This frontend
//! mirrors the directive surface as a builder:
//!
//! ```text
//! #pragma omp target teams distribute parallel for \
//!         map(to: x[0:n]) map(tofrom: y[0:n]) reduction(+: sum)
//! ```
//!
//! becomes a target region builder with [`MapClause`]s and an optional
//! [`Reduction`]. Each vendor resolves to its compiler route (NVHPC, GCC,
//! Clang, AOMP, icpx, Cray), and — as in the paper — the vendor compilers
//! implement *subsets* of the specification ([`OmpFeature`]): requesting a
//! feature a compiler lacks fails with [`OmpError::UnsupportedFeature`],
//! the executable form of the "some support" rating.

use mcmm_core::taxonomy::{Language, Model, Vendor};
use mcmm_frontend::{ExecutionSession, Frontend, FrontendError};
use mcmm_gpu_sim::device::{Device, KernelArg};
use mcmm_gpu_sim::ir::{AtomicOp, KernelBuilder, Reg, Space, Type};
use mcmm_gpu_sim::mem::DevicePtr;
use std::fmt;
use std::sync::Arc;

pub use mcmm_gpu_sim::ir::{BinOp, CmpOp, UnOp, Value};

/// OpenMP offloading features beyond the baseline (4.5 target offload).
///
/// The per-compiler support sets reflect the paper's description 9/24/38:
/// NVHPC implements "only a subset of the entire OpenMP 5.0 standard";
/// AOMP "most OpenMP 4.5 and some OpenMP 5.0"; Intel "all OpenMP 4.5 and
/// most 5.0/5.1".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OmpFeature {
    /// Baseline `target teams distribute parallel for` (OpenMP 4.5).
    TargetOffload45,
    /// `reduction` clauses on target regions (4.5, but patchy on GPUs).
    TargetReduction,
    /// OpenMP 5.0 `loop` construct.
    LoopConstruct50,
    /// 5.0 unified shared memory requirement.
    UnifiedSharedMemory50,
    /// 5.1 `metadirective`.
    Metadirective51,
}

/// Which features each virtual compiler supports.
fn supported_features(toolchain: &str) -> &'static [OmpFeature] {
    use OmpFeature::*;
    match toolchain {
        // NVHPC: subset of 5.0 — no metadirective, no loop construct.
        "NVIDIA HPC SDK (nvc/nvc++ -mp)" | "NVIDIA HPC SDK (nvfortran -mp)" => {
            &[TargetOffload45, TargetReduction, UnifiedSharedMemory50]
        }
        // GCC: 4.5 complete; 5.x in progress.
        "GCC (-fopenmp -foffload=nvptx-none)"
        | "GCC (gfortran -fopenmp)"
        | "GCC (-fopenmp, amdgcn)" => &[TargetOffload45, TargetReduction],
        // Clang: 4.5 + selected 5.0/5.1.
        "Clang (-fopenmp -fopenmp-targets=nvptx64)" => {
            &[TargetOffload45, TargetReduction, LoopConstruct50]
        }
        // AOMP: most 4.5, some 5.0.
        "AOMP (Clang-based)" | "AOMP (flang -fopenmp)" | "AOMP (NVIDIA target)" => {
            &[TargetOffload45, TargetReduction, LoopConstruct50]
        }
        // Cray: subset of 5.0/5.1.
        "HPE Cray PE (CC -fopenmp)" | "HPE Cray PE (ftn -fopenmp)" => {
            &[TargetOffload45, TargetReduction, LoopConstruct50, Metadirective51]
        }
        // Intel: all 4.5, most 5.0/5.1.
        "Intel oneAPI DPC++/C++ (icpx -qopenmp)" | "Intel Fortran Compiler ifx (-qopenmp)" => &[
            TargetOffload45,
            TargetReduction,
            LoopConstruct50,
            UnifiedSharedMemory50,
            Metadirective51,
        ],
        // LLVM Flang and other minimal routes: baseline only.
        _ => &[TargetOffload45],
    }
}

/// Errors raised by the OpenMP frontend.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings are fully specified per variant
pub enum OmpError {
    /// No OpenMP compiler for this vendor/language.
    NoCompiler { vendor: Vendor, language: Language },
    /// The selected compiler lacks a requested feature — the executable
    /// form of the paper's "some support" rating.
    UnsupportedFeature { toolchain: String, feature: OmpFeature },
    /// Runtime/launch failure.
    Runtime(String),
}

impl fmt::Display for OmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmpError::NoCompiler { vendor, language } => {
                write!(f, "no OpenMP offload compiler for {language} on {vendor}")
            }
            OmpError::UnsupportedFeature { toolchain, feature } => {
                write!(f, "{toolchain} does not implement {feature:?}")
            }
            OmpError::Runtime(m) => write!(f, "openmp runtime: {m}"),
        }
    }
}

impl std::error::Error for OmpError {}

/// Result alias.
pub type OmpResult<T> = Result<T, OmpError>;

/// A `map` clause direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapDir {
    /// `map(to: …)` — upload only.
    To,
    /// `map(from: …)` — download only.
    From,
    /// `map(tofrom: …)` — upload and download.
    ToFrom,
}

/// One `map(dir: array[0:n])` clause over host `f64` data.
pub struct MapClause<'a> {
    /// Transfer direction.
    pub dir: MapDir,
    /// The host array being mapped.
    pub host: &'a mut [f64],
}

impl<'a> MapClause<'a> {
    /// `map(to: host[0:n])`.
    pub fn to(host: &'a mut [f64]) -> Self {
        Self { dir: MapDir::To, host }
    }
    /// `map(from: host[0:n])`.
    pub fn from(host: &'a mut [f64]) -> Self {
        Self { dir: MapDir::From, host }
    }
    /// `map(tofrom: host[0:n])`.
    pub fn tofrom(host: &'a mut [f64]) -> Self {
        Self { dir: MapDir::ToFrom, host }
    }
}

/// A `reduction(+|min|max : scalar)` clause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reduction {
    /// `reduction(+: …)` with the given initial value.
    Sum(f64),
    /// `reduction(min: …)` with the given initial value.
    Min(f64),
    /// `reduction(max: …)` with the given initial value.
    Max(f64),
}

impl Reduction {
    fn identity(self) -> f64 {
        match self {
            Reduction::Sum(v) | Reduction::Min(v) | Reduction::Max(v) => v,
        }
    }
    fn atomic_op(self) -> AtomicOp {
        match self {
            Reduction::Sum(_) => AtomicOp::Add,
            Reduction::Min(_) => AtomicOp::Min,
            Reduction::Max(_) => AtomicOp::Max,
        }
    }
}

/// The OpenMP device runtime for one device + language — a directive-
/// flavored surface over the shared [`ExecutionSession`] spine.
pub struct OmpDevice {
    session: ExecutionSession,
}

impl OmpDevice {
    /// Bind with the best registered compiler (C++).
    pub fn new(device: Arc<Device>) -> OmpResult<Self> {
        Self::with_language(device, Language::Cpp)
    }

    /// Bind a Fortran OpenMP compiler (description 10/25/39).
    pub fn new_fortran(device: Arc<Device>) -> OmpResult<Self> {
        Self::with_language(device, Language::Fortran)
    }

    fn with_language(device: Arc<Device>, language: Language) -> OmpResult<Self> {
        let session =
            ExecutionSession::open_on(device, Model::OpenMp, language).map_err(|e| match e {
                FrontendError::NoRoute { vendor, language, .. } => {
                    OmpError::NoCompiler { vendor, language }
                }
                other => OmpError::Runtime(other.to_string()),
            })?;
        Ok(Self { session })
    }

    /// Bind a *specific* compiler by toolchain name (for the feature-subset
    /// tests and the ECP-BoF-style comparisons).
    pub fn with_compiler(device: Arc<Device>, toolchain: &str) -> OmpResult<Self> {
        let vendor = mcmm_toolchain::isa_vendor(device.spec().isa);
        for language in [Language::Cpp, Language::Fortran] {
            match ExecutionSession::open_with_toolchain_on(
                Arc::clone(&device),
                Model::OpenMp,
                language,
                toolchain,
            ) {
                Ok(session) => return Ok(Self { session }),
                Err(FrontendError::NoRoute { .. }) => continue,
                Err(other) => return Err(OmpError::Runtime(other.to_string())),
            }
        }
        Err(OmpError::NoCompiler { vendor, language: Language::Cpp })
    }

    /// The resolved toolchain name.
    pub fn toolchain(&self) -> &'static str {
        self.session.toolchain()
    }

    /// The execution-spine session under this runtime.
    pub fn session(&self) -> &ExecutionSession {
        &self.session
    }

    /// Does the bound compiler implement a feature?
    pub fn supports(&self, feature: OmpFeature) -> bool {
        supported_features(self.session.toolchain()).contains(&feature)
    }

    /// Execute a target region:
    /// `#pragma omp target teams distribute parallel for` over `0..n`.
    ///
    /// The body receives the builder, the loop index, and base registers
    /// for each map clause (in order). With a reduction, a final register
    /// (the last base) addresses the 8-byte reduction cell.
    pub fn target_teams_distribute_parallel_for(
        &self,
        n: usize,
        maps: &mut [MapClause<'_>],
        reduction: Option<Reduction>,
        features: &[OmpFeature],
        body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]),
    ) -> OmpResult<Option<f64>> {
        // Feature gate: baseline + reduction + anything explicitly used.
        let mut needed = vec![OmpFeature::TargetOffload45];
        if reduction.is_some() {
            needed.push(OmpFeature::TargetReduction);
        }
        needed.extend_from_slice(features);
        for f in needed {
            if !self.supports(f) {
                return Err(OmpError::UnsupportedFeature {
                    toolchain: self.session.toolchain().to_owned(),
                    feature: f,
                });
            }
        }

        // Map "to"/"tofrom" data in.
        let mut ptrs: Vec<(DevicePtr, usize)> = Vec::with_capacity(maps.len());
        for m in maps.iter() {
            let ptr = self
                .session
                .alloc_bytes(m.host.len() as u64 * 8)
                .map_err(|e| OmpError::Runtime(e.to_string()))?;
            if matches!(m.dir, MapDir::To | MapDir::ToFrom) {
                self.session
                    .upload_raw(ptr, m.host)
                    .map_err(|e| OmpError::Runtime(e.to_string()))?;
            }
            ptrs.push((ptr, m.host.len()));
        }
        let red_ptr = match reduction {
            Some(r) => {
                let p =
                    self.session.alloc_bytes(8).map_err(|e| OmpError::Runtime(e.to_string()))?;
                self.session
                    .device()
                    .memory()
                    .store(p.0, Value::F64(r.identity()))
                    .map_err(|e| OmpError::Runtime(e.to_string()))?;
                Some(p)
            }
            None => None,
        };

        // Build the kernel.
        let mut b = KernelBuilder::new("omp_target_region");
        let mut bases: Vec<Reg> = ptrs.iter().map(|_| b.param(Type::I64)).collect();
        if red_ptr.is_some() {
            bases.push(b.param(Type::I64));
        }
        let n_param = b.param(Type::I32);
        let i = b.global_thread_id_x();
        let ok = b.cmp(CmpOp::Lt, i, n_param);
        let mut f = Some(body);
        let bases_ref = &bases;
        b.if_(ok, |b| {
            if let Some(f) = f.take() {
                f(b, i, bases_ref);
            }
        });
        let kernel = b.finish();

        let mut args: Vec<KernelArg> = ptrs.iter().map(|&(p, _)| KernelArg::Ptr(p)).collect();
        if let Some(p) = red_ptr {
            args.push(KernelArg::Ptr(p));
        }
        args.push(KernelArg::I32(n as i32));
        self.session
            .run(&kernel, n as u64, 256, &args)
            .map_err(|e| OmpError::Runtime(e.to_string()))?;

        // Map "from"/"tofrom" data out; free everything.
        for (m, &(ptr, len)) in maps.iter_mut().zip(&ptrs) {
            if matches!(m.dir, MapDir::From | MapDir::ToFrom) {
                let out: Vec<f64> = self
                    .session
                    .download_raw(ptr, len)
                    .map_err(|e| OmpError::Runtime(e.to_string()))?;
                m.host.copy_from_slice(&out);
            }
            self.session.free_bytes(ptr, len as u64 * 8);
        }
        let result = match red_ptr {
            Some(p) => {
                let v = self
                    .session
                    .device()
                    .memory()
                    .load(Type::F64, p.0)
                    .map_err(|e| OmpError::Runtime(e.to_string()))?;
                self.session.free_bytes(p, 8);
                match v {
                    Value::F64(x) => Some(x),
                    _ => unreachable!("reduction cell is f64"),
                }
            }
            None => None,
        };
        Ok(result)
    }

    /// Open a persistent `#pragma omp target data` region: arrays stay
    /// resident across multiple target regions (what BabelStream-style
    /// codes do).
    pub fn target_data(&self) -> TargetData<'_> {
        TargetData { omp: self, arrays: Vec::new() }
    }

    /// Atomic reduction helper for bodies: `reduction_cell += v`.
    pub fn atomic_reduce(b: &mut KernelBuilder, red: Reduction, cell: Reg, v: Reg) {
        let _ = b.atomic(red.atomic_op(), Space::Global, cell, v);
    }
}

/// A persistent `#pragma omp target data` region. Arrays mapped into the
/// region stay on the device across [`TargetData::parallel_for`] calls;
/// [`TargetData::update_from`] mirrors `#pragma omp target update from`.
pub struct TargetData<'a> {
    omp: &'a OmpDevice,
    arrays: Vec<(DevicePtr, usize)>,
}

impl<'a> TargetData<'a> {
    /// `map(to: data[0:n])` — upload; returns the array's region index.
    pub fn map_to(&mut self, data: &[f64]) -> OmpResult<usize> {
        let index = self.map_alloc(data.len())?;
        self.omp
            .session
            .upload_raw(self.arrays[index].0, data)
            .map_err(|e| OmpError::Runtime(e.to_string()))?;
        Ok(index)
    }

    /// `map(alloc: …[0:n])` — device-only allocation.
    pub fn map_alloc(&mut self, len: usize) -> OmpResult<usize> {
        let ptr = self
            .omp
            .session
            .alloc_bytes(len as u64 * 8)
            .map_err(|e| OmpError::Runtime(e.to_string()))?;
        self.arrays.push((ptr, len));
        Ok(self.arrays.len() - 1)
    }

    /// A target region over `0..n` inside this data region: the body gets
    /// base registers for every mapped array, in mapping order. Returns
    /// the launch's modeled report.
    pub fn parallel_for(
        &self,
        n: usize,
        body: impl FnOnce(&mut KernelBuilder, Reg, &[Reg]),
    ) -> OmpResult<mcmm_gpu_sim::device::LaunchReport> {
        let mut b = KernelBuilder::new("omp_target_region");
        let bases: Vec<Reg> = self.arrays.iter().map(|_| b.param(Type::I64)).collect();
        let n_param = b.param(Type::I32);
        let i = b.global_thread_id_x();
        let ok = b.cmp(CmpOp::Lt, i, n_param);
        let mut f = Some(body);
        let bases_ref = &bases;
        b.if_(ok, |b| {
            if let Some(f) = f.take() {
                f(b, i, bases_ref);
            }
        });
        let kernel = b.finish();
        let mut args: Vec<KernelArg> =
            self.arrays.iter().map(|&(p, _)| KernelArg::Ptr(p)).collect();
        args.push(KernelArg::I32(n as i32));
        self.omp
            .session
            .run(&kernel, n as u64, 256, &args)
            .map_err(|e| OmpError::Runtime(e.to_string()))
    }

    /// `#pragma omp target update from(...)` — read an array back.
    pub fn update_from(&self, index: usize) -> OmpResult<Vec<f64>> {
        let (ptr, len) = self.arrays[index];
        self.omp.session.download_raw(ptr, len).map_err(|e| OmpError::Runtime(e.to_string()))
    }

    /// Close the region, freeing device memory.
    pub fn close(self) {
        for (ptr, len) in self.arrays {
            self.omp.session.free_bytes(ptr, len as u64 * 8);
        }
    }
}

/// The OpenMP column as a spine [`Frontend`] (§6: "supported on all three
/// platforms — and even for both C++ and Fortran").
pub struct OpenMpFrontend;

impl Frontend for OpenMpFrontend {
    fn model(&self) -> Model {
        Model::OpenMp
    }

    fn open(&self, vendor: Vendor) -> Result<ExecutionSession, FrontendError> {
        ExecutionSession::open(Model::OpenMp, Language::Cpp, vendor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmm_gpu_sim::DeviceSpec;

    #[test]
    fn target_data_region_keeps_arrays_resident() {
        let omp = OmpDevice::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        let mut region = omp.target_data();
        let a = region.map_to(&vec![1.0; 64]).unwrap();
        let b = region.map_alloc(64).unwrap();
        // Two successive regions over the same device arrays.
        region
            .parallel_for(64, |k, i, p| {
                let v = k.ld_elem(Space::Global, Type::F64, p[0], i);
                let w = k.bin(BinOp::Mul, v, Value::F64(3.0));
                k.st_elem(Space::Global, p[1], i, w);
            })
            .unwrap();
        region
            .parallel_for(64, |k, i, p| {
                let v = k.ld_elem(Space::Global, Type::F64, p[1], i);
                let w = k.bin(BinOp::Add, v, Value::F64(1.0));
                k.st_elem(Space::Global, p[1], i, w);
            })
            .unwrap();
        let out = region.update_from(b).unwrap();
        assert!(out.iter().all(|&v| v == 4.0));
        let unchanged = region.update_from(a).unwrap();
        assert!(unchanged.iter().all(|&v| v == 1.0));
        region.close();
    }

    #[test]
    fn openmp_offload_works_on_all_vendors_in_both_languages() {
        // §6: "OpenMP … is supported on all three platforms — and even for
        // both C++ and Fortran."
        for spec in DeviceSpec::presets() {
            for fortran in [false, true] {
                let dev = Device::new(spec.clone());
                let omp = if fortran {
                    OmpDevice::new_fortran(dev).unwrap()
                } else {
                    OmpDevice::new(dev).unwrap()
                };
                let n = 512;
                let mut x: Vec<f64> = (0..n).map(|i| i as f64).collect();
                let mut y = vec![1.0f64; n];
                let mut maps = [MapClause::to(&mut x), MapClause::tofrom(&mut y)];
                omp.target_teams_distribute_parallel_for(n, &mut maps, None, &[], |b, i, p| {
                    let xv = b.ld_elem(Space::Global, Type::F64, p[0], i);
                    let yv = b.ld_elem(Space::Global, Type::F64, p[1], i);
                    let ax = b.bin(BinOp::Mul, xv, Value::F64(2.0));
                    let s = b.bin(BinOp::Add, ax, yv);
                    b.st_elem(Space::Global, p[1], i, s);
                })
                .unwrap();
                for (i, v) in y.iter().enumerate() {
                    assert_eq!(*v, 2.0 * i as f64 + 1.0, "{} fortran={fortran}", spec.name);
                }
            }
        }
    }

    #[test]
    fn reduction_sums_correctly() {
        let omp = OmpDevice::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        let n = 1000;
        let mut x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut maps = [MapClause::to(&mut x)];
        let sum = omp
            .target_teams_distribute_parallel_for(
                n,
                &mut maps,
                Some(Reduction::Sum(0.0)),
                &[],
                |b, i, p| {
                    let xv = b.ld_elem(Space::Global, Type::F64, p[0], i);
                    OmpDevice::atomic_reduce(b, Reduction::Sum(0.0), p[1], xv);
                },
            )
            .unwrap()
            .unwrap();
        assert_eq!(sum, (0..n).map(|i| i as f64).sum::<f64>());
    }

    #[test]
    fn min_max_reductions() {
        let omp = OmpDevice::new(Device::new(DeviceSpec::amd_mi250x())).unwrap();
        let n = 256;
        let mut x: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64).collect();
        x[77] = -5.0;
        let expected_min = -5.0;
        let mut maps = [MapClause::to(&mut x)];
        let min = omp
            .target_teams_distribute_parallel_for(
                n,
                &mut maps,
                Some(Reduction::Min(f64::INFINITY)),
                &[],
                |b, i, p| {
                    let xv = b.ld_elem(Space::Global, Type::F64, p[0], i);
                    OmpDevice::atomic_reduce(b, Reduction::Min(0.0), p[1], xv);
                },
            )
            .unwrap()
            .unwrap();
        assert_eq!(min, expected_min);
    }

    #[test]
    fn feature_subsets_match_descriptions() {
        // NVHPC: no 5.0 loop construct (subset of 5.0) — "some support".
        let nv = OmpDevice::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        assert_eq!(nv.toolchain(), "NVIDIA HPC SDK (nvc/nvc++ -mp)");
        assert!(nv.supports(OmpFeature::TargetOffload45));
        assert!(!nv.supports(OmpFeature::LoopConstruct50));
        // Intel: full coverage including metadirective.
        let intel = OmpDevice::new(Device::new(DeviceSpec::intel_pvc())).unwrap();
        assert!(intel.supports(OmpFeature::Metadirective51));
    }

    #[test]
    fn missing_feature_fails_the_compile() {
        let nv = OmpDevice::new(Device::new(DeviceSpec::nvidia_a100())).unwrap();
        let mut x = vec![0.0f64; 8];
        let mut maps = [MapClause::tofrom(&mut x)];
        let err = nv
            .target_teams_distribute_parallel_for(
                8,
                &mut maps,
                None,
                &[OmpFeature::Metadirective51],
                |_, _, _| {},
            )
            .unwrap_err();
        match err {
            OmpError::UnsupportedFeature { feature, .. } => {
                assert_eq!(feature, OmpFeature::Metadirective51);
            }
            other => panic!("expected UnsupportedFeature, got {other:?}"),
        }
    }

    #[test]
    fn specific_compilers_can_be_requested() {
        // The ECP BoF comparison style: same region, different compilers.
        let dev = Device::new(DeviceSpec::nvidia_a100());
        for tc in [
            "NVIDIA HPC SDK (nvc/nvc++ -mp)",
            "GCC (-fopenmp -foffload=nvptx-none)",
            "Clang (-fopenmp -fopenmp-targets=nvptx64)",
            "AOMP (NVIDIA target)",
            "HPE Cray PE (CC -fopenmp)",
        ] {
            let omp = OmpDevice::with_compiler(Arc::clone(&dev), tc).unwrap();
            assert_eq!(omp.toolchain(), tc);
            let mut x = vec![1.0f64; 64];
            let mut maps = [MapClause::tofrom(&mut x)];
            omp.target_teams_distribute_parallel_for(64, &mut maps, None, &[], |b, i, p| {
                let v = b.ld_elem(Space::Global, Type::F64, p[0], i);
                let w = b.bin(BinOp::Add, v, Value::F64(1.0));
                b.st_elem(Space::Global, p[0], i, w);
            })
            .unwrap();
            assert!(x.iter().all(|&v| v == 2.0), "{tc}");
        }
    }

    #[test]
    fn map_from_writes_without_reading_garbage() {
        let omp = OmpDevice::new(Device::new(DeviceSpec::intel_pvc())).unwrap();
        let mut out = vec![-1.0f64; 32];
        let mut maps = [MapClause::from(&mut out)];
        omp.target_teams_distribute_parallel_for(32, &mut maps, None, &[], |b, i, p| {
            let iv = b.cvt(Type::F64, i);
            b.st_elem(Space::Global, p[0], i, iv);
        })
        .unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }
}
