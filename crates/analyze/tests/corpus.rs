//! The seeded-defect corpus must trip the analyzer — each kernel with
//! exactly the diagnostic code its defect was seeded for — and known-clean
//! kernels must stay clean.

use mcmm_analyze::{analyze, corpus, AnalysisOptions, MCA001, MCA002, MCA003, MCA004};
use mcmm_gpu_sim::ir::{BinOp, CmpOp, KernelBuilder, Space, Type, Value};
use std::collections::BTreeSet;

#[test]
fn every_seeded_kernel_is_valid_ir() {
    for entry in corpus::seeded_defects() {
        assert_eq!(entry.kernel.validate(), Ok(()), "corpus kernel {}", entry.kernel.name);
    }
}

#[test]
fn every_seeded_kernel_is_flagged_with_its_code() {
    for entry in corpus::seeded_defects() {
        let report = analyze(&entry.kernel, &entry.opts);
        assert!(
            report.has_code(entry.expect),
            "kernel `{}` should emit {} but reported {:?}",
            entry.kernel.name,
            entry.expect,
            report.diagnostics
        );
    }
}

#[test]
fn seeded_kernels_emit_only_their_seeded_code() {
    for entry in corpus::seeded_defects() {
        let report = analyze(&entry.kernel, &entry.opts);
        assert_eq!(
            report.codes(),
            BTreeSet::from([entry.expect]),
            "kernel `{}` emitted extra codes: {:?}",
            entry.kernel.name,
            report.diagnostics
        );
    }
}

#[test]
fn at_least_two_kernels_per_code() {
    let corpus = corpus::seeded_defects();
    for code in [MCA001, MCA002, MCA003, MCA004] {
        let n = corpus.iter().filter(|e| e.expect == code).count();
        assert!(n >= 2, "only {n} corpus kernels for {code}");
    }
}

#[test]
fn diagnostics_carry_kernel_name_and_code_in_display() {
    for entry in corpus::seeded_defects() {
        let report = analyze(&entry.kernel, &entry.opts);
        let d = &report.diagnostics[0];
        let shown = d.to_string();
        assert!(shown.starts_with(d.code), "display should lead with the code: {shown}");
        assert!(shown.contains(&entry.kernel.name), "display should name the kernel: {shown}");
    }
}

/// The canonical guarded SAXPY — the shape every frontend in the workspace
/// emits — must be clean under every check.
#[test]
fn guarded_saxpy_is_clean() {
    let mut k = KernelBuilder::new("saxpy");
    let a = k.param(Type::F32);
    let x = k.param(Type::I64);
    let y = k.param(Type::I64);
    let n = k.param(Type::I32);
    let i = k.global_thread_id_x();
    let ok = k.cmp(CmpOp::Lt, i, n);
    k.if_(ok, |k| {
        let xi = k.ld_elem(Space::Global, Type::F32, x, i);
        let yi = k.ld_elem(Space::Global, Type::F32, y, i);
        let ax = k.bin(BinOp::Mul, a, xi);
        let s = k.bin(BinOp::Add, ax, yi);
        k.st_elem(Space::Global, y, i, s);
    });
    let kernel = k.finish();
    let report = analyze(&kernel, &AnalysisOptions::default());
    assert!(report.is_clean(), "guarded saxpy flagged: {:?}", report.diagnostics);
}

/// The guard actually matters: give the analyzer concrete extents and the
/// guarded kernel stays clean, while removing the guard trips MCA004.
#[test]
fn bounds_check_respects_the_guard() {
    let build = |guarded: bool| {
        let mut k = KernelBuilder::new(if guarded { "guarded" } else { "unguarded" });
        let x = k.param(Type::I64);
        let n = k.param(Type::I32);
        let i = k.thread_id_x();
        let body = |k: &mut KernelBuilder| {
            k.st_elem(Space::Global, x, i, Value::I32(1));
        };
        if guarded {
            let ok = k.cmp(CmpOp::Lt, i, n);
            k.if_(ok, body);
        } else {
            body(&mut k);
        }
        k.finish()
    };
    // 100 elements, n = 100, block_dim = 256: lanes 100..255 are out of
    // bounds unless the `i < n` guard masks them off.
    let mut opts = AnalysisOptions::default();
    opts.buffer_bytes.insert(0, 100 * 4);
    opts.param_values.insert(1, 100);

    let clean = analyze(&build(true), &opts);
    assert!(clean.is_clean(), "guarded store flagged: {:?}", clean.diagnostics);
    let dirty = analyze(&build(false), &opts);
    assert!(dirty.has_code(MCA004), "unguarded store missed: {:?}", dirty.diagnostics);
}

/// A correctly-barriered tree reduction (the interpreter's own test
/// kernel shape) must not be flagged as racy, while the same kernel with
/// the barrier removed must be.
#[test]
fn barrier_separates_reduction_phases() {
    let build = |with_barrier: bool| {
        let mut k = KernelBuilder::new(if with_barrier { "reduce" } else { "reduce_racy" });
        let sh = k.shared_alloc(4 * 64);
        let tid = k.thread_id_x();
        k.st_elem(Space::Shared, sh, tid, tid);
        if with_barrier {
            k.barrier();
        }
        // Lane 0 reads every slot — races with all other lanes' writes
        // unless the barrier closes the interval first.
        let zero = k.imm(Value::I32(0));
        let is0 = k.cmp(CmpOp::Eq, tid, Value::I32(0));
        k.if_(is0, |k| {
            let _ = k.ld_elem(Space::Shared, Type::I32, sh, zero);
            let _ = k.ld_elem(Space::Shared, Type::I32, sh, Value::I32(63));
        });
        k.finish()
    };
    let opts = AnalysisOptions { block_dim: 64, ..AnalysisOptions::default() };
    let clean = analyze(&build(true), &opts);
    assert!(clean.is_clean(), "barriered reduction flagged: {:?}", clean.diagnostics);
    let dirty = analyze(&build(false), &opts);
    assert!(dirty.has_code(MCA003), "unbarriered reduction missed: {:?}", dirty.diagnostics);
}

/// Uniform-condition barriers are fine; the divergence check must not
/// flag a barrier behind a blockIdx-based guard.
#[test]
fn uniform_barrier_is_not_divergent() {
    let mut k = KernelBuilder::new("uniform_bar");
    let bid = k.block_id_x();
    let c = k.cmp(CmpOp::Eq, bid, Value::I32(0));
    k.if_(c, |k| k.barrier());
    let report = analyze(&k.finish(), &AnalysisOptions::default());
    assert!(!report.has_code(MCA002), "uniform barrier flagged: {:?}", report.diagnostics);
}

/// The MCA002 divergence check is warp-width-parametric. Pins the
/// width-32 default (the behavior every existing caller relied on) and
/// the new width sensitivity: a `lane < 32` guard is degenerate — every
/// lane agrees — at widths 16 and 32 but variant at 64.
#[test]
fn divergence_check_is_width_parametric_with_width_32_pinned() {
    use mcmm_analyze::divergence;
    use mcmm_gpu_sim::ir::Special;

    let mut k = KernelBuilder::new("lane_guarded_bar");
    let lane = k.special(Special::LaneId);
    let c = k.cmp(CmpOp::Lt, lane, Value::I32(32));
    k.if_(c, |k| k.barrier());
    let kernel = k.finish();
    assert!(divergence::check(&kernel, 16).is_empty(), "uniform at width 16");
    assert!(divergence::check(&kernel, 32).is_empty(), "uniform at width 32");
    assert!(!divergence::check(&kernel, 64).is_empty(), "divergent at width 64");

    // The seeded MCA002 kernels guard on thread id, not lane id — their
    // divergence is width-independent, so they stay flagged at every
    // width, width 32 (the default `analyze` path) included.
    for entry in corpus::seeded_defects().iter().filter(|e| e.expect == MCA002) {
        for w in [16u32, 32, 64] {
            let found = divergence::check(&entry.kernel, w);
            assert!(
                found.iter().any(|d| d.code == MCA002),
                "`{}` must stay flagged at width {w}",
                entry.kernel.name
            );
        }
    }
}

/// The portability corpus is invisible to the vendor-neutral checks:
/// every seed and every twin is clean under plain `analyze` — their
/// defects exist only relative to a specific device, which is the whole
/// point of keeping MCA006–MCA010 in a separate suite.
#[test]
fn portability_corpus_is_clean_under_vendor_neutral_analysis() {
    for entry in corpus::portability_corpus() {
        assert_eq!(entry.kernel.validate(), Ok(()), "corpus kernel {}", entry.kernel.name);
        let report = analyze(&entry.kernel, &entry.opts);
        assert!(
            report.is_clean(),
            "`{}` tripped a vendor-neutral check: {:?}",
            entry.kernel.name,
            report.diagnostics
        );
    }
}

/// Every portability seed emits its code (on at least one device) through
/// the portability entry point, and every clean twin emits nothing — one
/// seed and one twin per code, by construction.
#[test]
fn portability_corpus_emits_expected_codes() {
    use mcmm_analyze::portability::portability;
    use mcmm_analyze::{MCA006, MCA007, MCA008, MCA009, MCA010};
    let corpus = corpus::portability_corpus();
    for code in [MCA006, MCA007, MCA008, MCA009, MCA010] {
        assert_eq!(corpus.iter().filter(|e| e.expect == Some(code)).count(), 1, "{code} seeds");
    }
    assert_eq!(corpus.iter().filter(|e| e.expect.is_none()).count(), 5, "clean twins");
    for entry in &corpus {
        let report = portability(&entry.kernel, &entry.opts);
        match entry.expect {
            Some(code) => assert!(
                report.codes().contains(code),
                "`{}` missing {code}: {report:?}",
                entry.kernel.name
            ),
            None => {
                assert!(report.is_clean(), "clean twin `{}` flagged: {report:?}", entry.kernel.name)
            }
        }
    }
}

/// Atomics from all lanes to the same address are ordered — not a race.
#[test]
fn atomics_do_not_race_with_atomics() {
    let mut k = KernelBuilder::new("atomic_accum");
    let sh = k.shared_alloc(4);
    let tid = k.thread_id_x();
    let _ = k.atomic(mcmm_gpu_sim::ir::AtomicOp::Add, Space::Shared, sh, tid);
    let report = analyze(&k.finish(), &AnalysisOptions::default());
    assert!(!report.has_code(MCA003), "atomic-vs-atomic flagged: {:?}", report.diagnostics);
}

/// ...but an atomic racing a plain write is still a race.
#[test]
fn atomic_vs_plain_write_races() {
    let mut k = KernelBuilder::new("atomic_vs_store");
    let sh = k.shared_alloc(4);
    let tid = k.thread_id_x();
    let is0 = k.cmp(CmpOp::Eq, tid, Value::I32(0));
    k.if_else(
        is0,
        |k| k.st(Space::Shared, sh, Value::I32(1)),
        |k| {
            let _ = k.atomic(mcmm_gpu_sim::ir::AtomicOp::Add, Space::Shared, sh, Value::I32(1));
        },
    );
    let report = analyze(&k.finish(), &AnalysisOptions::default());
    assert!(report.has_code(MCA003), "atomic-vs-store missed: {:?}", report.diagnostics);
}
