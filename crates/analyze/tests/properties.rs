//! Property tests over randomly generated structured kernels: CFG and
//! dominator invariants, and dataflow fixpoint consistency.

use mcmm_analyze::cfg::{dominators, postdominators, Cfg, Terminator};
use mcmm_analyze::dataflow::{BitSet, Liveness, ReachingDefs};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

use mcmm_gpu_sim::ir::{CmpOp, Instr, KernelIr, Operand, Reg, Type, Value};

/// A control-flow shape; mapped onto concrete IR below.
#[derive(Debug, Clone)]
enum Shape {
    Straight,
    Trap,
    If(Vec<Shape>, Vec<Shape>),
    While(Vec<Shape>, Vec<Shape>),
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Straight),
        Just(Shape::Straight),
        Just(Shape::Straight),
        Just(Shape::Trap),
    ]
    .prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            Just(Shape::Straight),
            (pvec(inner.clone(), 1..4), pvec(inner.clone(), 1..3))
                .prop_map(|(t, e)| Shape::If(t, e)),
            (pvec(inner.clone(), 1..3), pvec(inner, 1..3)).prop_map(|(c, b)| Shape::While(c, b)),
        ]
    })
}

/// Lower a shape tree to a (valid, typed) kernel: register 0 is an I32
/// scratch, register 1 a Bool condition.
fn kernel_from(shapes: &[Shape]) -> KernelIr {
    fn emit(shapes: &[Shape]) -> Vec<Instr> {
        shapes
            .iter()
            .map(|s| match s {
                Shape::Straight => Instr::Mov { dst: Reg(0), src: Operand::Imm(Value::I32(1)) },
                Shape::Trap => Instr::Trap { message: "generated".into() },
                Shape::If(t, e) => Instr::If { cond: Reg(1), then_: emit(t), else_: emit(e) },
                Shape::While(c, b) => {
                    let mut cond_block = emit(c);
                    cond_block.push(Instr::Cmp {
                        op: CmpOp::Lt,
                        dst: Reg(1),
                        a: Operand::Reg(Reg(0)),
                        b: Operand::Imm(Value::I32(4)),
                    });
                    Instr::While { cond_block, cond: Reg(1), body: emit(b) }
                }
            })
            .collect()
    }
    let mut body = vec![
        Instr::Mov { dst: Reg(0), src: Operand::Imm(Value::I32(0)) },
        Instr::Cmp {
            op: CmpOp::Lt,
            dst: Reg(1),
            a: Operand::Reg(Reg(0)),
            b: Operand::Imm(Value::I32(4)),
        },
    ];
    body.extend(emit(shapes));
    KernelIr {
        name: "generated".into(),
        params: vec![],
        regs: vec![Type::I32, Type::Bool],
        shared_bytes: 0,
        body,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every reachable block is dominated by the entry, and every
    /// reachable block is post-dominated by the synthetic exit.
    #[test]
    fn entry_dominates_and_exit_postdominates(shapes in pvec(shape_strategy(), 0..6)) {
        let kernel = kernel_from(&shapes);
        prop_assert_eq!(kernel.validate(), Ok(()));
        let cfg = Cfg::build(&kernel);
        let dom = dominators(&cfg);
        let pdom = postdominators(&cfg);
        for b in 0..cfg.blocks.len() {
            if !cfg.reachable(b) {
                continue;
            }
            prop_assert!(dom.dominates(cfg.entry, b), "entry must dominate block {}", b);
            prop_assert!(pdom.dominates(cfg.exit, b), "exit must postdominate block {}", b);
        }
    }

    /// A block's immediate dominator is itself dominated by the entry and
    /// strictly precedes the block in every path (spot-check: the idom is
    /// never the block itself, except at the root).
    #[test]
    fn idom_is_proper(shapes in pvec(shape_strategy(), 0..6)) {
        let kernel = kernel_from(&shapes);
        let cfg = Cfg::build(&kernel);
        let dom = dominators(&cfg);
        for b in 0..cfg.blocks.len() {
            if b == cfg.entry || !cfg.reachable(b) {
                continue;
            }
            let idom = dom.idom[b].expect("reachable non-entry block must have an idom");
            prop_assert_ne!(idom, b);
            prop_assert!(dom.dominates(cfg.entry, idom));
        }
    }

    /// Reaching definitions is a genuine fixpoint: re-applying the
    /// transfer function to the solution changes nothing, and every edge
    /// satisfies out[pred] ⊆ in[succ].
    #[test]
    fn reaching_defs_is_a_fixpoint(shapes in pvec(shape_strategy(), 0..6)) {
        let kernel = kernel_from(&shapes);
        let cfg = Cfg::build(&kernel);
        let rd = ReachingDefs::compute(&kernel, &cfg);
        for (b, block) in cfg.blocks.iter().enumerate() {
            for s in block.term.succs() {
                // union semantics: everything flowing out of b must be
                // in s's in-set already.
                let mut merged = rd.block_in[s].clone();
                let grew = merged.union_with(&rd.block_out[b]);
                prop_assert!(!grew, "edge {}->{} not saturated", b, s);
            }
        }
        // Synthetic defs for every register exist and reach the entry.
        prop_assert_eq!(rd.n_synthetic, kernel.regs.len());
        for d in 0..rd.n_synthetic {
            prop_assert!(rd.block_in[cfg.entry].contains(d));
        }
    }

    /// Liveness is consistent along edges: live_in of any successor is
    /// contained in live_out of the predecessor.
    #[test]
    fn liveness_is_edge_consistent(shapes in pvec(shape_strategy(), 0..6)) {
        let kernel = kernel_from(&shapes);
        let cfg = Cfg::build(&kernel);
        let lv = Liveness::compute(&kernel, &cfg);
        for (b, block) in cfg.blocks.iter().enumerate() {
            if !cfg.reachable(b) {
                continue; // the fixpoint runs over reachable blocks only
            }
            for s in block.term.succs() {
                let mut merged = lv.live_out[b].clone();
                let grew = merged.union_with(&lv.live_in[s]);
                prop_assert!(!grew, "live_in[{}] escapes live_out[{}]", s, b);
            }
        }
    }

    /// Structural invariants of the lowering itself: preds/succs agree,
    /// and only the exit (plus trap blocks) may Return.
    #[test]
    fn cfg_edges_are_symmetric(shapes in pvec(shape_strategy(), 0..6)) {
        let kernel = kernel_from(&shapes);
        let cfg = Cfg::build(&kernel);
        for (b, block) in cfg.blocks.iter().enumerate() {
            for s in block.term.succs() {
                prop_assert!(
                    cfg.blocks[s].preds.contains(&b),
                    "edge {}->{} missing from preds", b, s
                );
            }
            if matches!(block.term, Terminator::Return) {
                prop_assert!(b == cfg.exit, "non-exit block {} Returns", b);
            }
        }
    }

    /// BitSet union is idempotent and monotone (used by every fixpoint).
    #[test]
    fn bitset_union_is_idempotent(xs in pvec(0usize..200, 0..40), ys in pvec(0usize..200, 0..40)) {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        for x in &xs { a.insert(*x); }
        for y in &ys { b.insert(*y); }
        let mut u = a.clone();
        u.union_with(&b);
        for x in &xs { prop_assert!(u.contains(*x)); }
        for y in &ys { prop_assert!(u.contains(*y)); }
        let mut again = u.clone();
        let grew = again.union_with(&b);
        prop_assert!(!grew, "second union must be a no-op");
    }
}
