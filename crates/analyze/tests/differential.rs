//! Differential validation of the static race checker: every kernel the
//! static MCA003 analysis flags must also race under the interpreter's
//! dynamic racecheck mode (same block, same launch shape), and kernels
//! that are statically clean must be dynamically clean too.

use mcmm_analyze::{analyze, corpus, AnalysisOptions, MCA003};
use mcmm_gpu_sim::counters::Counters;
use mcmm_gpu_sim::exec::{run_block_racecheck, BlockCtx, RaceFinding};
use mcmm_gpu_sim::ir::{BinOp, CmpOp, KernelBuilder, KernelIr, Space, Type, Value};
use mcmm_gpu_sim::mem::GlobalMemory;

fn dynamic_races(kernel: &KernelIr, opts: &AnalysisOptions) -> Vec<RaceFinding> {
    let mem = GlobalMemory::new(1 << 16);
    let counters = Counters::new();
    let ctx = BlockCtx {
        kernel,
        global: &mem,
        counters: &counters,
        block_id: 0, // the static analyzer pins CtaIdX to block 0 too
        grid_dim: opts.grid_dim,
        block_dim: opts.block_dim,
        warp_width: opts.warp_width,
        trace: None,
    };
    run_block_racecheck(&ctx, &[]).expect("corpus race kernels take no arguments")
}

#[test]
fn every_static_race_finding_reproduces_dynamically() {
    let race_entries: Vec<_> =
        corpus::seeded_defects().into_iter().filter(|e| e.expect == MCA003).collect();
    assert!(race_entries.len() >= 2, "corpus must seed at least two race kernels");
    for entry in race_entries {
        let report = analyze(&entry.kernel, &entry.opts);
        assert!(report.has_code(MCA003), "static analysis missed `{}`", entry.kernel.name);
        let dynamic = dynamic_races(&entry.kernel, &entry.opts);
        assert!(
            !dynamic.is_empty(),
            "static race in `{}` not confirmed by the dynamic racecheck: {:?}",
            entry.kernel.name,
            report.diagnostics
        );
        // Both detectors implement the same conflict rule.
        for f in &dynamic {
            assert_ne!(f.lane_a, f.lane_b);
            assert!(f.kind_a.conflicts(f.kind_b));
        }
    }
}

/// A correctly-synchronized tree reduction: statically clean AND
/// dynamically clean — the two detectors agree in the negative direction
/// as well.
#[test]
fn barriered_reduction_is_clean_both_ways() {
    let mut k = KernelBuilder::new("reduce_ok");
    let sh = k.shared_alloc(4 * 64);
    let tid = k.thread_id_x();
    k.st_elem(Space::Shared, sh, tid, tid);
    k.barrier();
    let stride = k.imm(Value::I32(32));
    k.while_(
        |k| k.cmp(CmpOp::Gt, stride, Value::I32(0)),
        |k| {
            let in_half = k.cmp(CmpOp::Lt, tid, stride);
            k.if_(in_half, |k| {
                let other = k.bin(BinOp::Add, tid, stride);
                let a = k.ld_elem(Space::Shared, Type::I32, sh, tid);
                let b = k.ld_elem(Space::Shared, Type::I32, sh, other);
                let s = k.bin(BinOp::Add, a, b);
                k.st_elem(Space::Shared, sh, tid, s);
            });
            k.barrier();
            let two = k.imm(Value::I32(2));
            let half = k.bin(BinOp::Div, stride, two);
            k.assign(stride, half);
        },
    );
    let kernel = k.finish();
    let opts = AnalysisOptions { block_dim: 64, ..AnalysisOptions::default() };
    let report = analyze(&kernel, &opts);
    assert!(!report.has_code(MCA003), "static false positive: {:?}", report.diagnostics);
    let dynamic = dynamic_races(&kernel, &opts);
    assert!(dynamic.is_empty(), "dynamic false positive: {dynamic:?}");
}

/// Dropping the mid-loop barrier makes both detectors fire.
#[test]
fn unbarriered_reduction_races_both_ways() {
    let mut k = KernelBuilder::new("reduce_racy");
    let sh = k.shared_alloc(4 * 64);
    let tid = k.thread_id_x();
    k.st_elem(Space::Shared, sh, tid, tid);
    // no barrier: the tree phase reads slots other lanes are writing
    let in_half = k.cmp(CmpOp::Lt, tid, Value::I32(32));
    k.if_(in_half, |k| {
        let other = k.bin(BinOp::Add, tid, Value::I32(32));
        let a = k.ld_elem(Space::Shared, Type::I32, sh, tid);
        let b = k.ld_elem(Space::Shared, Type::I32, sh, other);
        let s = k.bin(BinOp::Add, a, b);
        k.st_elem(Space::Shared, sh, tid, s);
    });
    let kernel = k.finish();
    let opts = AnalysisOptions { block_dim: 64, ..AnalysisOptions::default() };
    let report = analyze(&kernel, &opts);
    assert!(report.has_code(MCA003), "static miss: {:?}", report.diagnostics);
    let dynamic = dynamic_races(&kernel, &opts);
    assert!(!dynamic.is_empty(), "dynamic miss");
}
