//! MCA006 — warp-width assumptions.
//!
//! Kernels frequently bake the warp width into lane arithmetic: `lane <
//! 32` guards, `lane & 31` masks, `lane == 63` last-lane tests. Such code
//! is correct on the vendor it was written for and silently computes
//! different values on a device with a different width — the classic
//! CUDA-to-HIP porting bug the paper's compatibility matrix exists to
//! predict.
//!
//! The check extends the value-range machinery's lane classification
//! ([`crate::range`]): for every comparison or mask whose operands are a
//! lane-affine expression (`LaneId + k`) and a warp-sized literal, it
//! **evaluates the expression for every thread of the block at each
//! candidate width** (`lane = tid mod W`) and compares the resulting
//! per-thread value vectors. If exactly one width produces a different
//! vector than the (agreeing) others, the kernel observably breaks on
//! devices of that width — and only claims of that shape are emitted, so
//! every finding is checkable by running the kernel on the simulated
//! devices and comparing output checksums (zero false claims by
//! construction).
//!
//! Expressions where all three widths disagree pairwise (`lane >= 16`)
//! have no majority behaviour to break *from*; they are deliberately not
//! flagged (documented under-coverage), as no single-vendor claim about
//! them could be validated.

use crate::cfg::Loc;
use crate::range::{lane_bindings, LaneBindings};
use crate::AnalysisOptions;
use mcmm_gpu_sim::ir::{BinOp, CmpOp, Instr, KernelIr, Operand};
use std::collections::BTreeSet;

/// Warp-sized literals worth suspecting: the three vendor widths and
/// their mask forms (`W` and `W - 1`).
const WARP_LITERALS: [i64; 6] = [15, 16, 31, 32, 63, 64];

/// One width-assumption finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidthFinding {
    /// Pre-order location of the offending instruction.
    pub loc: Loc,
    /// The widths on which the expression computes a different result
    /// than on the (agreeing) majority of widths.
    pub breaking_widths: BTreeSet<u32>,
    /// Human-readable description.
    pub message: String,
}

/// The per-thread value vector of a lane expression at one width.
enum LaneExpr {
    /// `(lane + off) <op> c`
    Cmp(CmpOp, i64, i64),
    /// `(lane + off) & c`
    Mask(i64, i64),
}

impl LaneExpr {
    fn eval(&self, width: u32, block_dim: u32) -> Vec<i64> {
        (0..i64::from(block_dim))
            .map(|tid| {
                let lane = tid % i64::from(width);
                match *self {
                    LaneExpr::Cmp(op, off, c) => {
                        let x = lane + off;
                        i64::from(match op {
                            CmpOp::Eq => x == c,
                            CmpOp::Ne => x != c,
                            CmpOp::Lt => x < c,
                            CmpOp::Le => x <= c,
                            CmpOp::Gt => x > c,
                            CmpOp::Ge => x >= c,
                        })
                    }
                    LaneExpr::Mask(off, c) => (lane + off) & c,
                }
            })
            .collect()
    }
}

struct Scan<'k> {
    bindings: &'k LaneBindings,
    kernel: &'k KernelIr,
    opts: &'k AnalysisOptions,
    widths: &'k [u32],
    next_loc: u32,
    found: Vec<WidthFinding>,
}

impl Scan<'_> {
    fn loc(&mut self) -> Loc {
        let l = Loc(self.next_loc);
        self.next_loc += 1;
        l
    }

    /// Classify an (a, b) operand pair as lane-affine vs warp literal.
    fn lane_vs_literal(&self, a: &Operand, b: &Operand) -> Option<(i64, i64, bool)> {
        let pick = |off: Option<i64>, c: Option<i64>| match (off, c) {
            (Some(off), Some(c)) if WARP_LITERALS.contains(&c) => Some((off, c)),
            _ => None,
        };
        if let Some((off, c)) = pick(self.bindings.lane_of(a), self.bindings.const_of(b)) {
            return Some((off, c, false));
        }
        pick(self.bindings.lane_of(b), self.bindings.const_of(a)).map(|(off, c)| (off, c, true))
    }

    /// Evaluate `expr` at every candidate width; report if exactly one
    /// width disagrees with the otherwise-identical rest.
    fn judge(&mut self, loc: Loc, expr: LaneExpr, describe: &str) {
        let vectors: Vec<Vec<i64>> =
            self.widths.iter().map(|&w| expr.eval(w, self.opts.block_dim)).collect();
        let outliers: Vec<usize> = (0..vectors.len())
            .filter(|&i| !vectors.iter().enumerate().any(|(j, v)| j != i && *v == vectors[i]))
            .collect();
        // Exactly one width off the majority, the rest agreeing among
        // themselves: a checkable single-vendor break.
        if outliers.len() == 1 && vectors.len() >= 3 {
            let w = self.widths[outliers[0]];
            self.found.push(WidthFinding {
                loc,
                breaking_widths: BTreeSet::from([w]),
                message: format!(
                    "{describe} at {loc} in kernel `{}` computes different values on \
                     {w}-wide warps than on the other widths — a warp-width assumption \
                     that breaks on that vendor",
                    self.kernel.name
                ),
            });
        }
    }

    fn walk(&mut self, body: &[Instr]) {
        for instr in body {
            let loc = self.loc();
            match instr {
                Instr::Cmp { op, a, b, .. } => {
                    if let Some((off, c, flipped)) = self.lane_vs_literal(a, b) {
                        let op = if flipped { mirror(*op) } else { *op };
                        self.judge(
                            loc,
                            LaneExpr::Cmp(op, off, c),
                            &format!("lane comparison against literal {c}"),
                        );
                    }
                }
                Instr::Bin { op: BinOp::And, a, b, .. } => {
                    if let Some((off, c, _)) = self.lane_vs_literal(a, b) {
                        self.judge(
                            loc,
                            LaneExpr::Mask(off, c),
                            &format!("lane mask with literal {c:#x}"),
                        );
                    }
                }
                Instr::If { then_, else_, .. } => {
                    self.walk(then_);
                    self.walk(else_);
                }
                Instr::While { cond_block, body, .. } => {
                    self.walk(cond_block);
                    self.walk(body);
                }
                _ => {}
            }
        }
    }
}

/// Mirror a comparison so the lane expression sits on the left.
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

/// Scan a kernel for warp-width assumptions across the candidate widths
/// (one per vendor device). Findings carry the widths they break on.
pub fn findings(kernel: &KernelIr, opts: &AnalysisOptions, widths: &[u32]) -> Vec<WidthFinding> {
    let bindings = lane_bindings(kernel);
    let mut s = Scan { bindings: &bindings, kernel, opts, widths, next_loc: 0, found: Vec::new() };
    s.walk(&kernel.body);
    s.found
}
