//! Seeded-defect kernel corpus: at least two kernels per diagnostic code,
//! each carrying the [`AnalysisOptions`] under which its defect is
//! provable. Used by the analyzer's own tests, by the differential
//! race tests in the umbrella crate, and by the `analyze` report binary.

use crate::AnalysisOptions;
use mcmm_gpu_sim::device::DeviceSpec;
use mcmm_gpu_sim::ir::{
    AtomicOp, BinOp, CmpOp, Instr, KernelBuilder, KernelIr, Operand, Reg, Space, Special, Type,
    Value,
};

/// One corpus entry: a kernel seeded with exactly one class of defect.
#[derive(Debug, Clone)]
pub struct SeededKernel {
    /// The defective kernel.
    pub kernel: KernelIr,
    /// Options under which the defect is detectable.
    pub opts: AnalysisOptions,
    /// The diagnostic code the analyzer must emit.
    pub expect: &'static str,
}

/// MCA001: `r1 = r0` where `r0` has no definition at all.
fn uninit_plain() -> KernelIr {
    // KernelBuilder cannot express this defect (it defines every register
    // at creation), so build the IR directly — `validate` only checks
    // types, exactly like a real assembler.
    KernelIr {
        name: "seeded_uninit_plain".into(),
        params: vec![],
        regs: vec![Type::I32, Type::I32],
        shared_bytes: 0,
        body: vec![Instr::Mov { dst: Reg(1), src: Operand::Reg(Reg(0)) }],
    }
}

/// MCA001: `r2` written only in the then-branch, read unconditionally.
fn uninit_branch() -> KernelIr {
    KernelIr {
        name: "seeded_uninit_branch".into(),
        params: vec![Type::I32],
        regs: vec![Type::I32, Type::Bool, Type::I32],
        shared_bytes: 0,
        body: vec![
            Instr::Cmp {
                op: CmpOp::Lt,
                dst: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(Value::I32(10)),
            },
            Instr::If {
                cond: Reg(1),
                then_: vec![Instr::Mov { dst: Reg(2), src: Operand::Imm(Value::I32(1)) }],
                else_: vec![],
            },
            Instr::Bin {
                op: BinOp::Add,
                dst: Reg(2),
                a: Operand::Reg(Reg(2)),
                b: Operand::Imm(Value::I32(2)),
            },
        ],
    }
}

/// MCA002: a barrier inside `if (tid < 16)` — half the block never arrives.
fn divergent_barrier_if() -> KernelIr {
    let mut k = KernelBuilder::new("seeded_divergent_barrier_if");
    let tid = k.thread_id_x();
    let c = k.cmp(CmpOp::Lt, tid, Value::I32(16));
    k.if_(c, |k| k.barrier());
    k.finish()
}

/// MCA002: a barrier inside `while (j < tid)` — per-lane trip counts.
fn divergent_barrier_loop() -> KernelIr {
    let mut k = KernelBuilder::new("seeded_divergent_barrier_loop");
    let tid = k.thread_id_x();
    let j = k.imm(Value::I32(0));
    k.while_(
        |k| k.cmp(CmpOp::Lt, j, tid),
        |k| {
            k.barrier();
            k.bin_assign(BinOp::Add, j, Value::I32(1));
        },
    );
    k.finish()
}

/// MCA003: every lane writes shared byte 0 in the same barrier interval.
fn race_same_slot() -> KernelIr {
    let mut k = KernelBuilder::new("seeded_race_same_slot");
    let sh = k.shared_alloc(4);
    let tid = k.thread_id_x();
    k.st(Space::Shared, sh, tid);
    k.finish()
}

/// MCA003: lane `i` writes `sh[i]` and reads `sh[i+1]` with no barrier in
/// between — a classic missing-`__syncthreads()` neighbour exchange.
fn race_neighbor_read() -> KernelIr {
    let mut k = KernelBuilder::new("seeded_race_neighbor_read");
    let sh = k.shared_alloc(4 * 257); // room for tid+1 at block_dim=256
    let tid = k.thread_id_x();
    k.st_elem(Space::Shared, sh, tid, tid);
    let t1 = k.bin(BinOp::Add, tid, Value::I32(1));
    let _ = k.ld_elem(Space::Shared, Type::I32, sh, t1);
    k.finish()
}

/// MCA004: stores `p[n]` when `p` holds exactly `n` elements.
fn oob_global_store() -> KernelIr {
    let mut k = KernelBuilder::new("seeded_oob_global_store");
    let p = k.param(Type::I64);
    let n = k.param(Type::I32);
    k.st_elem(Space::Global, p, n, Value::I32(7));
    k.finish()
}

/// MCA004: stores `sh[tid]` with 64 lanes into a 16-element shared array.
fn oob_shared_store() -> KernelIr {
    let mut k = KernelBuilder::new("seeded_oob_shared_store");
    let sh = k.shared_alloc(16 * 4);
    let tid = k.thread_id_x();
    k.st_elem(Space::Shared, sh, tid, tid);
    k.finish()
}

/// The full seeded-defect corpus: ≥ 2 kernels per diagnostic code.
pub fn seeded_defects() -> Vec<SeededKernel> {
    let defaults = AnalysisOptions::default();
    let mut oob_global_opts = AnalysisOptions::default();
    // p (param register 0) holds 8 i32 elements; n (param register 1) = 8.
    oob_global_opts.buffer_bytes.insert(0, 8 * 4);
    oob_global_opts.param_values.insert(1, 8);
    let oob_shared_opts = AnalysisOptions { block_dim: 64, ..AnalysisOptions::default() };
    vec![
        SeededKernel { kernel: uninit_plain(), opts: defaults.clone(), expect: crate::MCA001 },
        SeededKernel { kernel: uninit_branch(), opts: defaults.clone(), expect: crate::MCA001 },
        SeededKernel {
            kernel: divergent_barrier_if(),
            opts: defaults.clone(),
            expect: crate::MCA002,
        },
        SeededKernel {
            kernel: divergent_barrier_loop(),
            opts: defaults.clone(),
            expect: crate::MCA002,
        },
        SeededKernel { kernel: race_same_slot(), opts: defaults.clone(), expect: crate::MCA003 },
        SeededKernel { kernel: race_neighbor_read(), opts: defaults, expect: crate::MCA003 },
        SeededKernel { kernel: oob_global_store(), opts: oob_global_opts, expect: crate::MCA004 },
        SeededKernel { kernel: oob_shared_store(), opts: oob_shared_opts, expect: crate::MCA004 },
    ]
}

/// How a seeded portability defect manifests when the kernel is actually
/// executed on the vendor devices (the dynamic face of each `MCA006`–
/// `MCA010` claim, observed through `mcmm_gpu_sim::diffval`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakMode {
    /// Completes on every device with identical output checksums.
    Portable,
    /// Completes everywhere, but each breaking device's output bytes
    /// differ from the (agreeing) remainder — a silent value break.
    SilentValues,
    /// Breaking devices refuse the launch outright (`BadLaunch`).
    RefusedLaunch,
    /// Breaking devices report barrier divergence — a deadlock on real
    /// hardware.
    Deadlock,
    /// Completes everywhere, but no two devices agree on the checksum:
    /// order-sensitive float atomics (informational `MCA010`).
    OrderSensitive,
}

/// One portability-corpus entry: a kernel seeded with exactly one
/// vendor-portability defect (or its defect-free twin), plus the full
/// static *and* dynamic expectation the differential tests hold it to.
#[derive(Debug, Clone)]
pub struct PortabilityKernel {
    /// The kernel under test.
    pub kernel: KernelIr,
    /// Launch/analysis assumptions (block and grid shape).
    pub opts: AnalysisOptions,
    /// The portability code this entry seeds; `None` for a clean twin,
    /// whose report must be empty on every device.
    pub expect: Option<&'static str>,
    /// `DeviceSpec::name`s on which the static gate must predict a break
    /// (`PortabilityReport::breaking_devices`). Empty for clean twins and
    /// for the non-gating `MCA010`.
    pub breaks_on: Vec<&'static str>,
    /// The behavior the simulator must exhibit.
    pub mode: BreakMode,
}

/// MCA006: `out[i] = lane < 32 ? 1 : 2` — uniformly 1 at widths 16 and
/// 32, but a 64-wide wavefront sees both arms: AMD silently diverges.
fn width_assumption_lt32() -> KernelIr {
    let mut k = KernelBuilder::new("seeded_width_lt32");
    let out = k.param(Type::I64);
    let i = k.global_thread_id_x();
    let lane = k.special(Special::LaneId);
    let c = k.cmp(CmpOp::Lt, lane, Value::I32(32));
    let v = k.sel(c, Value::I32(1), Value::I32(2));
    k.st_elem(Space::Global, out, i, v);
    k.finish()
}

/// Clean twin of [`width_assumption_lt32`]: `lane & 15` observes exactly
/// `tid % 16` at *every* width that is a multiple of 16 — same bytes on
/// all three vendors, so it must stay unflagged.
fn width_mask_portable() -> KernelIr {
    let mut k = KernelBuilder::new("portable_width_mask15");
    let out = k.param(Type::I64);
    let i = k.global_thread_id_x();
    let lane = k.special(Special::LaneId);
    let m = k.bin(BinOp::And, lane, Value::I32(15));
    k.st_elem(Space::Global, out, i, m);
    k.finish()
}

/// Shared-memory staging kernel used for the MCA007 pair: stage `tid`
/// through shared memory (distinct slots, barrier between write and
/// read) and write it back out.
fn shared_staging(name: &str, shared_bytes: u64) -> KernelIr {
    let mut k = KernelBuilder::new(name);
    let out = k.param(Type::I64);
    let sh = k.shared_alloc(shared_bytes);
    let tid = k.thread_id_x();
    let i = k.global_thread_id_x();
    k.st_elem(Space::Shared, sh, tid, tid);
    k.barrier();
    let v = k.ld_elem(Space::Shared, Type::I32, sh, tid);
    k.st_elem(Space::Global, out, i, v);
    k.finish()
}

/// Trivial `out[i] = i` kernel for the MCA008 pair — the defect lives in
/// the launch shape, not the body.
fn store_gid(name: &str) -> KernelIr {
    let mut k = KernelBuilder::new(name);
    let out = k.param(Type::I64);
    let i = k.global_thread_id_x();
    k.st_elem(Space::Global, out, i, i);
    k.finish()
}

/// MCA009: a barrier guarded by `lane < 32` — uniform (all lanes pass)
/// at widths 16 and 32, divergent at 64: deadlocks only on AMD.
fn width_dependent_barrier() -> KernelIr {
    let mut k = KernelBuilder::new("seeded_width_barrier");
    let out = k.param(Type::I64);
    let i = k.global_thread_id_x();
    k.st_elem(Space::Global, out, i, i);
    let lane = k.special(Special::LaneId);
    let c = k.cmp(CmpOp::Lt, lane, Value::I32(32));
    k.if_(c, |k| k.barrier());
    k.finish()
}

/// Clean twin of [`width_dependent_barrier`]: the same shape with an
/// unguarded (always block-uniform) barrier.
fn uniform_barrier() -> KernelIr {
    let mut k = KernelBuilder::new("portable_uniform_barrier");
    let out = k.param(Type::I64);
    let i = k.global_thread_id_x();
    k.st_elem(Space::Global, out, i, i);
    k.barrier();
    k.finish()
}

/// MCA010: every lane atomically adds a magnitude-varying `f32` into one
/// accumulator. The commit order is the device's warp-round-robin
/// schedule, so the rounded sum differs on all three widths.
fn float_atomic_reduce() -> KernelIr {
    let mut k = KernelBuilder::new("seeded_float_atomic");
    let out = k.param(Type::I64);
    let i = k.global_thread_id_x();
    let f = k.cvt(Type::F32, i);
    let sq = k.bin(BinOp::Mul, f, f);
    let v = k.bin(BinOp::Mul, sq, Value::F32(1000.1));
    k.atomic(AtomicOp::Add, Space::Global, out, v);
    k.finish()
}

/// Clean twin of [`float_atomic_reduce`]: an integer atomic sum is exact,
/// so every commit order yields the same bytes.
fn int_atomic_reduce() -> KernelIr {
    let mut k = KernelBuilder::new("portable_int_atomic");
    let out = k.param(Type::I64);
    let i = k.global_thread_id_x();
    k.atomic(AtomicOp::Add, Space::Global, out, i);
    k.finish()
}

/// The vendor-portability corpus: one seeded kernel per `MCA006`–`MCA010`
/// code, each paired with a defect-free twin of the same shape. Kept
/// separate from [`seeded_defects`] — these kernels are clean under the
/// vendor-neutral `MCA001`–`MCA005` checks and defective only relative to
/// a specific device.
pub fn portability_corpus() -> Vec<PortabilityKernel> {
    let nvidia = DeviceSpec::nvidia_a100().name;
    let amd = DeviceSpec::amd_mi250x().name;
    let intel = DeviceSpec::intel_pvc().name;
    let defaults = AnalysisOptions::default();
    vec![
        PortabilityKernel {
            kernel: width_assumption_lt32(),
            opts: defaults.clone(),
            expect: Some(crate::MCA006),
            breaks_on: vec![amd],
            mode: BreakMode::SilentValues,
        },
        PortabilityKernel {
            kernel: width_mask_portable(),
            opts: defaults.clone(),
            expect: None,
            breaks_on: vec![],
            mode: BreakMode::Portable,
        },
        PortabilityKernel {
            // 56 KiB of shared memory: over the A100's 48 KiB, within the
            // 64 KiB of the AMD and Intel parts.
            kernel: shared_staging("seeded_shared_56k", 56 << 10),
            opts: defaults.clone(),
            expect: Some(crate::MCA007),
            breaks_on: vec![nvidia],
            mode: BreakMode::RefusedLaunch,
        },
        PortabilityKernel {
            kernel: shared_staging("portable_shared_32k", 32 << 10),
            opts: defaults.clone(),
            expect: None,
            breaks_on: vec![],
            mode: BreakMode::Portable,
        },
        PortabilityKernel {
            // 2048 threads per block: over every preset device's limit.
            kernel: store_gid("seeded_block_2048"),
            opts: AnalysisOptions { block_dim: 2048, ..AnalysisOptions::default() },
            expect: Some(crate::MCA008),
            breaks_on: vec![nvidia, amd, intel],
            mode: BreakMode::RefusedLaunch,
        },
        PortabilityKernel {
            kernel: store_gid("portable_block_1024"),
            opts: AnalysisOptions { block_dim: 1024, ..AnalysisOptions::default() },
            expect: None,
            breaks_on: vec![],
            mode: BreakMode::Portable,
        },
        PortabilityKernel {
            kernel: width_dependent_barrier(),
            opts: defaults.clone(),
            expect: Some(crate::MCA009),
            breaks_on: vec![amd],
            mode: BreakMode::Deadlock,
        },
        PortabilityKernel {
            kernel: uniform_barrier(),
            opts: defaults.clone(),
            expect: None,
            breaks_on: vec![],
            mode: BreakMode::Portable,
        },
        PortabilityKernel {
            kernel: float_atomic_reduce(),
            opts: defaults.clone(),
            expect: Some(crate::MCA010),
            breaks_on: vec![], // informational: drift, not failure
            mode: BreakMode::OrderSensitive,
        },
        PortabilityKernel {
            kernel: int_atomic_reduce(),
            opts: defaults,
            expect: None,
            breaks_on: vec![],
            mode: BreakMode::Portable,
        },
    ]
}
