//! Seeded-defect kernel corpus: at least two kernels per diagnostic code,
//! each carrying the [`AnalysisOptions`] under which its defect is
//! provable. Used by the analyzer's own tests, by the differential
//! race tests in the umbrella crate, and by the `analyze` report binary.

use crate::AnalysisOptions;
use mcmm_gpu_sim::ir::{
    BinOp, CmpOp, Instr, KernelBuilder, KernelIr, Operand, Reg, Space, Type, Value,
};

/// One corpus entry: a kernel seeded with exactly one class of defect.
#[derive(Debug, Clone)]
pub struct SeededKernel {
    /// The defective kernel.
    pub kernel: KernelIr,
    /// Options under which the defect is detectable.
    pub opts: AnalysisOptions,
    /// The diagnostic code the analyzer must emit.
    pub expect: &'static str,
}

/// MCA001: `r1 = r0` where `r0` has no definition at all.
fn uninit_plain() -> KernelIr {
    // KernelBuilder cannot express this defect (it defines every register
    // at creation), so build the IR directly — `validate` only checks
    // types, exactly like a real assembler.
    KernelIr {
        name: "seeded_uninit_plain".into(),
        params: vec![],
        regs: vec![Type::I32, Type::I32],
        shared_bytes: 0,
        body: vec![Instr::Mov { dst: Reg(1), src: Operand::Reg(Reg(0)) }],
    }
}

/// MCA001: `r2` written only in the then-branch, read unconditionally.
fn uninit_branch() -> KernelIr {
    KernelIr {
        name: "seeded_uninit_branch".into(),
        params: vec![Type::I32],
        regs: vec![Type::I32, Type::Bool, Type::I32],
        shared_bytes: 0,
        body: vec![
            Instr::Cmp {
                op: CmpOp::Lt,
                dst: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(Value::I32(10)),
            },
            Instr::If {
                cond: Reg(1),
                then_: vec![Instr::Mov { dst: Reg(2), src: Operand::Imm(Value::I32(1)) }],
                else_: vec![],
            },
            Instr::Bin {
                op: BinOp::Add,
                dst: Reg(2),
                a: Operand::Reg(Reg(2)),
                b: Operand::Imm(Value::I32(2)),
            },
        ],
    }
}

/// MCA002: a barrier inside `if (tid < 16)` — half the block never arrives.
fn divergent_barrier_if() -> KernelIr {
    let mut k = KernelBuilder::new("seeded_divergent_barrier_if");
    let tid = k.thread_id_x();
    let c = k.cmp(CmpOp::Lt, tid, Value::I32(16));
    k.if_(c, |k| k.barrier());
    k.finish()
}

/// MCA002: a barrier inside `while (j < tid)` — per-lane trip counts.
fn divergent_barrier_loop() -> KernelIr {
    let mut k = KernelBuilder::new("seeded_divergent_barrier_loop");
    let tid = k.thread_id_x();
    let j = k.imm(Value::I32(0));
    k.while_(
        |k| k.cmp(CmpOp::Lt, j, tid),
        |k| {
            k.barrier();
            k.bin_assign(BinOp::Add, j, Value::I32(1));
        },
    );
    k.finish()
}

/// MCA003: every lane writes shared byte 0 in the same barrier interval.
fn race_same_slot() -> KernelIr {
    let mut k = KernelBuilder::new("seeded_race_same_slot");
    let sh = k.shared_alloc(4);
    let tid = k.thread_id_x();
    k.st(Space::Shared, sh, tid);
    k.finish()
}

/// MCA003: lane `i` writes `sh[i]` and reads `sh[i+1]` with no barrier in
/// between — a classic missing-`__syncthreads()` neighbour exchange.
fn race_neighbor_read() -> KernelIr {
    let mut k = KernelBuilder::new("seeded_race_neighbor_read");
    let sh = k.shared_alloc(4 * 257); // room for tid+1 at block_dim=256
    let tid = k.thread_id_x();
    k.st_elem(Space::Shared, sh, tid, tid);
    let t1 = k.bin(BinOp::Add, tid, Value::I32(1));
    let _ = k.ld_elem(Space::Shared, Type::I32, sh, t1);
    k.finish()
}

/// MCA004: stores `p[n]` when `p` holds exactly `n` elements.
fn oob_global_store() -> KernelIr {
    let mut k = KernelBuilder::new("seeded_oob_global_store");
    let p = k.param(Type::I64);
    let n = k.param(Type::I32);
    k.st_elem(Space::Global, p, n, Value::I32(7));
    k.finish()
}

/// MCA004: stores `sh[tid]` with 64 lanes into a 16-element shared array.
fn oob_shared_store() -> KernelIr {
    let mut k = KernelBuilder::new("seeded_oob_shared_store");
    let sh = k.shared_alloc(16 * 4);
    let tid = k.thread_id_x();
    k.st_elem(Space::Shared, sh, tid, tid);
    k.finish()
}

/// The full seeded-defect corpus: ≥ 2 kernels per diagnostic code.
pub fn seeded_defects() -> Vec<SeededKernel> {
    let defaults = AnalysisOptions::default();
    let mut oob_global_opts = AnalysisOptions::default();
    // p (param register 0) holds 8 i32 elements; n (param register 1) = 8.
    oob_global_opts.buffer_bytes.insert(0, 8 * 4);
    oob_global_opts.param_values.insert(1, 8);
    let oob_shared_opts = AnalysisOptions { block_dim: 64, ..AnalysisOptions::default() };
    vec![
        SeededKernel { kernel: uninit_plain(), opts: defaults.clone(), expect: crate::MCA001 },
        SeededKernel { kernel: uninit_branch(), opts: defaults.clone(), expect: crate::MCA001 },
        SeededKernel {
            kernel: divergent_barrier_if(),
            opts: defaults.clone(),
            expect: crate::MCA002,
        },
        SeededKernel {
            kernel: divergent_barrier_loop(),
            opts: defaults.clone(),
            expect: crate::MCA002,
        },
        SeededKernel { kernel: race_same_slot(), opts: defaults.clone(), expect: crate::MCA003 },
        SeededKernel { kernel: race_neighbor_read(), opts: defaults, expect: crate::MCA003 },
        SeededKernel { kernel: oob_global_store(), opts: oob_global_opts, expect: crate::MCA004 },
        SeededKernel { kernel: oob_shared_store(), opts: oob_shared_opts, expect: crate::MCA004 },
    ]
}
