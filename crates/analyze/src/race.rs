//! MCA003 — shared-memory data races via barrier-interval analysis.
//!
//! The checker runs a small SIMT abstract interpreter over all
//! `block_dim` lanes of block 0, tracking each register as a per-lane
//! concrete vector (or `Unknown`). Every shared-memory access whose byte
//! address is concrete is logged into the current *barrier interval*; a
//! `Bar` closes the interval and scans it for conflicts:
//!
//! > two accesses from **different lanes** touching an **overlapping
//! > byte** with **at least one write** (atomic-vs-atomic pairs are
//! > ordered and therefore fine, atomic-vs-plain is not).
//!
//! Anything the walker cannot evaluate concretely (loaded values,
//! float-derived conditions, unknown trip counts) degrades to `Unknown`
//! and is simply *not logged* — the analysis reports **definite races
//! only**, which is what lets every static finding be confirmed by the
//! dynamic racecheck in `mcmm-gpu-sim`.

use crate::cfg::Loc;
use crate::{AnalysisOptions, Diagnostic, MCA003};
use mcmm_gpu_sim::ir::{BinOp, CmpOp, Instr, KernelIr, Operand, Space, Special, Type, UnOp, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Upper bound on abstractly-executed instructions; prevents huge concrete
/// trip counts from stalling the lint gate.
const STEP_BUDGET: usize = 1_000_000;

/// A per-lane value vector, or nothing known.
#[derive(Debug, Clone, PartialEq)]
enum LaneVal {
    /// One integer per lane (both I32 and I64 registers; I32 ops re-wrap).
    Int(Vec<i64>),
    /// One predicate per lane.
    Bool(Vec<bool>),
    /// Not tracked (floats, loaded values, divergent-unknown writes).
    Unknown,
}

/// How an access touched memory, for the conflict rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    Read,
    Write,
    Atomic,
}

impl Kind {
    fn conflicts(self, other: Kind) -> bool {
        !matches!((self, other), (Kind::Read, Kind::Read) | (Kind::Atomic, Kind::Atomic))
    }

    fn verb(self) -> &'static str {
        match self {
            Kind::Read => "reads",
            Kind::Write => "writes",
            Kind::Atomic => "atomically updates",
        }
    }
}

fn count_instrs(body: &[Instr]) -> u32 {
    body.iter()
        .map(|i| match i {
            Instr::If { then_, else_, .. } => 1 + count_instrs(then_) + count_instrs(else_),
            Instr::While { cond_block, body, .. } => {
                1 + count_instrs(cond_block) + count_instrs(body)
            }
            _ => 1,
        })
        .sum()
}

struct Racer<'k> {
    kernel: &'k KernelIr,
    nlanes: usize,
    warp_width: u32,
    block_dim: i64,
    grid_dim: i64,
    regs: Vec<LaneVal>,
    /// Current barrier interval: byte -> accesses.
    interval: BTreeMap<u64, Vec<(u32, Kind, Loc)>>,
    seen_pairs: BTreeSet<(Loc, Loc)>,
    diags: Vec<Diagnostic>,
    steps: usize,
    next_loc: u32,
    aborted: bool,
}

impl Racer<'_> {
    fn loc(&mut self) -> Loc {
        let l = Loc(self.next_loc);
        self.next_loc += 1;
        l
    }

    fn tick(&mut self) -> bool {
        self.steps += 1;
        if self.steps > STEP_BUDGET {
            self.aborted = true;
        }
        self.aborted
    }

    fn eval(&self, o: &Operand) -> LaneVal {
        match o {
            Operand::Reg(r) => self.regs[r.0 as usize].clone(),
            Operand::Imm(v) => match v {
                Value::I32(x) => LaneVal::Int(vec![i64::from(*x); self.nlanes]),
                Value::I64(x) => LaneVal::Int(vec![*x; self.nlanes]),
                Value::Bool(b) => LaneVal::Bool(vec![*b; self.nlanes]),
                _ => LaneVal::Unknown,
            },
        }
    }

    fn op_type(&self, o: &Operand) -> Type {
        match o {
            Operand::Reg(r) => self.kernel.regs[r.0 as usize],
            Operand::Imm(v) => v.ty(),
        }
    }

    /// Write `val` into `dst` for the lanes active in `mask`; `exec=false`
    /// (taint mode under an unknown branch) forces `Unknown`.
    fn write(&mut self, dst: mcmm_gpu_sim::ir::Reg, val: LaneVal, mask: &[bool], exec: bool) {
        let slot = &mut self.regs[dst.0 as usize];
        if !exec {
            *slot = LaneVal::Unknown;
            return;
        }
        if !mask.iter().any(|&m| m) {
            return;
        }
        if mask.iter().all(|&m| m) {
            *slot = val;
            return;
        }
        match (&mut *slot, val) {
            (LaneVal::Int(old), LaneVal::Int(new)) => {
                for (l, &m) in mask.iter().enumerate() {
                    if m {
                        old[l] = new[l];
                    }
                }
            }
            (LaneVal::Bool(old), LaneVal::Bool(new)) => {
                for (l, &m) in mask.iter().enumerate() {
                    if m {
                        old[l] = new[l];
                    }
                }
            }
            (slot, _) => *slot = LaneVal::Unknown,
        }
    }

    fn record(&mut self, loc: Loc, addr: &Operand, bytes: u64, kind: Kind, mask: &[bool]) {
        let LaneVal::Int(addrs) = self.eval(addr) else { return };
        for (lane, &m) in mask.iter().enumerate() {
            if !m {
                continue;
            }
            let a = addrs[lane];
            if a < 0 {
                continue;
            }
            for b in (a as u64)..(a as u64 + bytes) {
                let entry = (lane as u32, kind, loc);
                let v = self.interval.entry(b).or_default();
                if !v.contains(&entry) {
                    v.push(entry);
                }
            }
        }
    }

    fn flush(&mut self) {
        let interval = std::mem::take(&mut self.interval);
        for (byte, accesses) in interval {
            for (i, &(la, ka, pa)) in accesses.iter().enumerate() {
                for &(lb, kb, pb) in &accesses[i + 1..] {
                    if la == lb || !ka.conflicts(kb) {
                        continue;
                    }
                    let key = if pa <= pb { (pa, pb) } else { (pb, pa) };
                    if !self.seen_pairs.insert(key) {
                        continue;
                    }
                    self.diags.push(Diagnostic {
                        code: MCA003,
                        loc: Some(key.0),
                        message: format!(
                            "shared-memory race in kernel `{}`: lane {la} {} byte {byte} \
                             at {pa} while lane {lb} {} it at {pb}, with no barrier \
                             between the accesses",
                            self.kernel.name,
                            ka.verb(),
                            kb.verb()
                        ),
                    });
                }
            }
        }
    }

    fn bin(&self, op: BinOp, dst_ty: Type, a: LaneVal, b: LaneVal) -> LaneVal {
        match (a, b) {
            (LaneVal::Int(x), LaneVal::Int(y)) => {
                let mut out = Vec::with_capacity(self.nlanes);
                for (xa, ya) in x.iter().zip(&y) {
                    let (xa, ya) = (*xa, *ya);
                    let v = match op {
                        BinOp::Add => xa.wrapping_add(ya),
                        BinOp::Sub => xa.wrapping_sub(ya),
                        BinOp::Mul => xa.wrapping_mul(ya),
                        BinOp::Div => {
                            if ya == 0 {
                                return LaneVal::Unknown;
                            }
                            xa.wrapping_div(ya)
                        }
                        BinOp::Rem => {
                            if ya == 0 {
                                return LaneVal::Unknown;
                            }
                            xa.wrapping_rem(ya)
                        }
                        BinOp::Min => xa.min(ya),
                        BinOp::Max => xa.max(ya),
                        BinOp::And => xa & ya,
                        BinOp::Or => xa | ya,
                        BinOp::Xor => xa ^ ya,
                        BinOp::Shl => xa.wrapping_shl(ya as u32 & 63),
                        BinOp::Shr => xa.wrapping_shr(ya as u32 & 63),
                    };
                    out.push(if dst_ty == Type::I32 { i64::from(v as i32) } else { v });
                }
                LaneVal::Int(out)
            }
            (LaneVal::Bool(x), LaneVal::Bool(y)) => match op {
                BinOp::And => LaneVal::Bool(x.iter().zip(&y).map(|(a, b)| *a && *b).collect()),
                BinOp::Or => LaneVal::Bool(x.iter().zip(&y).map(|(a, b)| *a || *b).collect()),
                BinOp::Xor => LaneVal::Bool(x.iter().zip(&y).map(|(a, b)| *a != *b).collect()),
                _ => LaneVal::Unknown,
            },
            _ => LaneVal::Unknown,
        }
    }

    fn walk(&mut self, body: &[Instr], mask: &[bool], exec: bool) {
        for instr in body {
            if self.tick() {
                return;
            }
            let loc = self.loc();
            match instr {
                Instr::Mov { dst, src } => {
                    let v = self.eval(src);
                    self.write(*dst, v, mask, exec);
                }
                Instr::Bin { op, dst, a, b } => {
                    let dt = self.kernel.regs[dst.0 as usize];
                    let v = self.bin(*op, dt, self.eval(a), self.eval(b));
                    self.write(*dst, v, mask, exec);
                }
                Instr::Un { op, dst, a } => {
                    let v = match (op, self.eval(a)) {
                        (UnOp::Neg, LaneVal::Int(x)) => {
                            LaneVal::Int(x.iter().map(|v| v.wrapping_neg()).collect())
                        }
                        (UnOp::Abs, LaneVal::Int(x)) => {
                            LaneVal::Int(x.iter().map(|v| v.wrapping_abs()).collect())
                        }
                        (UnOp::Not, LaneVal::Bool(x)) => {
                            LaneVal::Bool(x.iter().map(|v| !v).collect())
                        }
                        _ => LaneVal::Unknown,
                    };
                    self.write(*dst, v, mask, exec);
                }
                Instr::Cmp { op, dst, a, b } => {
                    let v = match (self.eval(a), self.eval(b)) {
                        (LaneVal::Int(x), LaneVal::Int(y)) => LaneVal::Bool(
                            x.iter()
                                .zip(&y)
                                .map(|(a, b)| match op {
                                    CmpOp::Eq => a == b,
                                    CmpOp::Ne => a != b,
                                    CmpOp::Lt => a < b,
                                    CmpOp::Le => a <= b,
                                    CmpOp::Gt => a > b,
                                    CmpOp::Ge => a >= b,
                                })
                                .collect(),
                        ),
                        _ => LaneVal::Unknown,
                    };
                    self.write(*dst, v, mask, exec);
                }
                Instr::Sel { dst, cond, a, b } => {
                    let v = match (&self.regs[cond.0 as usize], self.eval(a), self.eval(b)) {
                        (LaneVal::Bool(c), LaneVal::Int(x), LaneVal::Int(y)) => LaneVal::Int(
                            c.iter()
                                .zip(x.iter().zip(&y))
                                .map(|(c, (x, y))| if *c { *x } else { *y })
                                .collect(),
                        ),
                        _ => LaneVal::Unknown,
                    };
                    self.write(*dst, v, mask, exec);
                }
                Instr::Cvt { dst, a } => {
                    let dt = self.kernel.regs[dst.0 as usize];
                    let v = match self.eval(a) {
                        LaneVal::Int(x) if dt == Type::I32 => {
                            LaneVal::Int(x.iter().map(|v| i64::from(*v as i32)).collect())
                        }
                        LaneVal::Int(x) if dt == Type::I64 => LaneVal::Int(x),
                        _ => LaneVal::Unknown,
                    };
                    self.write(*dst, v, mask, exec);
                }
                Instr::Special { dst, kind } => {
                    let v = match kind {
                        Special::TidX => LaneVal::Int((0..self.nlanes as i64).collect()),
                        Special::LaneId => LaneVal::Int(
                            (0..self.nlanes as i64)
                                .map(|l| l % i64::from(self.warp_width))
                                .collect(),
                        ),
                        // The dynamic racecheck runs block 0, so pin the
                        // same block here — keeps findings reproducible.
                        Special::CtaIdX => LaneVal::Int(vec![0; self.nlanes]),
                        Special::NTidX => LaneVal::Int(vec![self.block_dim; self.nlanes]),
                        Special::NCtaIdX => LaneVal::Int(vec![self.grid_dim; self.nlanes]),
                    };
                    self.write(*dst, v, mask, exec);
                }
                Instr::Ld { dst, space, addr } => {
                    if exec && *space == Space::Shared {
                        let bytes = self.kernel.regs[dst.0 as usize].size();
                        self.record(loc, addr, bytes, Kind::Read, mask);
                    }
                    self.write(*dst, LaneVal::Unknown, mask, exec);
                }
                Instr::St { space, addr, value } => {
                    if exec && *space == Space::Shared {
                        let bytes = self.op_type(value).size();
                        self.record(loc, addr, bytes, Kind::Write, mask);
                    }
                }
                Instr::Atomic { space, addr, value, dst, .. } => {
                    if exec && *space == Space::Shared {
                        let bytes = self.op_type(value).size();
                        self.record(loc, addr, bytes, Kind::Atomic, mask);
                    }
                    if let Some(d) = dst {
                        self.write(*d, LaneVal::Unknown, mask, exec);
                    }
                }
                Instr::Bar => {
                    if exec {
                        self.flush();
                    }
                }
                Instr::Trap { .. } => {}
                Instr::If { cond, then_, else_ } => match self.regs[cond.0 as usize].clone() {
                    LaneVal::Bool(c) if exec => {
                        let tmask: Vec<bool> = mask.iter().zip(&c).map(|(m, c)| *m && *c).collect();
                        let emask: Vec<bool> =
                            mask.iter().zip(&c).map(|(m, c)| *m && !*c).collect();
                        self.walk(then_, &tmask, exec);
                        self.walk(else_, &emask, exec);
                    }
                    _ => {
                        // Unknown guard (or taint mode): traverse both arms
                        // for loc numbering, recording nothing.
                        self.walk(then_, mask, false);
                        self.walk(else_, mask, false);
                    }
                },
                Instr::While { cond_block, cond, body } => {
                    let loop_start = self.next_loc;
                    let loop_len = count_instrs(cond_block) + count_instrs(body);
                    let mut live = mask.to_vec();
                    loop {
                        self.next_loc = loop_start;
                        self.walk(cond_block, &live, exec);
                        let known = match (&self.regs[cond.0 as usize], exec) {
                            (LaneVal::Bool(c), true) => Some(c.clone()),
                            _ => None,
                        };
                        match known {
                            Some(c) => {
                                for (l, c) in live.iter_mut().zip(&c) {
                                    *l = *l && *c;
                                }
                                if !live.iter().any(|&m| m) {
                                    break;
                                }
                                self.walk(body, &live, exec);
                            }
                            None => {
                                // Unknown trip count: one taint pass over
                                // the body, then give up on this loop.
                                self.next_loc = loop_start;
                                self.walk(cond_block, &live, false);
                                self.walk(body, &live, false);
                                break;
                            }
                        }
                        if self.aborted {
                            break;
                        }
                    }
                    self.next_loc = loop_start + loop_len;
                }
            }
        }
    }
}

/// Run the MCA003 check.
pub fn check(kernel: &KernelIr, opts: &AnalysisOptions) -> Vec<Diagnostic> {
    if kernel.shared_bytes == 0 {
        return Vec::new(); // no shared memory, nothing to race on
    }
    let nlanes = opts.block_dim.max(1) as usize;
    // Match the interpreter: integer and predicate registers start
    // zeroed/false (so partially-masked writes merge against concrete
    // values); floats are untracked; parameters take launch values when
    // the options supply them and are otherwise unknown.
    let mut regs: Vec<LaneVal> = kernel
        .regs
        .iter()
        .map(|t| match t {
            Type::I32 | Type::I64 => LaneVal::Int(vec![0; nlanes]),
            Type::Bool => LaneVal::Bool(vec![false; nlanes]),
            Type::F32 | Type::F64 => LaneVal::Unknown,
        })
        .collect();
    for (i, _) in kernel.params.iter().enumerate() {
        match opts.param_values.get(&(i as u16)) {
            Some(&v) => regs[i] = LaneVal::Int(vec![v; nlanes]),
            None => regs[i] = LaneVal::Unknown,
        }
    }
    let mut r = Racer {
        kernel,
        nlanes,
        warp_width: opts.warp_width.max(1),
        block_dim: i64::from(opts.block_dim),
        grid_dim: i64::from(opts.grid_dim),
        regs,
        interval: BTreeMap::new(),
        seen_pairs: BTreeSet::new(),
        diags: Vec::new(),
        steps: 0,
        next_loc: 0,
        aborted: false,
    };
    let mask = vec![true; nlanes];
    r.walk(&kernel.body, &mask, true);
    if !r.aborted {
        r.flush(); // the interval between the last barrier and kernel exit
    }
    r.diags
}
