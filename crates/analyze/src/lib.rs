//! `mcmm-analyze` — static analysis over the kernel IR, and the sanitizer
//! gate every route in the compatibility matrix compiles through.
//!
//! The paper's central observation is that the same kernel source meets
//! very different *toolchains* depending on the (model, vendor) route
//! taken through the compatibility matrix — and that toolchain maturity,
//! not language semantics, decides what gets caught at compile time. This
//! crate reproduces that axis: a pass suite over
//! [`mcmm_gpu_sim::ir::KernelIr`] that virtual compilers run as a lint
//! gate, with per-route strictness derived from the route's metadata.
//!
//! # Analyses
//!
//! * [`mod@cfg`] — CFG construction from the structured IR, reverse postorder,
//!   dominators and post-dominators (Cooper–Harvey–Kennedy).
//! * [`dataflow`] — reaching definitions (with synthetic "uninitialized"
//!   entry definitions) and liveness, both to fixpoint over the CFG.
//! * [`divergence`] — thread-variance taint over the structured tree.
//! * [`range`] — interval analysis with guard refinement and widening.
//! * [`race`] — per-lane concrete execution with barrier-interval
//!   conflict detection.
//!
//! # Diagnostic codes
//!
//! | Code | Check | Minimal offending kernel |
//! |------|-------|--------------------------|
//! | `MCA001` | [`Check::UninitRead`] | `r1 = r0 + 1` where `r0` is neither a parameter nor ever written: the register is read before any definition reaches it. |
//! | `MCA002` | [`Check::DivergentBarrier`] | `if (tid < 16) { __syncthreads(); }` — lanes 16.. never reach the barrier, deadlocking the block on real hardware. |
//! | `MCA003` | [`Check::SharedRace`] | `sh[0] = tid;` with no barrier — every lane writes the same shared bytes in one barrier interval. |
//! | `MCA004` | [`Check::OutOfBounds`] | `p[n] = 7` when the launch declares `p` to hold `n` elements — the store lands one element past the extent. |
//! | `MCA005` | translation coverage | a source translator silently dropped a construct (e.g. an async memcpy lowered by an incomplete OpenACC→OpenMP pass); reported by `mcmm-translate`, not by [`analyze`]. |
//! | `MCA006` | [`width`] | `out[tid] = (lane < 32) ? a : b` — uniform on 32-wide warps and 16-wide sub-groups, but lanes 32..63 of a 64-wide wavefront take the other arm: the kernel silently computes different results on one vendor. |
//! | `MCA007` | [`capacity`] | a kernel declaring 56 KiB of shared memory — fits the 64 KiB scratchpads, exceeds a 48 KiB-per-block device and fails to launch there. |
//! | `MCA008` | [`capacity`] | a launch shape of 2048 threads per block — over every preset device's 1024-thread limit. |
//! | `MCA009` | [`portability`] | `if (lane < 32) { __syncthreads(); }` — all lanes arrive at widths 16 and 32, half a 64-wide wavefront never does: a deadlock only one vendor observes. |
//! | `MCA010` | [`portability`] | `atomicAdd(&sum, x)` on floats — the commit order (and therefore the rounding) depends on the warp width, so the three vendors produce three different sums. |
//!
//! `MCA001`–`MCA004` are vendor-neutral and run under a single set of
//! launch assumptions; `MCA006`–`MCA010` form the **portability suite**
//! ([`portability::portability`]), which re-runs the width-parametric
//! analyses once per vendor [`mcmm_gpu_sim::DeviceSpec`] and reports a
//! verdict per device. Every "breaks on vendor X" claim is differentially
//! validated against the simulator (three devices × two execution tiers)
//! by `tests/portability_differential.rs` and the `analyze --smoke` gate.
//!
//! Seeded-defect kernels demonstrating each code live in [`corpus`].
//!
//! # Precision contract
//!
//! The gate runs on every kernel each virtual toolchain compiles, so the
//! suite is engineered for **zero false positives**: range checks fire
//! only on finite, provable out-of-range intervals; race checks report
//! only concrete lane/byte conflicts (each reproducible by the dynamic
//! racecheck in `mcmm-gpu-sim`); divergence taint is exact on the
//! structured tree.

#![warn(missing_docs)]

pub mod capacity;
pub mod cfg;
pub mod corpus;
pub mod dataflow;
pub mod divergence;
pub mod portability;
pub mod race;
pub mod range;
pub mod uninit;
pub mod width;

use mcmm_gpu_sim::ir::KernelIr;
use std::collections::{BTreeMap, BTreeSet};

/// Read of a potentially-uninitialized register.
pub const MCA001: &str = "MCA001";
/// Barrier under thread-divergent control flow.
pub const MCA002: &str = "MCA002";
/// Shared-memory data race within a barrier interval.
pub const MCA003: &str = "MCA003";
/// Out-of-bounds memory access against a known extent.
pub const MCA004: &str = "MCA004";
/// Construct dropped by a source-to-source translator (emitted by
/// `mcmm-translate`'s coverage audit, not by the IR passes here).
pub const MCA005: &str = "MCA005";
/// Warp-width assumption: a lane predicate or mask that computes different
/// values on devices of a different warp/wavefront/sub-group width.
pub const MCA006: &str = "MCA006";
/// Shared-memory demand exceeds a vendor device's per-block capacity.
pub const MCA007: &str = "MCA007";
/// Block shape exceeds a vendor device's thread-per-block limit.
pub const MCA008: &str = "MCA008";
/// Barrier that is uniform at some warp widths but divergent at a vendor's
/// width — a deadlock only that vendor observes.
pub const MCA009: &str = "MCA009";
/// Order-sensitive floating-point atomic: the commit order depends on the
/// warp width, so results differ across vendors.
pub const MCA010: &str = "MCA010";

/// The individual analyses a toolchain can enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Check {
    /// MCA001 — reads of registers no definition reaches.
    UninitRead,
    /// MCA002 — barriers that not all lanes of a block reach.
    DivergentBarrier,
    /// MCA003 — conflicting shared-memory accesses between barriers.
    SharedRace,
    /// MCA004 — accesses outside shared memory or declared buffer extents.
    OutOfBounds,
}

impl Check {
    /// Every check, in diagnostic-code order.
    pub const ALL: [Check; 4] =
        [Check::UninitRead, Check::DivergentBarrier, Check::SharedRace, Check::OutOfBounds];

    /// The stable diagnostic code this check emits.
    pub fn code(self) -> &'static str {
        match self {
            Check::UninitRead => MCA001,
            Check::DivergentBarrier => MCA002,
            Check::SharedRace => MCA003,
            Check::OutOfBounds => MCA004,
        }
    }
}

/// One finding, with a stable code for matching in tests and gates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`MCA001`..`MCA005`).
    pub code: &'static str,
    /// Pre-order instruction location, when the finding has one.
    pub loc: Option<cfg::Loc>,
    /// Human-readable description, naming the kernel and registers.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// Launch-shape and extent assumptions the analyses run under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Threads per block (`blockDim.x`).
    pub block_dim: u32,
    /// Blocks per grid (`gridDim.x`).
    pub grid_dim: u32,
    /// Warp/wavefront width.
    pub warp_width: u32,
    /// Known byte extents of pointer parameters, by parameter register
    /// index. Pointers absent from this map are never bounds-checked.
    pub buffer_bytes: BTreeMap<u16, u64>,
    /// Known concrete values of integer parameters, by parameter register
    /// index.
    pub param_values: BTreeMap<u16, i64>,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            block_dim: 256,
            grid_dim: 1,
            warp_width: 32,
            buffer_bytes: BTreeMap::new(),
            param_values: BTreeMap::new(),
        }
    }
}

/// The outcome of analyzing one kernel.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnalysisReport {
    /// All findings, sorted by location then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Is at least one finding with this code present?
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The distinct codes present, in order.
    pub fn codes(&self) -> BTreeSet<&'static str> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }
}

/// Run every check (see [`Check::ALL`]) on a kernel.
pub fn analyze(kernel: &KernelIr, opts: &AnalysisOptions) -> AnalysisReport {
    analyze_with(kernel, opts, &Check::ALL)
}

/// Run a chosen subset of checks on a kernel — this is what the per-route
/// lint gates in `mcmm-toolchain` call, with the subset derived from the
/// route's completeness and maintenance metadata.
pub fn analyze_with(kernel: &KernelIr, opts: &AnalysisOptions, checks: &[Check]) -> AnalysisReport {
    let mut diagnostics = Vec::new();
    // CFG + reaching defs are shared by the dataflow-based checks; build
    // them once, lazily (divergence/race/range walk the tree directly).
    let mut cfg_rd = None;
    for check in checks {
        match check {
            Check::UninitRead => {
                let (cfg, rd) = cfg_rd.get_or_insert_with(|| {
                    let cfg = cfg::Cfg::build(kernel);
                    let rd = dataflow::ReachingDefs::compute(kernel, &cfg);
                    (cfg, rd)
                });
                diagnostics.extend(uninit::check(kernel, cfg, rd));
            }
            Check::DivergentBarrier => {
                diagnostics.extend(divergence::check(kernel, opts.warp_width))
            }
            Check::SharedRace => diagnostics.extend(race::check(kernel, opts)),
            Check::OutOfBounds => diagnostics.extend(range::check(kernel, opts)),
        }
    }
    diagnostics.sort_by(|a, b| (a.loc, a.code).cmp(&(b.loc, b.code)));
    diagnostics.dedup();
    AnalysisReport { diagnostics }
}
