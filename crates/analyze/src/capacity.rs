//! MCA007/MCA008 — vendor capacity limits.
//!
//! The cheapest portability breaks are not semantic at all: a kernel's
//! static shared-memory demand or the chosen block shape simply exceeds
//! what one vendor's device offers. Both quantities are known exactly at
//! analysis time (the IR declares `shared_bytes`, the launch assumptions
//! declare `block_dim`), so these checks are precise by construction —
//! every finding corresponds to a launch the simulated device of that
//! vendor refuses with `BadLaunch`, and a clean verdict guarantees the
//! launch is admitted.

use crate::{AnalysisOptions, Diagnostic, MCA007, MCA008};
use mcmm_gpu_sim::device::DeviceSpec;
use mcmm_gpu_sim::ir::KernelIr;

/// Run the capacity checks against one vendor device.
pub fn check(kernel: &KernelIr, opts: &AnalysisOptions, spec: &DeviceSpec) -> Vec<Diagnostic> {
    let mut found = Vec::new();
    if kernel.shared_bytes > spec.shared_per_block {
        found.push(Diagnostic {
            code: MCA007,
            loc: None,
            message: format!(
                "kernel `{}` declares {} B of shared memory but `{}` offers only {} B \
                 per block — the launch is refused on that device",
                kernel.name, kernel.shared_bytes, spec.name, spec.shared_per_block
            ),
        });
    }
    if opts.block_dim > spec.max_threads_per_block {
        found.push(Diagnostic {
            code: MCA008,
            loc: None,
            message: format!(
                "launch shape of {} threads per block exceeds `{}`'s limit of {} \
                 for kernel `{}` — the launch is refused on that device",
                opts.block_dim, spec.name, spec.max_threads_per_block, kernel.name
            ),
        });
    }
    found
}
