//! MCA001 — read of a register that may never have been written.
//!
//! A use is flagged when the synthetic "uninitialized" entry definition of
//! the register reaches it (see [`crate::dataflow::ReachingDefs`]). If the
//! *only* reaching definition is synthetic, the read is definitely
//! uninitialized; if real definitions also reach it, some path skips the
//! write (the classic `if (...) x = ...; use(x)` shape).
//!
//! The interpreter zero-initializes registers, so this is a lint, not a
//! soundness hole in the simulator — but real toolchains (and real GPUs)
//! make no such promise, which is exactly why mature compilers warn here.

use crate::cfg::{Cfg, Terminator};
use crate::dataflow::{instr_uses, ReachingDefs};
use crate::{Diagnostic, MCA001};
use mcmm_gpu_sim::ir::KernelIr;

/// Run the MCA001 check.
pub fn check(kernel: &KernelIr, cfg: &Cfg, rd: &ReachingDefs) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut buf = Vec::new();
    let mut flagged = std::collections::BTreeSet::new();
    for bid in cfg.reverse_postorder() {
        rd.for_each_state(cfg, bid, |state, loc, instr| {
            instr_uses(instr, &mut buf);
            for r in &buf {
                let uninit_reaches =
                    rd.uninit_defs.iter().any(|&d| rd.defs[d].reg == *r && state.contains(d));
                if !uninit_reaches || !flagged.insert((loc, *r)) {
                    continue;
                }
                let real_reaches =
                    state.iter().any(|d| rd.defs[d].reg == *r && rd.defs[d].site.is_some());
                let verb = if real_reaches { "may be read" } else { "is read" };
                out.push(Diagnostic {
                    code: MCA001,
                    loc: Some(loc),
                    message: format!(
                        "register r{} {verb} before initialization at {loc} in kernel `{}`",
                        r.0, kernel.name
                    ),
                });
            }
        });
        // Branch conditions are uses too.
        if let Terminator::Branch { cond, .. } = &cfg.blocks[bid].term {
            let state_at_end = &rd.block_out[bid];
            let uninit_reaches =
                rd.uninit_defs.iter().any(|&d| rd.defs[d].reg == *cond && state_at_end.contains(d));
            if uninit_reaches {
                out.push(Diagnostic {
                    code: MCA001,
                    loc: None,
                    message: format!(
                        "branch condition r{} may be read before initialization in kernel `{}`",
                        cond.0, kernel.name
                    ),
                });
            }
        }
    }
    out
}
