//! Control-flow graph construction over the structured kernel IR.
//!
//! The IR is structured (`If`/`While` trees, no raw branches), so the CFG
//! is reducible by construction. Lowering is still worth doing explicitly:
//! the dataflow analyses ([`crate::dataflow`]) want basic blocks with
//! explicit edges, and the dominator/post-dominator trees computed here are
//! the substrate the property tests pin down (every reachable block is
//! dominated by the entry, post-dominated by the exit).
//!
//! Instructions are numbered in **pre-order over the structured tree**
//! (an `If`/`While` gets a location before its children); every analysis
//! in this crate uses the same numbering, so locations in diagnostics can
//! be cross-referenced between checks.

use mcmm_gpu_sim::ir::{walk, Instr, KernelIr, Reg, Step};

/// A basic-block index into [`Cfg::blocks`].
pub type BlockId = usize;

/// A stable instruction location: pre-order index over the structured
/// body (control instructions are numbered before their children).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(pub u32);

impl std::fmt::Display for Loc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// How a basic block ends.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional edge.
    Jump(BlockId),
    /// Two-way branch on a boolean register (the `If`/`While` condition).
    Branch {
        /// The condition register.
        cond: Reg,
        /// Successor when the condition holds.
        then_: BlockId,
        /// Successor when it does not.
        else_: BlockId,
    },
    /// Kernel exit (the synthetic exit block, and blocks ending in `Trap`).
    Return,
}

impl Terminator {
    /// Successor block ids.
    pub fn succs(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch { then_, else_, .. } => vec![*then_, *else_],
            Terminator::Return => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone)]
pub struct Block {
    /// Straight-line instructions (`If`/`While` never appear here — they
    /// are lowered into [`Terminator`] edges).
    pub instrs: Vec<(Loc, Instr)>,
    /// The block terminator.
    pub term: Terminator,
    /// Predecessor block ids (filled in after lowering).
    pub preds: Vec<BlockId>,
}

/// The lowered control-flow graph of one kernel.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All basic blocks; `blocks[entry]` is the entry.
    pub blocks: Vec<Block>,
    /// Entry block id (always 0).
    pub entry: BlockId,
    /// The synthetic single exit block id.
    pub exit: BlockId,
}

struct Lowerer {
    blocks: Vec<Block>,
    next_loc: u32,
    /// The block straight-line instructions currently land in.
    cur: BlockId,
    /// One frame per open `If`/`While` bracket of the structured walk.
    open: Vec<Frame>,
}

/// Bracket state for one open control instruction during the event-driven
/// lowering: everything needed to wire edges at the `ElseArm`/`LoopBody`
/// and `Exit` events.
enum Frame {
    If { else_head: BlockId, join: BlockId },
    While { header: BlockId, loop_exit: BlockId },
}

impl Lowerer {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block { instrs: Vec::new(), term: Terminator::Return, preds: Vec::new() });
        self.blocks.len() - 1
    }

    fn loc(&mut self) -> Loc {
        let l = Loc(self.next_loc);
        self.next_loc += 1;
        l
    }

    /// Consume one event of the shared structured walk
    /// ([`mcmm_gpu_sim::ir::walk`]). Pre-order locations fall out of the
    /// event order: every `Enter` takes the next location, so control
    /// instructions are numbered before their children exactly as before.
    fn step(&mut self, step: Step<'_>) {
        match step {
            Step::Enter(instr @ (Instr::If { cond, .. } | Instr::While { cond, .. })) => {
                let _ = self.loc();
                if matches!(instr, Instr::If { .. }) {
                    let then_head = self.new_block();
                    let else_head = self.new_block();
                    let join = self.new_block();
                    self.blocks[self.cur].term =
                        Terminator::Branch { cond: *cond, then_: then_head, else_: else_head };
                    self.open.push(Frame::If { else_head, join });
                    self.cur = then_head;
                } else {
                    let header = self.new_block();
                    let loop_exit = self.new_block();
                    self.blocks[self.cur].term = Terminator::Jump(header);
                    self.open.push(Frame::While { header, loop_exit });
                    self.cur = header;
                }
            }
            Step::ElseArm(_) => {
                let Some(Frame::If { else_head, join }) = self.open.last() else {
                    unreachable!("ElseArm outside an open If")
                };
                let (else_head, join) = (*else_head, *join);
                self.blocks[self.cur].term = Terminator::Jump(join);
                self.cur = else_head;
            }
            Step::LoopBody(Instr::While { cond, .. }) => {
                let Some(Frame::While { loop_exit, .. }) = self.open.last() else {
                    unreachable!("LoopBody outside an open While")
                };
                let loop_exit = *loop_exit;
                let body_head = self.new_block();
                self.blocks[self.cur].term =
                    Terminator::Branch { cond: *cond, then_: body_head, else_: loop_exit };
                self.cur = body_head;
            }
            Step::Exit(_) => match self.open.pop().expect("Exit matches an open bracket") {
                Frame::If { join, .. } => {
                    self.blocks[self.cur].term = Terminator::Jump(join);
                    self.cur = join;
                }
                Frame::While { header, loop_exit } => {
                    self.blocks[self.cur].term = Terminator::Jump(header);
                    self.cur = loop_exit;
                }
            },
            Step::Enter(instr @ Instr::Trap { .. }) => {
                let loc = self.loc();
                let cur = self.cur;
                self.blocks[cur].instrs.push((loc, instr.clone()));
                self.blocks[cur].term = Terminator::Return;
                // Anything after a trap in the same sequence is
                // unreachable; give it a fresh (pred-less) block.
                self.cur = self.new_block();
            }
            Step::Enter(instr) => {
                let loc = self.loc();
                let cur = self.cur;
                self.blocks[cur].instrs.push((loc, instr.clone()));
            }
            Step::LoopBody(_) => unreachable!("LoopBody always carries a While"),
        }
    }
}

impl Cfg {
    /// Lower a kernel body into a CFG with a single entry and a single
    /// synthetic exit.
    pub fn build(kernel: &KernelIr) -> Cfg {
        let mut lw = Lowerer { blocks: Vec::new(), next_loc: 0, cur: 0, open: Vec::new() };
        let entry = lw.new_block();
        lw.cur = entry;
        walk(&kernel.body, &mut |step| lw.step(step));
        debug_assert!(lw.open.is_empty(), "walk closes every bracket");
        let last = lw.cur;
        let exit = lw.new_block();
        lw.blocks[last].term = Terminator::Jump(exit);
        // Blocks ended by `Trap` keep `Return`; route them to the exit so
        // the graph has one sink.
        for id in 0..lw.blocks.len() {
            if id != exit && lw.blocks[id].term == Terminator::Return {
                lw.blocks[id].term = Terminator::Jump(exit);
            }
        }
        let mut cfg = Cfg { blocks: lw.blocks, entry, exit };
        cfg.fill_preds();
        cfg
    }

    fn fill_preds(&mut self) {
        for b in &mut self.blocks {
            b.preds.clear();
        }
        for id in 0..self.blocks.len() {
            for s in self.blocks[id].term.succs() {
                self.blocks[s].preds.push(id);
            }
        }
    }

    /// Blocks reachable from the entry, in reverse post-order.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut order = Vec::new();
        let mut seen = vec![false; self.blocks.len()];
        self.postorder_from(self.entry, &mut seen, &mut order, false);
        order.reverse();
        order
    }

    fn postorder_from(
        &self,
        start: BlockId,
        seen: &mut [bool],
        order: &mut Vec<BlockId>,
        reversed: bool,
    ) {
        // Iterative DFS: (block, next-successor-index) stack.
        let mut stack = vec![(start, 0usize)];
        seen[start] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succs =
                if reversed { self.blocks[b].preds.clone() } else { self.blocks[b].term.succs() };
            if *i < succs.len() {
                let s = succs[*i];
                *i += 1;
                if !seen[s] {
                    seen[s] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(b);
                stack.pop();
            }
        }
    }

    /// Is `b` reachable from the entry?
    pub fn reachable(&self, b: BlockId) -> bool {
        self.reverse_postorder().contains(&b)
    }
}

/// Immediate-dominator tree: `idom[b]` is `b`'s immediate dominator,
/// `None` for unreachable blocks; the root's idom is itself.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block.
    pub idom: Vec<Option<BlockId>>,
    /// The tree root (entry for dominators, exit for post-dominators).
    pub root: BlockId,
}

impl DomTree {
    /// Does `a` dominate `b` (reflexively)?
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(up) if up != cur => cur = up,
                _ => return cur == a,
            }
        }
    }
}

/// Cooper–Harvey–Kennedy iterative dominator computation.
fn dom_tree(
    n_blocks: usize,
    root: BlockId,
    rpo: &[BlockId],
    preds: impl Fn(BlockId) -> Vec<BlockId>,
) -> DomTree {
    let mut rpo_index = vec![usize::MAX; n_blocks];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b] = i;
    }
    let mut idom: Vec<Option<BlockId>> = vec![None; n_blocks];
    idom[root] = Some(root);
    let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a].expect("processed block has an idom");
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b].expect("processed block has an idom");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().filter(|&&b| b != root) {
            let mut new_idom: Option<BlockId> = None;
            for p in preds(b) {
                if idom[p].is_none() {
                    continue; // unreachable or not yet processed
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if new_idom.is_some() && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    DomTree { idom, root }
}

/// The dominator tree of the CFG (rooted at the entry).
pub fn dominators(cfg: &Cfg) -> DomTree {
    let rpo = cfg.reverse_postorder();
    dom_tree(cfg.blocks.len(), cfg.entry, &rpo, |b| cfg.blocks[b].preds.clone())
}

/// The post-dominator tree of the CFG (rooted at the exit, over reversed
/// edges).
pub fn postdominators(cfg: &Cfg) -> DomTree {
    // Reverse post-order of the reversed graph from the exit.
    let mut order = Vec::new();
    let mut seen = vec![false; cfg.blocks.len()];
    cfg.postorder_from(cfg.exit, &mut seen, &mut order, true);
    order.reverse();
    dom_tree(cfg.blocks.len(), cfg.exit, &order, |b| cfg.blocks[b].term.succs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmm_gpu_sim::ir::{BinOp, CmpOp, KernelBuilder, Space, Type, Value};

    fn guarded_saxpy() -> KernelIr {
        let mut k = KernelBuilder::new("saxpy");
        let a = k.param(Type::F32);
        let x = k.param(Type::I64);
        let y = k.param(Type::I64);
        let n = k.param(Type::I32);
        let i = k.global_thread_id_x();
        let ok = k.cmp(CmpOp::Lt, i, n);
        k.if_(ok, |k| {
            let xi = k.ld_elem(Space::Global, Type::F32, x, i);
            let yi = k.ld_elem(Space::Global, Type::F32, y, i);
            let ax = k.bin(BinOp::Mul, a, xi);
            let s = k.bin(BinOp::Add, ax, yi);
            k.st_elem(Space::Global, y, i, s);
        });
        k.finish()
    }

    #[test]
    fn straight_line_is_three_blocks() {
        let mut k = KernelBuilder::new("line");
        let _ = k.param(Type::I64);
        let a = k.imm(Value::I32(1));
        k.bin_assign(BinOp::Add, a, Value::I32(2));
        let cfg = Cfg::build(&k.finish());
        // entry (with instrs) + unreachable none + exit: entry and exit.
        assert_eq!(cfg.blocks[cfg.entry].instrs.len(), 2);
        assert_eq!(cfg.blocks[cfg.entry].term, Terminator::Jump(cfg.exit));
    }

    #[test]
    fn if_lowers_to_diamond() {
        let cfg = Cfg::build(&guarded_saxpy());
        let entry = &cfg.blocks[cfg.entry];
        let Terminator::Branch { then_, else_, .. } = entry.term else {
            panic!("entry must end in a branch, got {:?}", entry.term);
        };
        // Both arms join; the join reaches the exit.
        let t_succ = cfg.blocks[then_].term.succs();
        let e_succ = cfg.blocks[else_].term.succs();
        assert_eq!(t_succ, e_succ, "both arms must reach the same join");
        assert!(cfg.blocks[else_].instrs.is_empty(), "empty else arm");
        // Each ld_elem/st_elem expands to 5 instructions (idx widen, size
        // imm, mul, add, memory op); plus the two arithmetic ops.
        assert_eq!(cfg.blocks[then_].instrs.len(), 3 * 5 + 2);
    }

    #[test]
    fn while_lowers_to_back_edge() {
        let mut k = KernelBuilder::new("loop");
        let _ = k.param(Type::I64);
        let i = k.imm(Value::I32(0));
        k.while_(
            |k| k.cmp(CmpOp::Lt, i, Value::I32(10)),
            |k| k.bin_assign(BinOp::Add, i, Value::I32(1)),
        );
        let cfg = Cfg::build(&k.finish());
        // Find the header: a block with a Branch terminator.
        let header = (0..cfg.blocks.len())
            .find(|&b| matches!(cfg.blocks[b].term, Terminator::Branch { .. }))
            .expect("loop header");
        let Terminator::Branch { then_: body, else_: after, .. } = cfg.blocks[header].term else {
            unreachable!()
        };
        assert_eq!(cfg.blocks[body].term.succs(), vec![header], "back edge");
        assert!(cfg.reachable(after));
        let doms = dominators(&cfg);
        assert!(doms.dominates(header, body));
        let pdoms = postdominators(&cfg);
        assert!(pdoms.dominates(after, header), "exit path post-dominates the header");
    }

    #[test]
    fn trap_block_jumps_to_exit() {
        let mut k = KernelBuilder::new("trap");
        let _ = k.param(Type::I64);
        k.trap("boom");
        let a = k.imm(Value::I32(1)); // dead code after the trap
        let _ = a;
        let cfg = Cfg::build(&k.finish());
        assert_eq!(cfg.blocks[cfg.entry].term, Terminator::Jump(cfg.exit));
        // The dead block exists but is unreachable.
        let dead = (0..cfg.blocks.len())
            .find(|&b| b != cfg.entry && !cfg.blocks[b].instrs.is_empty())
            .expect("dead block holds the post-trap instruction");
        assert!(!cfg.reachable(dead));
        assert!(dominators(&cfg).idom[dead].is_none());
    }

    #[test]
    fn entry_dominates_all_reachable_blocks() {
        let cfg = Cfg::build(&guarded_saxpy());
        let doms = dominators(&cfg);
        for b in cfg.reverse_postorder() {
            assert!(doms.dominates(cfg.entry, b), "entry must dominate block {b}");
        }
    }

    #[test]
    fn exit_postdominates_all_reachable_blocks() {
        let cfg = Cfg::build(&guarded_saxpy());
        let pdoms = postdominators(&cfg);
        for b in cfg.reverse_postorder() {
            assert!(pdoms.dominates(cfg.exit, b), "exit must post-dominate block {b}");
        }
    }

    #[test]
    fn preorder_locations_are_unique_and_dense() {
        let cfg = Cfg::build(&guarded_saxpy());
        let mut locs: Vec<u32> =
            cfg.blocks.iter().flat_map(|b| b.instrs.iter().map(|(l, _)| l.0)).collect();
        locs.sort_unstable();
        locs.dedup();
        // If-instructions take a loc but don't appear in any block, so the
        // sequence is strictly increasing yet may have gaps.
        assert!(locs.windows(2).all(|w| w[0] < w[1]));
    }
}
