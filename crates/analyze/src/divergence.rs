//! MCA002 — barrier under thread-divergent control flow.
//!
//! `__syncthreads()`-style barriers must be reached by **every** thread of
//! the block or none; a barrier guarded by a thread-dependent condition
//! deadlocks (or worse) on real hardware. The check runs a divergence
//! taint analysis over the structured tree: `TidX`/`LaneId` (and anything
//! computed from them, loaded behind a variant address, or assigned under
//! a variant guard) are *thread-variant*; `CtaIdX`/`NTidX`/`NCtaIdX` are
//! block-uniform. A `Bar` nested under any variant `If`/`While` guard is
//! flagged.
//!
//! Taint is computed to fixpoint first (loops can feed variance back into
//! their own guards), then one recording pass emits diagnostics.

use crate::cfg::Loc;
use crate::{Diagnostic, MCA002};
use mcmm_gpu_sim::ir::{Instr, KernelIr, Operand, Reg, Special};
use std::collections::BTreeSet;

struct Taint<'k> {
    kernel: &'k KernelIr,
    variant: BTreeSet<Reg>,
    changed: bool,
    /// Divergent barrier locations (filled on the recording pass).
    found: Vec<(Loc, String)>,
    record: bool,
    next_loc: u32,
}

impl Taint<'_> {
    fn op_variant(&self, o: &Operand) -> bool {
        matches!(o, Operand::Reg(r) if self.variant.contains(r))
    }

    fn mark(&mut self, r: Reg) {
        if self.variant.insert(r) {
            self.changed = true;
        }
    }

    fn loc(&mut self) -> Loc {
        let l = Loc(self.next_loc);
        self.next_loc += 1;
        l
    }

    fn walk(&mut self, body: &[Instr], div_ctx: bool, guard: &str) {
        for instr in body {
            let loc = self.loc();
            match instr {
                Instr::Mov { dst, src } => {
                    if div_ctx || self.op_variant(src) {
                        self.mark(*dst);
                    }
                }
                Instr::Bin { dst, a, b, .. } | Instr::Cmp { dst, a, b, .. } => {
                    if div_ctx || self.op_variant(a) || self.op_variant(b) {
                        self.mark(*dst);
                    }
                }
                Instr::Un { dst, a, .. } | Instr::Cvt { dst, a } => {
                    if div_ctx || self.op_variant(a) {
                        self.mark(*dst);
                    }
                }
                Instr::Sel { dst, cond, a, b } => {
                    if div_ctx
                        || self.variant.contains(cond)
                        || self.op_variant(a)
                        || self.op_variant(b)
                    {
                        self.mark(*dst);
                    }
                }
                Instr::Special { dst, kind } => match kind {
                    Special::TidX | Special::LaneId => self.mark(*dst),
                    Special::CtaIdX | Special::NTidX | Special::NCtaIdX => {
                        if div_ctx {
                            self.mark(*dst);
                        }
                    }
                },
                Instr::Ld { dst, addr, .. } => {
                    // A load from a uniform address yields the same value
                    // in every lane; variant addresses (or partial
                    // execution) make the destination variant.
                    if div_ctx || self.op_variant(addr) {
                        self.mark(*dst);
                    }
                }
                Instr::St { .. } => {}
                Instr::Atomic { dst, .. } => {
                    // The returned old value depends on lane ordering.
                    if let Some(d) = dst {
                        self.mark(*d);
                    }
                }
                Instr::Bar => {
                    if div_ctx && self.record {
                        self.found.push((
                            loc,
                            format!(
                                "barrier at {loc} executes under thread-divergent control \
                                 flow ({guard}) in kernel `{}`: lanes that skip the guard \
                                 never arrive — deadlock on real devices",
                                self.kernel.name
                            ),
                        ));
                    }
                }
                Instr::If { cond, then_, else_ } => {
                    let inner = div_ctx || self.variant.contains(cond);
                    let g = if div_ctx {
                        guard.to_owned()
                    } else if inner {
                        format!("guard r{} depends on the thread id", cond.0)
                    } else {
                        guard.to_owned()
                    };
                    self.walk(then_, inner, &g);
                    self.walk(else_, inner, &g);
                }
                Instr::While { cond_block, cond, body } => {
                    let inner = div_ctx || self.variant.contains(cond);
                    let g = if div_ctx {
                        guard.to_owned()
                    } else if inner {
                        format!("loop condition r{} depends on the thread id", cond.0)
                    } else {
                        guard.to_owned()
                    };
                    // Lanes exiting the loop at different trip counts make
                    // everything in the loop divergent, including the
                    // condition block re-evaluations.
                    self.walk(cond_block, inner, &g);
                    self.walk(body, inner, &g);
                }
                Instr::Trap { .. } => {}
            }
        }
    }
}

/// The set of thread-variant registers at fixpoint.
pub fn variant_regs(kernel: &KernelIr) -> BTreeSet<Reg> {
    let mut t = Taint {
        kernel,
        variant: BTreeSet::new(),
        changed: true,
        found: Vec::new(),
        record: false,
        next_loc: 0,
    };
    while t.changed {
        t.changed = false;
        t.next_loc = 0;
        t.walk(&kernel.body, false, "");
    }
    t.variant
}

/// Run the MCA002 check.
pub fn check(kernel: &KernelIr) -> Vec<Diagnostic> {
    let variant = variant_regs(kernel);
    let mut t =
        Taint { kernel, variant, changed: false, found: Vec::new(), record: true, next_loc: 0 };
    t.walk(&kernel.body, false, "");
    t.found
        .into_iter()
        .map(|(loc, message)| Diagnostic { code: MCA002, loc: Some(loc), message })
        .collect()
}
