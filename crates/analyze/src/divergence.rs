//! MCA002 — barrier under thread-divergent control flow.
//!
//! `__syncthreads()`-style barriers must be reached by **every** thread of
//! the block or none; a barrier guarded by a thread-dependent condition
//! deadlocks (or worse) on real hardware. The check runs a divergence
//! taint analysis over the structured tree: `TidX`/`LaneId` (and anything
//! computed from them, loaded behind a variant address, or assigned under
//! a variant guard) are *thread-variant*; `CtaIdX`/`NTidX`/`NCtaIdX` are
//! block-uniform. A `Bar` nested under any variant `If`/`While` guard is
//! flagged.
//!
//! The analysis is **warp-width-parametric**: a comparison between a
//! lane-affine expression and a constant is evaluated over every lane
//! `0..W` of the given width, and if the predicate comes out identical in
//! all of them (`lane < 32` at `W = 32` is uniformly true) the guard is
//! *uniform at that width* and a barrier under it is sound. The same
//! kernel re-analyzed at `W = 64` sees the predicate vary and flags the
//! barrier — exactly the class of code that runs on one vendor's warp
//! width and deadlocks on another's (the MCA009 portability check in
//! [`crate::portability`] is built on this per-width reachability).
//!
//! Taint is computed to fixpoint first (loops can feed variance back into
//! their own guards), then one recording pass emits diagnostics.

use crate::cfg::Loc;
use crate::range::{lane_bindings, LaneBindings};
use crate::{Diagnostic, MCA002};
use mcmm_gpu_sim::ir::{CmpOp, Instr, KernelIr, Operand, Reg, Special};
use std::collections::BTreeSet;

struct Taint<'k> {
    kernel: &'k KernelIr,
    warp_width: u32,
    bindings: LaneBindings,
    variant: BTreeSet<Reg>,
    changed: bool,
    /// Divergent barrier locations (filled on the recording pass).
    found: Vec<(Loc, String)>,
    record: bool,
    next_loc: u32,
}

impl Taint<'_> {
    fn op_variant(&self, o: &Operand) -> bool {
        matches!(o, Operand::Reg(r) if self.variant.contains(r))
    }

    fn mark(&mut self, r: Reg) {
        if self.variant.insert(r) {
            self.changed = true;
        }
    }

    fn loc(&mut self) -> Loc {
        let l = Loc(self.next_loc);
        self.next_loc += 1;
        l
    }

    /// Is `a <op> b` provably the same boolean in every lane at this warp
    /// width? Holds when one side is lane-affine (`LaneId + k`), the other
    /// a constant, and brute-force evaluation over lanes `0..W` agrees.
    fn degenerate_cmp(&self, op: CmpOp, a: &Operand, b: &Operand) -> bool {
        let (off, c, flipped) = match (
            self.bindings.lane_of(a),
            self.bindings.const_of(b),
            self.bindings.lane_of(b),
            self.bindings.const_of(a),
        ) {
            (Some(off), Some(c), _, _) => (off, c, false),
            (_, _, Some(off), Some(c)) => (off, c, true),
            _ => return false,
        };
        let eval = |lane: i64| {
            let (x, y) = if flipped { (c, lane + off) } else { (lane + off, c) };
            match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        };
        let first = eval(0);
        (1..i64::from(self.warp_width)).all(|lane| eval(lane) == first)
    }

    fn walk(&mut self, body: &[Instr], div_ctx: bool, guard: &str) {
        for instr in body {
            let loc = self.loc();
            match instr {
                Instr::Mov { dst, src } => {
                    if div_ctx || self.op_variant(src) {
                        self.mark(*dst);
                    }
                }
                Instr::Bin { dst, a, b, .. } => {
                    if div_ctx || self.op_variant(a) || self.op_variant(b) {
                        self.mark(*dst);
                    }
                }
                Instr::Cmp { op, dst, a, b } => {
                    if div_ctx {
                        self.mark(*dst);
                    } else if self.degenerate_cmp(*op, a, b) {
                        // Uniform at this width: every lane computes the
                        // same boolean, so the result is NOT variant even
                        // though its operands are.
                    } else if self.op_variant(a) || self.op_variant(b) {
                        self.mark(*dst);
                    }
                }
                Instr::Un { dst, a, .. } | Instr::Cvt { dst, a } => {
                    if div_ctx || self.op_variant(a) {
                        self.mark(*dst);
                    }
                }
                Instr::Sel { dst, cond, a, b } => {
                    if div_ctx
                        || self.variant.contains(cond)
                        || self.op_variant(a)
                        || self.op_variant(b)
                    {
                        self.mark(*dst);
                    }
                }
                Instr::Special { dst, kind } => match kind {
                    Special::TidX | Special::LaneId => self.mark(*dst),
                    Special::CtaIdX | Special::NTidX | Special::NCtaIdX => {
                        if div_ctx {
                            self.mark(*dst);
                        }
                    }
                },
                Instr::Ld { dst, addr, .. } => {
                    // A load from a uniform address yields the same value
                    // in every lane; variant addresses (or partial
                    // execution) make the destination variant.
                    if div_ctx || self.op_variant(addr) {
                        self.mark(*dst);
                    }
                }
                Instr::St { .. } => {}
                Instr::Atomic { dst, .. } => {
                    // The returned old value depends on lane ordering.
                    if let Some(d) = dst {
                        self.mark(*d);
                    }
                }
                Instr::Bar => {
                    if div_ctx && self.record {
                        self.found.push((
                            loc,
                            format!(
                                "barrier at {loc} executes under thread-divergent control \
                                 flow ({guard}) in kernel `{}`: lanes that skip the guard \
                                 never arrive — deadlock on real devices",
                                self.kernel.name
                            ),
                        ));
                    }
                }
                Instr::If { cond, then_, else_ } => {
                    let inner = div_ctx || self.variant.contains(cond);
                    let g = if div_ctx {
                        guard.to_owned()
                    } else if inner {
                        format!("guard r{} depends on the thread id", cond.0)
                    } else {
                        guard.to_owned()
                    };
                    self.walk(then_, inner, &g);
                    self.walk(else_, inner, &g);
                }
                Instr::While { cond_block, cond, body } => {
                    let inner = div_ctx || self.variant.contains(cond);
                    let g = if div_ctx {
                        guard.to_owned()
                    } else if inner {
                        format!("loop condition r{} depends on the thread id", cond.0)
                    } else {
                        guard.to_owned()
                    };
                    // Lanes exiting the loop at different trip counts make
                    // everything in the loop divergent, including the
                    // condition block re-evaluations.
                    self.walk(cond_block, inner, &g);
                    self.walk(body, inner, &g);
                }
                Instr::Trap { .. } => {}
            }
        }
    }
}

fn fixpoint(kernel: &KernelIr, warp_width: u32) -> Taint<'_> {
    let mut t = Taint {
        kernel,
        warp_width: warp_width.max(1),
        bindings: lane_bindings(kernel),
        variant: BTreeSet::new(),
        changed: true,
        found: Vec::new(),
        record: false,
        next_loc: 0,
    };
    while t.changed {
        t.changed = false;
        t.next_loc = 0;
        t.walk(&kernel.body, false, "");
    }
    t
}

/// The set of thread-variant registers at fixpoint, for a device of the
/// given warp width.
pub fn variant_regs(kernel: &KernelIr, warp_width: u32) -> BTreeSet<Reg> {
    fixpoint(kernel, warp_width).variant
}

/// Run the MCA002 check at one warp width.
pub fn check(kernel: &KernelIr, warp_width: u32) -> Vec<Diagnostic> {
    let mut t = fixpoint(kernel, warp_width);
    t.record = true;
    t.next_loc = 0;
    t.walk(&kernel.body, false, "");
    t.found
        .into_iter()
        .map(|(loc, message)| Diagnostic { code: MCA002, loc: Some(loc), message })
        .collect()
}

/// Locations of barriers that are divergent at the given warp width —
/// the raw per-width reachability the MCA009 portability check compares
/// across vendor widths.
pub fn divergent_barrier_locs(kernel: &KernelIr, warp_width: u32) -> BTreeSet<Loc> {
    check(kernel, warp_width).into_iter().filter_map(|d| d.loc).collect()
}
