//! The vendor-portability pass suite (MCA006–MCA010) and its per-kernel
//! [`PortabilityReport`].
//!
//! Where `MCA001`–`MCA004` ask "is this kernel correct", this suite asks
//! the paper's question: **on which vendor's device is it correct?** Every
//! analysis is parameterized by a [`DeviceSpec`] — warp width 32/64/16,
//! shared-memory capacity, thread-per-block limit — and run once per
//! preset device, yielding one [`DeviceVerdict`] per vendor:
//!
//! * `MCA006` — warp-width assumptions ([`crate::width`]): lane
//!   arithmetic against warp-sized literals whose value provably differs
//!   on one width.
//! * `MCA007` — shared-memory demand over the device's per-block capacity
//!   ([`crate::capacity`]).
//! * `MCA008` — block shape over the device's thread limit
//!   ([`crate::capacity`]).
//! * `MCA009` — width-dependent divergent barriers: divergent at *this*
//!   device's width but not at every width
//!   ([`crate::divergence::divergent_barrier_locs`]). Barriers divergent
//!   at all widths are the vendor-neutral `MCA002`'s domain and are not
//!   double-reported here.
//! * `MCA010` — order-sensitive float atomics: the simulator (like real
//!   warp schedulers) commits colliding atomics in a width-dependent
//!   order, so float `atomicAdd` sums differ across all three vendors.
//!   Reported on every device, and — unlike the other codes — treated as
//!   *informational* by the compile gates: real reduction kernels
//!   (BabelStream dot, every frontend's `reduce`) legitimately contain it
//!   and tolerate the rounding drift.
//!
//! The static claims here are differentially validated against the
//! simulator: `tests/portability_differential.rs` and `analyze --smoke`
//! run every corpus kernel on all three devices under both execution
//! tiers and require each breaks-on-vendor claim to match the observed
//! deadlock, launch refusal, or checksum divergence — with zero false
//! positives on clean kernels.

use crate::cfg::Loc;
use crate::{divergence, width, AnalysisOptions, Diagnostic, MCA006, MCA009, MCA010};
use mcmm_gpu_sim::device::DeviceSpec;
use mcmm_gpu_sim::ir::{AtomicOp, Instr, KernelIr, Operand, Type};
use std::collections::{BTreeMap, BTreeSet};

/// The portability verdict for one kernel on one vendor device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceVerdict {
    /// The device's marketing name (`DeviceSpec::name`).
    pub device: &'static str,
    /// The device's warp/wavefront/sub-group width.
    pub warp_width: u32,
    /// The portability findings specific to this device.
    pub diagnostics: Vec<Diagnostic>,
}

impl DeviceVerdict {
    /// No portability findings at all on this device.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The distinct codes present.
    pub fn codes(&self) -> BTreeSet<&'static str> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// Clean for gating purposes: no findings that predict the kernel
    /// *breaks* on this device. `MCA010` is excluded — it predicts
    /// cross-vendor result drift, not a failure, and legitimate reduction
    /// kernels carry it by design.
    pub fn gate_clean(&self) -> bool {
        self.diagnostics.iter().all(|d| d.code == MCA010)
    }

    /// The findings that gate (everything but `MCA010`).
    pub fn gating_diagnostics(&self) -> Vec<Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code != MCA010).cloned().collect()
    }
}

/// Per-kernel aggregation: one verdict per preset vendor device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortabilityReport {
    /// The analyzed kernel's name.
    pub kernel: String,
    /// One verdict per [`DeviceSpec::presets`] entry, in preset order
    /// (NVIDIA, AMD, Intel).
    pub verdicts: Vec<DeviceVerdict>,
}

impl PortabilityReport {
    /// Clean on every device.
    pub fn is_clean(&self) -> bool {
        self.verdicts.iter().all(DeviceVerdict::is_clean)
    }

    /// Gate-clean on every device (ignores informational `MCA010`).
    pub fn gate_clean(&self) -> bool {
        self.verdicts.iter().all(DeviceVerdict::gate_clean)
    }

    /// The verdict for one device, looked up by spec name.
    pub fn verdict_for(&self, device: &str) -> Option<&DeviceVerdict> {
        self.verdicts.iter().find(|v| v.device == device)
    }

    /// Devices this kernel is statically predicted to *break* on
    /// (deadlock or refused launch or wrong values — gating codes only).
    pub fn breaking_devices(&self) -> Vec<&'static str> {
        self.verdicts.iter().filter(|v| !v.gate_clean()).map(|v| v.device).collect()
    }

    /// Every distinct code across all devices.
    pub fn codes(&self) -> BTreeSet<&'static str> {
        self.verdicts.iter().flat_map(|v| v.codes()).collect()
    }
}

/// Locations of order-sensitive float atomics (`AtomicOp::Add` on `F32`/
/// `F64` values).
fn float_atomic_locs(kernel: &KernelIr) -> Vec<(Loc, Type)> {
    fn op_type(kernel: &KernelIr, o: &Operand) -> Option<Type> {
        match o {
            Operand::Reg(r) => kernel.reg_type(*r),
            Operand::Imm(v) => Some(v.ty()),
        }
    }
    fn walk(kernel: &KernelIr, body: &[Instr], next: &mut u32, out: &mut Vec<(Loc, Type)>) {
        for instr in body {
            let loc = Loc(*next);
            *next += 1;
            match instr {
                Instr::Atomic { op: AtomicOp::Add, value, .. } => {
                    if let Some(ty) = op_type(kernel, value) {
                        if ty.is_float() {
                            out.push((loc, ty));
                        }
                    }
                }
                Instr::If { then_, else_, .. } => {
                    walk(kernel, then_, next, out);
                    walk(kernel, else_, next, out);
                }
                Instr::While { cond_block, body, .. } => {
                    walk(kernel, cond_block, next, out);
                    walk(kernel, body, next, out);
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(kernel, &kernel.body, &mut 0, &mut out);
    out
}

/// Run the full portability suite over the preset vendor devices.
pub fn portability(kernel: &KernelIr, opts: &AnalysisOptions) -> PortabilityReport {
    portability_on(kernel, opts, &DeviceSpec::presets())
}

/// Run the portability suite over an explicit device list.
pub fn portability_on(
    kernel: &KernelIr,
    opts: &AnalysisOptions,
    devices: &[DeviceSpec],
) -> PortabilityReport {
    // The width universe is always the full preset set (plus any novel
    // width among `devices`): "assumes a warp width" and "divergent at
    // *some* but not all widths" are claims about the ecosystem, not
    // about whichever subset of devices a caller gates against — so a
    // single-device gate reaches the same verdict as the full report.
    let widths: Vec<u32> = {
        let mut ws: Vec<u32> = DeviceSpec::presets()
            .iter()
            .map(|d| d.warp_width)
            .chain(devices.iter().map(|d| d.warp_width))
            .collect();
        ws.sort_unstable();
        ws.dedup();
        ws
    };

    // MCA006: width-assumption findings, each carrying its breaking widths.
    let width_findings = width::findings(kernel, opts, &widths);

    // MCA009: per-width divergent-barrier reachability. Barriers divergent
    // at *every* width belong to the vendor-neutral MCA002.
    let barrier_locs: BTreeMap<u32, BTreeSet<Loc>> =
        widths.iter().map(|&w| (w, divergence::divergent_barrier_locs(kernel, w))).collect();
    let divergent_everywhere: BTreeSet<Loc> = widths
        .iter()
        .map(|w| barrier_locs[w].clone())
        .reduce(|a, b| a.intersection(&b).copied().collect())
        .unwrap_or_default();

    // MCA010: device-independent detection, reported per device.
    let float_atomics = float_atomic_locs(kernel);

    let verdicts = devices
        .iter()
        .map(|spec| {
            let mut diagnostics = Vec::new();
            for f in &width_findings {
                if f.breaking_widths.contains(&spec.warp_width) {
                    diagnostics.push(Diagnostic {
                        code: MCA006,
                        loc: Some(f.loc),
                        message: f.message.clone(),
                    });
                }
            }
            diagnostics.extend(crate::capacity::check(kernel, opts, spec));
            for &loc in barrier_locs[&spec.warp_width].difference(&divergent_everywhere) {
                diagnostics.push(Diagnostic {
                    code: MCA009,
                    loc: Some(loc),
                    message: format!(
                        "barrier at {loc} in kernel `{}` is uniform at other warp widths \
                         but divergent at width {} — lanes of a `{}` \
                         warp that fail the guard never arrive: vendor-specific deadlock",
                        kernel.name, spec.warp_width, spec.name
                    ),
                });
            }
            for &(loc, ty) in &float_atomics {
                diagnostics.push(Diagnostic {
                    code: MCA010,
                    loc: Some(loc),
                    message: format!(
                        "atomic {ty} add at {loc} in kernel `{}` commits in warp-order: \
                         the rounding of the sum depends on the {}-wide schedule of `{}` \
                         and differs across vendors",
                        kernel.name, spec.warp_width, spec.name
                    ),
                });
            }
            diagnostics.sort_by(|a, b| (a.loc, a.code).cmp(&(b.loc, b.code)));
            DeviceVerdict { device: spec.name, warp_width: spec.warp_width, diagnostics }
        })
        .collect();

    PortabilityReport { kernel: kernel.name.clone(), verdicts }
}
