//! Iterative dataflow over the CFG: reaching definitions and liveness.
//!
//! Both analyses are classic worklist fixpoints over per-block bit sets.
//! Reaching definitions seeds one **synthetic definition per non-parameter
//! register** at the entry — the "still uninitialized" state — which is
//! what the MCA001 uninitialized-read diagnostic queries. Liveness runs
//! backwards and powers the informational dead-store query.

use crate::cfg::{Block, Cfg, Loc, Terminator};
use mcmm_gpu_sim::ir::{Instr, KernelIr, Operand, Reg};

/// A dense bit set sized at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set with capacity for `n` bits.
    pub fn new(n: usize) -> Self {
        Self { words: vec![0; n.div_ceil(64)] }
    }

    /// Insert bit `i`; returns true if it was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Remove bit `i`.
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Is bit `i` set?
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Indices of set bits, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64).filter(move |b| bits & (1 << b) != 0).map(move |b| w * 64 + b)
        })
    }
}

/// The register an instruction writes, if any. `If`/`While` never appear
/// inside CFG blocks, so they are unreachable here.
pub fn instr_def(i: &Instr) -> Option<Reg> {
    match i {
        Instr::Mov { dst, .. }
        | Instr::Bin { dst, .. }
        | Instr::Un { dst, .. }
        | Instr::Cmp { dst, .. }
        | Instr::Sel { dst, .. }
        | Instr::Cvt { dst, .. }
        | Instr::Special { dst, .. }
        | Instr::Ld { dst, .. } => Some(*dst),
        Instr::Atomic { dst, .. } => *dst,
        Instr::St { .. } | Instr::Bar | Instr::Trap { .. } => None,
        Instr::If { .. } | Instr::While { .. } => unreachable!("control instr inside a CFG block"),
    }
}

fn push_operand(o: &Operand, out: &mut Vec<Reg>) {
    if let Operand::Reg(r) = o {
        out.push(*r);
    }
}

/// The registers an instruction reads.
pub fn instr_uses(i: &Instr, out: &mut Vec<Reg>) {
    out.clear();
    match i {
        Instr::Mov { src, .. } => push_operand(src, out),
        Instr::Bin { a, b, .. } | Instr::Cmp { a, b, .. } => {
            push_operand(a, out);
            push_operand(b, out);
        }
        Instr::Un { a, .. } | Instr::Cvt { a, .. } => push_operand(a, out),
        Instr::Sel { cond, a, b, .. } => {
            out.push(*cond);
            push_operand(a, out);
            push_operand(b, out);
        }
        Instr::Special { .. } | Instr::Bar | Instr::Trap { .. } => {}
        Instr::Ld { addr, .. } => push_operand(addr, out),
        Instr::St { addr, value, .. } => {
            push_operand(addr, out);
            push_operand(value, out);
        }
        Instr::Atomic { addr, value, .. } => {
            push_operand(addr, out);
            push_operand(value, out);
        }
        Instr::If { .. } | Instr::While { .. } => unreachable!("control instr inside a CFG block"),
    }
}

/// One definition site tracked by [`ReachingDefs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Def {
    /// The defined register.
    pub reg: Reg,
    /// Where: `Some(loc)` for a real write, `None` for the synthetic
    /// entry definition ("parameter value" for parameter registers,
    /// "uninitialized" for the rest).
    pub site: Option<Loc>,
}

/// Reaching definitions over the CFG.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// All definition sites; bit `i` in the sets refers to `defs[i]`.
    pub defs: Vec<Def>,
    /// Per-block in-sets.
    pub block_in: Vec<BitSet>,
    /// Per-block out-sets.
    pub block_out: Vec<BitSet>,
    /// Indices (into `defs`) of the synthetic entry definitions of
    /// **non-parameter** registers — the "uninitialized" defs.
    pub uninit_defs: Vec<usize>,
    /// Number of synthetic defs (`defs[0..n_synthetic]`, one per
    /// register); real defs follow in block order.
    pub n_synthetic: usize,
}

impl ReachingDefs {
    /// Run the analysis to fixpoint.
    pub fn compute(kernel: &KernelIr, cfg: &Cfg) -> Self {
        // Collect definition sites: one synthetic per register at entry,
        // then every real write in block order.
        let mut defs: Vec<Def> = Vec::new();
        let mut uninit_defs = Vec::new();
        for r in 0..kernel.regs.len() {
            if r >= kernel.params.len() {
                uninit_defs.push(defs.len());
            }
            defs.push(Def { reg: Reg(r as u16), site: None });
        }
        let mut def_at: Vec<Vec<usize>> = vec![Vec::new(); cfg.blocks.len()];
        for (bid, block) in cfg.blocks.iter().enumerate() {
            for (loc, instr) in &block.instrs {
                if let Some(reg) = instr_def(instr) {
                    def_at[bid].push(defs.len());
                    defs.push(Def { reg, site: Some(*loc) });
                } else {
                    def_at[bid].push(usize::MAX);
                }
            }
        }
        // Per-register def lists for kill sets.
        let mut defs_of_reg: Vec<Vec<usize>> = vec![Vec::new(); kernel.regs.len()];
        for (i, d) in defs.iter().enumerate() {
            defs_of_reg[d.reg.0 as usize].push(i);
        }

        let n = defs.len();
        let gen_kill = |bid: usize| -> (BitSet, BitSet) {
            let mut gen = BitSet::new(n);
            let mut kill = BitSet::new(n);
            for (pos, (_, instr)) in cfg.blocks[bid].instrs.iter().enumerate() {
                if let Some(reg) = instr_def(instr) {
                    let id = def_at[bid][pos];
                    for &other in &defs_of_reg[reg.0 as usize] {
                        kill.insert(other);
                        gen.remove(other);
                    }
                    kill.remove(id);
                    gen.insert(id);
                }
            }
            (gen, kill)
        };
        let gk: Vec<(BitSet, BitSet)> = (0..cfg.blocks.len()).map(gen_kill).collect();

        let mut block_in = vec![BitSet::new(n); cfg.blocks.len()];
        let mut block_out = vec![BitSet::new(n); cfg.blocks.len()];
        // Boundary condition: every synthetic def reaches the entry.
        let mut seed = BitSet::new(n);
        for i in 0..kernel.regs.len() {
            seed.insert(i);
        }
        let rpo = cfg.reverse_postorder();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                let mut inp = if b == cfg.entry { seed.clone() } else { BitSet::new(n) };
                for &p in &cfg.blocks[b].preds {
                    inp.union_with(&block_out[p]);
                }
                // out = gen ∪ (in − kill)
                let (gen, kill) = &gk[b];
                let mut out = inp.clone();
                for k in kill.iter() {
                    out.remove(k);
                }
                out.union_with(gen);
                if out != block_out[b] {
                    block_out[b] = out;
                    changed = true;
                }
                block_in[b] = inp;
            }
        }
        Self { defs, block_in, block_out, uninit_defs, n_synthetic: kernel.regs.len() }
    }

    /// Walk one block replaying the transfer function, calling `visit`
    /// with the state **before** each instruction.
    pub fn for_each_state<'c>(
        &self,
        cfg: &'c Cfg,
        bid: usize,
        mut visit: impl FnMut(&BitSet, Loc, &'c Instr),
    ) {
        // Real def ids were appended in block order after the synthetic
        // ones, so this block's first real def id is an offset count.
        let mut next_id = self.n_synthetic
            + cfg.blocks[..bid]
                .iter()
                .flat_map(|b| b.instrs.iter())
                .filter(|(_, i)| instr_def(i).is_some())
                .count();
        let mut state = self.block_in[bid].clone();
        for (loc, instr) in &cfg.blocks[bid].instrs {
            visit(&state, *loc, instr);
            if let Some(reg) = instr_def(instr) {
                // Kill every other def of the register, then gen this one.
                for (i, d) in self.defs.iter().enumerate() {
                    if d.reg == reg {
                        state.remove(i);
                    }
                }
                state.insert(next_id);
                next_id += 1;
            }
        }
    }
}

/// Liveness over the CFG (backward may-analysis).
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Per-block live-in registers (bit index = register number).
    pub live_in: Vec<BitSet>,
    /// Per-block live-out registers.
    pub live_out: Vec<BitSet>,
}

impl Liveness {
    /// Run the analysis to fixpoint.
    pub fn compute(kernel: &KernelIr, cfg: &Cfg) -> Self {
        let n = kernel.regs.len();
        let use_def = |block: &Block| -> (BitSet, BitSet) {
            let mut uses = BitSet::new(n);
            let mut defs = BitSet::new(n);
            let mut buf = Vec::new();
            for (_, instr) in &block.instrs {
                instr_uses(instr, &mut buf);
                for r in &buf {
                    if !defs.contains(r.0 as usize) {
                        uses.insert(r.0 as usize);
                    }
                }
                if let Some(r) = instr_def(instr) {
                    defs.insert(r.0 as usize);
                }
            }
            if let Terminator::Branch { cond, .. } = &block.term {
                if !defs.contains(cond.0 as usize) {
                    uses.insert(cond.0 as usize);
                }
            }
            (uses, defs)
        };
        let ud: Vec<(BitSet, BitSet)> = cfg.blocks.iter().map(use_def).collect();
        let mut live_in = vec![BitSet::new(n); cfg.blocks.len()];
        let mut live_out = vec![BitSet::new(n); cfg.blocks.len()];
        let mut order = cfg.reverse_postorder();
        order.reverse(); // postorder: good ordering for a backward analysis
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let mut out = BitSet::new(n);
                for s in cfg.blocks[b].term.succs() {
                    out.union_with(&live_in[s]);
                }
                let (uses, defs) = &ud[b];
                let mut inp = out.clone();
                for d in defs.iter() {
                    inp.remove(d);
                }
                inp.union_with(uses);
                if out != live_out[b] {
                    live_out[b] = out;
                    changed = true;
                }
                if inp != live_in[b] {
                    live_in[b] = inp;
                    changed = true;
                }
            }
        }
        Self { live_in, live_out }
    }
}

/// Side-effect-free definitions whose value is never read afterwards
/// (informational — not a gated diagnostic).
pub fn dead_stores(_kernel: &KernelIr, cfg: &Cfg, liveness: &Liveness) -> Vec<(Loc, Reg)> {
    let mut dead = Vec::new();
    let mut buf = Vec::new();
    for (bid, block) in cfg.blocks.iter().enumerate() {
        // Walk backwards tracking live registers.
        let mut live = liveness.live_out[bid].clone();
        let mut rev: Vec<&(Loc, Instr)> = block.instrs.iter().collect();
        rev.reverse();
        if let Terminator::Branch { cond, .. } = &block.term {
            live.insert(cond.0 as usize);
        }
        for (loc, instr) in rev {
            let pure = matches!(
                instr,
                Instr::Mov { .. }
                    | Instr::Bin { .. }
                    | Instr::Un { .. }
                    | Instr::Cmp { .. }
                    | Instr::Sel { .. }
                    | Instr::Cvt { .. }
                    | Instr::Special { .. }
            );
            if let Some(r) = instr_def(instr) {
                if pure && !live.contains(r.0 as usize) {
                    dead.push((*loc, r));
                }
                live.remove(r.0 as usize);
            }
            instr_uses(instr, &mut buf);
            for r in &buf {
                live.insert(r.0 as usize);
            }
        }
    }
    dead.sort_unstable_by_key(|(l, _)| *l);
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmm_gpu_sim::ir::{BinOp, CmpOp, KernelBuilder, Space, Type, Value};

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        let collected: Vec<usize> = s.iter().collect();
        assert_eq!(collected, vec![0, 129]);
        s.remove(0);
        assert!(!s.contains(0));
    }

    #[test]
    fn straight_line_defs_reach_the_exit() {
        let mut k = KernelBuilder::new("t");
        let p = k.param(Type::I64);
        let a = k.imm(Value::I32(1));
        let _ = (p, a);
        let kernel = k.finish();
        let cfg = Cfg::build(&kernel);
        let rd = ReachingDefs::compute(&kernel, &cfg);
        // At the exit, register a's synthetic def is killed by the Mov.
        let exit_in = &rd.block_in[cfg.exit];
        let a_synth = rd
            .uninit_defs
            .iter()
            .find(|&&d| rd.defs[d].reg == a)
            .copied()
            .expect("a has a synthetic def");
        assert!(!exit_in.contains(a_synth), "real def must kill the synthetic one");
    }

    #[test]
    fn branch_keeps_uninit_def_alive_on_one_path() {
        // r defined only in the then-branch: synthetic def must survive
        // to the join.
        let mut k = KernelBuilder::new("half");
        let _p = k.param(Type::I64);
        let i = k.thread_id_x();
        let c = k.cmp(CmpOp::Lt, i, Value::I32(4));
        let r = k.imm(Value::I32(0));
        // overwrite r only under the guard
        k.if_(c, |k| k.assign(r, Value::I32(7)));
        let kernel = k.finish();
        let cfg = Cfg::build(&kernel);
        let rd = ReachingDefs::compute(&kernel, &cfg);
        // r's real pre-branch def and its conditional def both reach exit;
        // the synthetic def does not (killed unconditionally by the imm).
        let r_defs: Vec<&Def> =
            rd.block_in[cfg.exit].iter().map(|i| &rd.defs[i]).filter(|d| d.reg == r).collect();
        assert_eq!(r_defs.len(), 2);
        assert!(r_defs.iter().all(|d| d.site.is_some()));
    }

    #[test]
    fn liveness_reaches_fixpoint_and_params_live_into_loops() {
        let mut k = KernelBuilder::new("loop");
        let out = k.param(Type::I64);
        let i = k.imm(Value::I32(0));
        k.while_(
            |k| k.cmp(CmpOp::Lt, i, Value::I32(8)),
            |k| {
                k.st_elem(Space::Global, out, i, Value::I32(1));
                k.bin_assign(BinOp::Add, i, Value::I32(1));
            },
        );
        let kernel = k.finish();
        let cfg = Cfg::build(&kernel);
        let lv = Liveness::compute(&kernel, &cfg);
        // `out` and `i` are live into the loop header.
        let header = (0..cfg.blocks.len())
            .find(|&b| matches!(cfg.blocks[b].term, Terminator::Branch { .. }))
            .unwrap();
        assert!(lv.live_in[header].contains(out.0 as usize));
        assert!(lv.live_in[header].contains(i.0 as usize));
    }

    #[test]
    fn dead_store_detected() {
        let mut k = KernelBuilder::new("dead");
        let _p = k.param(Type::I64);
        let a = k.imm(Value::I32(1)); // never read again
        let _ = a;
        let kernel = k.finish();
        let cfg = Cfg::build(&kernel);
        let lv = Liveness::compute(&kernel, &cfg);
        let dead = dead_stores(&kernel, &cfg, &lv);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].1, a);
    }
}
