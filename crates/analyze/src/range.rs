//! MCA004 — out-of-bounds memory accesses via value-range analysis.
//!
//! An abstract interpreter over the structured tree tracks each register as
//! a *base + interval* pair: the base is either nothing (a plain integer),
//! a pointer parameter (offset-from-base tracking), or unknown. Intervals
//! are refined by comparison guards (`if (i < n)` narrows `i` inside the
//! then-branch), joined at control-flow merges, and widened to fixpoint
//! around loops.
//!
//! Accesses are checked against two kinds of extents:
//!
//! * **Shared memory** — the kernel's own `shared_bytes` declaration is
//!   always known, so any shared access whose byte interval is finite and
//!   escapes `[0, shared_bytes)` is flagged.
//! * **Global memory** — only checked when the analysis options supply an
//!   extent for the pointer parameter ([`AnalysisOptions::buffer_bytes`]);
//!   unknown buffers are never flagged (no false positives on kernels
//!   whose sizes are launch-time values).
//!
//! Only accesses with *finite, provable* out-of-range intervals are
//! reported, so a clean kernel with runtime-sized buffers stays clean.

use crate::cfg::Loc;
use crate::{AnalysisOptions, Diagnostic, MCA004};
use mcmm_gpu_sim::ir::{
    BinOp, CmpOp, Instr, KernelIr, Operand, Reg, Space, Special, Type, UnOp, Value,
};

/// Sentinel "infinity" for interval bounds; large enough to dominate any
/// i64 arithmetic, small enough that saturating i128 ops never wrap.
const INF: i128 = 1 << 100;

/// A closed integer interval `[lo, hi]` with saturating endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Iv {
    /// Lower bound (`-INF` = unbounded below).
    pub lo: i128,
    /// Upper bound (`INF` = unbounded above).
    pub hi: i128,
}

impl Iv {
    fn top() -> Self {
        Iv { lo: -INF, hi: INF }
    }

    fn point(v: i128) -> Self {
        Iv { lo: v, hi: v }
    }

    fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// Both endpoints are real numbers, not sentinels.
    fn finite(self) -> bool {
        self.lo > -INF && self.hi < INF
    }

    fn clamp(self) -> Self {
        Iv { lo: self.lo.clamp(-INF, INF), hi: self.hi.clamp(-INF, INF) }
    }

    fn hull(a: Self, b: Self) -> Self {
        Iv { lo: a.lo.min(b.lo), hi: a.hi.max(b.hi) }
    }

    fn add(a: Self, b: Self) -> Self {
        Iv { lo: a.lo.saturating_add(b.lo), hi: a.hi.saturating_add(b.hi) }.clamp()
    }

    fn sub(a: Self, b: Self) -> Self {
        Iv { lo: a.lo.saturating_sub(b.hi), hi: a.hi.saturating_sub(b.lo) }.clamp()
    }

    fn mul(a: Self, b: Self) -> Self {
        let ps = [
            a.lo.saturating_mul(b.lo),
            a.lo.saturating_mul(b.hi),
            a.hi.saturating_mul(b.lo),
            a.hi.saturating_mul(b.hi),
        ];
        Iv { lo: *ps.iter().min().unwrap(), hi: *ps.iter().max().unwrap() }.clamp()
    }

    fn neg(self) -> Self {
        Iv { lo: self.hi.saturating_neg(), hi: self.lo.saturating_neg() }.clamp()
    }
}

/// What a register's value is an offset from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Base {
    /// A plain integer — the interval is the value itself.
    None,
    /// Offset from the pointer passed as parameter register `p`.
    Ptr(u16),
    /// Mixed/unknown provenance; never checked.
    Many,
}

/// Abstract value: base + interval.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AbsVal {
    base: Base,
    iv: Iv,
}

impl AbsVal {
    fn top() -> Self {
        AbsVal { base: Base::None, iv: Iv::top() }
    }

    fn many() -> Self {
        AbsVal { base: Base::Many, iv: Iv::top() }
    }

    fn join(a: Self, b: Self) -> Self {
        let base = if a.base == b.base { a.base } else { Base::Many };
        AbsVal { base, iv: Iv::hull(a.iv, b.iv) }
    }
}

/// A remembered comparison fact `a <op> b` held by a Bool register.
#[derive(Debug, Clone, Copy)]
struct Fact {
    op: CmpOp,
    a: FOp,
    b: FOp,
}

/// A fact operand: an immediate or a register pinned to the version it had
/// when the comparison executed (a later write invalidates the fact).
#[derive(Debug, Clone, Copy)]
enum FOp {
    Imm(i128),
    Reg(Reg, u64),
}

struct Analyzer<'k> {
    kernel: &'k KernelIr,
    opts: &'k AnalysisOptions,
    env: Vec<AbsVal>,
    /// Monotone write stamps; `facts` referencing stale stamps are dead.
    version: Vec<u64>,
    tick: u64,
    facts: Vec<Option<Fact>>,
    record: bool,
    next_loc: u32,
    found: Vec<(Loc, String)>,
}

impl Analyzer<'_> {
    fn loc(&mut self) -> Loc {
        let l = Loc(self.next_loc);
        self.next_loc += 1;
        l
    }

    fn write(&mut self, r: Reg, v: AbsVal) {
        self.env[r.0 as usize] = v;
        self.tick += 1;
        self.version[r.0 as usize] = self.tick;
        self.facts[r.0 as usize] = None;
    }

    fn eval(&self, o: &Operand) -> AbsVal {
        match o {
            Operand::Reg(r) => self.env[r.0 as usize],
            Operand::Imm(v) => match v {
                Value::I32(x) => AbsVal { base: Base::None, iv: Iv::point(i128::from(*x)) },
                Value::I64(x) => AbsVal { base: Base::None, iv: Iv::point(i128::from(*x)) },
                _ => AbsVal::top(),
            },
        }
    }

    fn op_type(&self, o: &Operand) -> Type {
        match o {
            Operand::Reg(r) => self.kernel.regs[r.0 as usize],
            Operand::Imm(v) => v.ty(),
        }
    }

    fn fact_op(&self, o: &Operand) -> Option<FOp> {
        match o {
            Operand::Reg(r) => Some(FOp::Reg(*r, self.version[r.0 as usize])),
            Operand::Imm(Value::I32(x)) => Some(FOp::Imm(i128::from(*x))),
            Operand::Imm(Value::I64(x)) => Some(FOp::Imm(i128::from(*x))),
            Operand::Imm(_) => None,
        }
    }

    /// Current interval behind a fact operand, if it is still valid and a
    /// plain integer.
    fn fact_iv(&self, f: FOp) -> Option<Iv> {
        match f {
            FOp::Imm(v) => Some(Iv::point(v)),
            FOp::Reg(r, ver) => {
                let i = r.0 as usize;
                if self.version[i] == ver && self.env[i].base == Base::None {
                    Some(self.env[i].iv)
                } else {
                    None
                }
            }
        }
    }

    /// Narrow `env` assuming the Bool register `cond` is `polarity`.
    fn refine(&mut self, cond: Reg, polarity: bool) {
        let Some(fact) = self.facts[cond.0 as usize] else { return };
        let op = if polarity {
            fact.op
        } else {
            match fact.op {
                CmpOp::Eq => CmpOp::Ne,
                CmpOp::Ne => CmpOp::Eq,
                CmpOp::Lt => CmpOp::Ge,
                CmpOp::Le => CmpOp::Gt,
                CmpOp::Gt => CmpOp::Le,
                CmpOp::Ge => CmpOp::Lt,
            }
        };
        let (a_iv, b_iv) = (self.fact_iv(fact.a), self.fact_iv(fact.b));
        // Narrow one side against the other's pre-refinement interval;
        // refinement does not bump versions (the value is unchanged).
        let mut narrow = |side: FOp, bound: Option<Iv>, op_for_side: CmpOp| {
            let (FOp::Reg(r, ver), Some(bv)) = (side, bound) else { return };
            let i = r.0 as usize;
            if self.version[i] != ver || self.env[i].base != Base::None {
                return;
            }
            let iv = &mut self.env[i].iv;
            match op_for_side {
                CmpOp::Lt => iv.hi = iv.hi.min(bv.hi.saturating_sub(1)),
                CmpOp::Le => iv.hi = iv.hi.min(bv.hi),
                CmpOp::Gt => iv.lo = iv.lo.max(bv.lo.saturating_add(1)),
                CmpOp::Ge => iv.lo = iv.lo.max(bv.lo),
                CmpOp::Eq => {
                    iv.lo = iv.lo.max(bv.lo);
                    iv.hi = iv.hi.min(bv.hi);
                }
                CmpOp::Ne => {}
            }
        };
        narrow(fact.a, b_iv, op);
        // Mirror the operator for the right-hand side: `a < b` bounds `b`
        // from below by `a`.
        let mirrored = match op {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        };
        narrow(fact.b, a_iv, mirrored);
    }

    fn check_access(&mut self, loc: Loc, space: Space, addr: &Operand, bytes: u64, what: &str) {
        if !self.record {
            return;
        }
        let v = self.eval(addr);
        if v.iv.is_empty() {
            return; // branch proven dead by refinement
        }
        let bytes = i128::from(bytes);
        match space {
            Space::Shared => {
                let extent = i128::from(self.kernel.shared_bytes);
                if v.base == Base::None
                    && v.iv.finite()
                    && (v.iv.lo < 0 || v.iv.hi.saturating_add(bytes) > extent)
                {
                    self.found.push((
                        loc,
                        format!(
                            "shared-memory {what} at {loc} touches byte offsets \
                             [{}, {}) but the kernel `{}` declares only {extent} \
                             shared bytes",
                            v.iv.lo,
                            v.iv.hi.saturating_add(bytes),
                            self.kernel.name
                        ),
                    ));
                }
            }
            Space::Global => {
                let Base::Ptr(p) = v.base else { return };
                let Some(&ext) = self.opts.buffer_bytes.get(&p) else { return };
                let extent = i128::from(ext);
                if v.iv.finite() && (v.iv.lo < 0 || v.iv.hi.saturating_add(bytes) > extent) {
                    self.found.push((
                        loc,
                        format!(
                            "global {what} through pointer parameter r{p} at {loc} \
                             touches byte offsets [{}, {}) beyond its declared \
                             {extent}-byte extent in kernel `{}`",
                            v.iv.lo,
                            v.iv.hi.saturating_add(bytes),
                            self.kernel.name
                        ),
                    ));
                }
            }
        }
    }

    fn bin_val(&self, op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
        use Base::*;
        match op {
            BinOp::Add => {
                let base = match (a.base, b.base) {
                    (None, None) => None,
                    (Ptr(p), None) | (None, Ptr(p)) => Ptr(p),
                    _ => Many,
                };
                AbsVal { base, iv: Iv::add(a.iv, b.iv) }
            }
            BinOp::Sub => {
                let base = match (a.base, b.base) {
                    (None, None) => None,
                    (Ptr(p), None) => Ptr(p),
                    _ => Many,
                };
                AbsVal { base, iv: Iv::sub(a.iv, b.iv) }
            }
            BinOp::Mul if a.base == None && b.base == None => {
                AbsVal { base: None, iv: Iv::mul(a.iv, b.iv) }
            }
            BinOp::Min if a.base == None && b.base == None => {
                AbsVal { base: None, iv: Iv { lo: a.iv.lo.min(b.iv.lo), hi: a.iv.hi.min(b.iv.hi) } }
            }
            BinOp::Max if a.base == None && b.base == None => {
                AbsVal { base: None, iv: Iv { lo: a.iv.lo.max(b.iv.lo), hi: a.iv.hi.max(b.iv.hi) } }
            }
            // Non-negative / positive division narrows; anything else is top.
            BinOp::Div
                if a.base == None
                    && b.base == None
                    && a.iv.lo >= 0
                    && b.iv.lo >= 1
                    && a.iv.finite()
                    && b.iv.finite() =>
            {
                AbsVal { base: None, iv: Iv { lo: a.iv.lo / b.iv.hi, hi: a.iv.hi / b.iv.lo } }
            }
            BinOp::And if a.base == None && b.base == None && a.iv.lo >= 0 && b.iv.lo >= 0 => {
                AbsVal { base: None, iv: Iv { lo: 0, hi: a.iv.hi.min(b.iv.hi) } }
            }
            _ => {
                if a.base == None && b.base == None {
                    AbsVal::top()
                } else {
                    AbsVal::many()
                }
            }
        }
    }

    fn walk(&mut self, body: &[Instr]) {
        for instr in body {
            let loc = self.loc();
            match instr {
                Instr::Mov { dst, src } => {
                    let v = self.eval(src);
                    self.write(*dst, v);
                }
                Instr::Bin { op, dst, a, b } => {
                    let v = self.bin_val(*op, self.eval(a), self.eval(b));
                    self.write(*dst, v);
                }
                Instr::Un { op, dst, a } => {
                    let av = self.eval(a);
                    let v = match op {
                        UnOp::Neg if av.base == Base::None => {
                            AbsVal { base: Base::None, iv: av.iv.neg() }
                        }
                        UnOp::Abs if av.base == Base::None => {
                            let iv = if av.iv.lo >= 0 {
                                av.iv
                            } else if av.iv.hi <= 0 {
                                av.iv.neg()
                            } else {
                                Iv { lo: 0, hi: av.iv.hi.max(av.iv.neg().hi) }
                            };
                            AbsVal { base: Base::None, iv }
                        }
                        _ => AbsVal::top(),
                    };
                    self.write(*dst, v);
                }
                Instr::Cmp { op, dst, a, b } => {
                    let fact = match (
                        self.op_type(a).is_int(),
                        self.op_type(b).is_int(),
                        self.fact_op(a),
                        self.fact_op(b),
                    ) {
                        (true, true, Some(fa), Some(fb)) => Some(Fact { op: *op, a: fa, b: fb }),
                        _ => None,
                    };
                    self.write(*dst, AbsVal::top());
                    self.facts[dst.0 as usize] = fact;
                }
                Instr::Sel { dst, a, b, .. } => {
                    let v = AbsVal::join(self.eval(a), self.eval(b));
                    self.write(*dst, v);
                }
                Instr::Cvt { dst, a } => {
                    let dt = self.kernel.regs[dst.0 as usize];
                    let at = self.op_type(a);
                    let v = if dt.is_int() && at.is_int() {
                        let av = self.eval(a);
                        // Narrowing to i32 wraps; only keep intervals that
                        // provably fit.
                        let fits_i32 =
                            av.iv.lo >= i128::from(i32::MIN) && av.iv.hi <= i128::from(i32::MAX);
                        if dt == Type::I64 || fits_i32 {
                            av
                        } else if av.base == Base::None {
                            AbsVal::top()
                        } else {
                            AbsVal::many()
                        }
                    } else {
                        AbsVal::top()
                    };
                    self.write(*dst, v);
                }
                Instr::Special { dst, kind } => {
                    let (lo, hi) = match kind {
                        Special::TidX => (0, i128::from(self.opts.block_dim) - 1),
                        Special::NTidX => {
                            (i128::from(self.opts.block_dim), i128::from(self.opts.block_dim))
                        }
                        Special::CtaIdX => (0, i128::from(self.opts.grid_dim) - 1),
                        Special::NCtaIdX => {
                            (i128::from(self.opts.grid_dim), i128::from(self.opts.grid_dim))
                        }
                        Special::LaneId => (0, i128::from(self.opts.warp_width) - 1),
                    };
                    self.write(*dst, AbsVal { base: Base::None, iv: Iv { lo, hi } });
                }
                Instr::Ld { dst, space, addr } => {
                    let bytes = self.kernel.regs[dst.0 as usize].size();
                    self.check_access(loc, *space, addr, bytes, "load");
                    self.write(*dst, AbsVal::top());
                }
                Instr::St { space, addr, value } => {
                    let bytes = self.op_type(value).size();
                    self.check_access(loc, *space, addr, bytes, "store");
                }
                Instr::Atomic { space, addr, value, dst, .. } => {
                    let bytes = self.op_type(value).size();
                    self.check_access(loc, *space, addr, bytes, "atomic");
                    if let Some(d) = dst {
                        self.write(*d, AbsVal::top());
                    }
                }
                Instr::Bar | Instr::Trap { .. } => {}
                Instr::If { cond, then_, else_ } => {
                    let saved_env = self.env.clone();
                    let saved_ver = self.version.clone();
                    let saved_facts = self.facts.clone();
                    self.refine(*cond, true);
                    self.walk(then_);
                    let then_env = std::mem::replace(&mut self.env, saved_env);
                    let then_ver = std::mem::replace(&mut self.version, saved_ver);
                    self.facts = saved_facts;
                    self.refine(*cond, false);
                    self.walk(else_);
                    for i in 0..self.env.len() {
                        self.env[i] = AbsVal::join(then_env[i], self.env[i]);
                        self.version[i] = then_ver[i].max(self.version[i]);
                        if then_ver[i] != self.version[i] {
                            self.facts[i] = None;
                        }
                    }
                }
                Instr::While { cond_block, cond, body } => {
                    let loop_start = self.next_loc;
                    let was_recording = self.record;
                    self.record = false;
                    // Fixpoint on the loop-header state, widening after two
                    // refining passes so strictly-growing bounds jump to
                    // infinity instead of crawling.
                    let mut header = self.env.clone();
                    // Facts from inside a previous pass must not survive
                    // into the next one: the env reset below changes values
                    // without bumping versions. Facts from *before* the
                    // loop stay valid (any body write bumps the version).
                    let entry_facts = self.facts.clone();
                    for pass in 0..64 {
                        self.next_loc = loop_start;
                        self.env = header.clone();
                        self.facts = entry_facts.clone();
                        self.walk(cond_block);
                        self.refine(*cond, true);
                        self.walk(body);
                        let mut next: Vec<AbsVal> = header
                            .iter()
                            .zip(&self.env)
                            .map(|(h, e)| AbsVal::join(*h, *e))
                            .collect();
                        if pass >= 2 {
                            for (n, h) in next.iter_mut().zip(&header) {
                                if n.iv.lo < h.iv.lo {
                                    n.iv.lo = -INF;
                                }
                                if n.iv.hi > h.iv.hi {
                                    n.iv.hi = INF;
                                }
                            }
                        }
                        if next == header {
                            break;
                        }
                        header = next;
                    }
                    // Recording pass over the stable state, then exit with
                    // the header narrowed by the negated condition.
                    self.record = was_recording;
                    self.next_loc = loop_start;
                    self.env = header;
                    self.facts = entry_facts;
                    self.walk(cond_block);
                    let exit_env = self.env.clone();
                    let exit_ver = self.version.clone();
                    let exit_facts = self.facts.clone();
                    self.refine(*cond, true);
                    self.walk(body);
                    self.env = exit_env;
                    self.version = exit_ver;
                    self.facts = exit_facts;
                    self.refine(*cond, false);
                }
            }
        }
    }
}

/// Closed-form classifications of registers, shared by the width-parametric
/// passes ([`crate::divergence`], [`crate::width`]). Where the interval
/// machinery above answers "what range can this register take", these
/// bindings answer the stronger question "what *function of the lane id* is
/// this register" — the form needed to evaluate a predicate at several
/// warp widths and compare the outcomes.
#[derive(Debug, Default, Clone)]
pub(crate) struct LaneBindings {
    /// Registers provably equal to `LaneId + offset` in every lane.
    pub lane: std::collections::BTreeMap<Reg, i64>,
    /// Registers provably equal to a compile-time integer constant.
    pub consts: std::collections::BTreeMap<Reg, i64>,
}

impl LaneBindings {
    /// Resolve an operand to `LaneId + k` form, if classified.
    pub fn lane_of(&self, o: &Operand) -> Option<i64> {
        match o {
            Operand::Reg(r) => self.lane.get(r).copied(),
            Operand::Imm(_) => None,
        }
    }

    /// Resolve an operand to a constant integer, if classified.
    pub fn const_of(&self, o: &Operand) -> Option<i64> {
        match o {
            Operand::Reg(r) => self.consts.get(r).copied(),
            Operand::Imm(Value::I32(v)) => Some(i64::from(*v)),
            Operand::Imm(Value::I64(v)) => Some(*v),
            Operand::Imm(_) => None,
        }
    }
}

/// Compute the lane-affine/constant bindings of a kernel.
///
/// Soundness rule: a register is classified only if it is written exactly
/// once in the entire kernel *and* that single write sits at top level
/// (outside every `If`/`While`), so the binding holds in every lane on
/// every execution. Loop induction variables (written per iteration) and
/// registers defined under divergent guards (undefined in skipping lanes)
/// are deliberately left out.
pub(crate) fn lane_bindings(kernel: &KernelIr) -> LaneBindings {
    use std::collections::BTreeMap;
    let mut writes: BTreeMap<Reg, u32> = BTreeMap::new();
    fn count(body: &[Instr], writes: &mut BTreeMap<Reg, u32>) {
        for instr in body {
            match instr {
                Instr::Mov { dst, .. }
                | Instr::Bin { dst, .. }
                | Instr::Un { dst, .. }
                | Instr::Cmp { dst, .. }
                | Instr::Sel { dst, .. }
                | Instr::Cvt { dst, .. }
                | Instr::Special { dst, .. }
                | Instr::Ld { dst, .. } => *writes.entry(*dst).or_default() += 1,
                Instr::Atomic { dst: Some(d), .. } => *writes.entry(*d).or_default() += 1,
                Instr::Atomic { dst: None, .. }
                | Instr::St { .. }
                | Instr::Bar
                | Instr::Trap { .. } => {}
                Instr::If { then_, else_, .. } => {
                    count(then_, writes);
                    count(else_, writes);
                }
                Instr::While { cond_block, body, .. } => {
                    count(cond_block, writes);
                    count(body, writes);
                }
            }
        }
    }
    count(&kernel.body, &mut writes);
    let single = |r: &Reg| writes.get(r).copied() == Some(1);

    let mut b = LaneBindings::default();
    for instr in &kernel.body {
        match instr {
            Instr::Special { dst, kind: Special::LaneId } if single(dst) => {
                b.lane.insert(*dst, 0);
            }
            Instr::Mov { dst, src } if single(dst) => {
                if let Some(off) = b.lane_of(src) {
                    b.lane.insert(*dst, off);
                } else if let Some(c) = b.const_of(src) {
                    b.consts.insert(*dst, c);
                }
            }
            Instr::Cvt { dst, a } if single(dst) => {
                let (dt, at) = (kernel.reg_type(*dst), operand_type(kernel, a));
                if matches!(dt, Some(t) if t.is_int()) && matches!(at, Some(t) if t.is_int()) {
                    if let Some(off) = b.lane_of(a) {
                        b.lane.insert(*dst, off);
                    } else if let Some(c) = b.const_of(a) {
                        b.consts.insert(*dst, c);
                    }
                }
            }
            Instr::Bin { op, dst, a, b: rhs } if single(dst) => {
                let (la, lb) = (b.lane_of(a), b.lane_of(rhs));
                let (ca, cb) = (b.const_of(a), b.const_of(rhs));
                match (op, la, lb, ca, cb) {
                    (BinOp::Add, Some(off), None, None, Some(c))
                    | (BinOp::Add, None, Some(off), Some(c), None) => {
                        b.lane.insert(*dst, off.wrapping_add(c));
                    }
                    (BinOp::Sub, Some(off), None, None, Some(c)) => {
                        b.lane.insert(*dst, off.wrapping_sub(c));
                    }
                    (op, None, None, Some(x), Some(y)) => {
                        let v = match op {
                            BinOp::Add => Some(x.wrapping_add(y)),
                            BinOp::Sub => Some(x.wrapping_sub(y)),
                            BinOp::Mul => Some(x.wrapping_mul(y)),
                            BinOp::And => Some(x & y),
                            BinOp::Or => Some(x | y),
                            BinOp::Xor => Some(x ^ y),
                            _ => None,
                        };
                        if let Some(v) = v {
                            b.consts.insert(*dst, v);
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    b
}

fn operand_type(kernel: &KernelIr, o: &Operand) -> Option<Type> {
    match o {
        Operand::Reg(r) => kernel.reg_type(*r),
        Operand::Imm(v) => Some(v.ty()),
    }
}

/// Run the MCA004 check.
pub fn check(kernel: &KernelIr, opts: &AnalysisOptions) -> Vec<Diagnostic> {
    let n = kernel.regs.len();
    let mut env = vec![AbsVal::top(); n];
    for (i, _) in kernel.params.iter().enumerate() {
        let p = i as u16;
        if opts.buffer_bytes.contains_key(&p) {
            env[i] = AbsVal { base: Base::Ptr(p), iv: Iv::point(0) };
        } else if let Some(&v) = opts.param_values.get(&p) {
            env[i] = AbsVal { base: Base::None, iv: Iv::point(i128::from(v)) };
        }
    }
    let mut a = Analyzer {
        kernel,
        opts,
        env,
        version: vec![0; n],
        tick: 0,
        facts: vec![None; n],
        record: true,
        next_loc: 0,
        found: Vec::new(),
    };
    a.walk(&kernel.body);
    let mut seen = std::collections::BTreeSet::new();
    a.found
        .into_iter()
        .filter(|(loc, _)| seen.insert(*loc))
        .map(|(loc, message)| Diagnostic { code: MCA004, loc: Some(loc), message })
        .collect()
}
