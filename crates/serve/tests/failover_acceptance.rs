//! Acceptance: the failover router under a seeded fault storm.
//!
//! The resilience contract, end to end: with failover ON, a fault storm
//! plus a sticky route outage costs *zero* jobs and the results stay
//! byte-identical to the serial fault-free reference; with failover OFF
//! and the same seed, jobs are demonstrably lost. The whole run replays
//! from the seed alone.

use mcmm_chaos::{ChaosConfig, FaultInjector};
use mcmm_core::taxonomy::Vendor;
use mcmm_serve::{
    run_serial, FailoverPolicy, FailoverRouter, ServeConfig, Service, Workload, WorkloadConfig,
};

const SEED: u64 = 0xC0FFEE;

fn small_workload() -> WorkloadConfig {
    WorkloadConfig { jobs: 120, seed: SEED, n: 64, chain_percent: 40, duplicate_percent: 0 }
}

/// The storm used across these tests: transient faults everywhere plus a
/// sticky outage of NVIDIA's first-choice CUDA C++ route, which forces
/// genuine cross-route failover (nvcc → Clang CUDA).
fn storm() -> ChaosConfig {
    ChaosConfig::storm(SEED).with_outage("CUDA Toolkit (nvcc)", Some(Vendor::Nvidia))
}

struct RunOutcome {
    outputs: Vec<Option<Vec<u8>>>,
    stats: mcmm_serve::FailoverStats,
}

fn run_with(policy: FailoverPolicy) -> RunOutcome {
    let service = std::sync::Arc::new(Service::new(ServeConfig::default()));
    let injector = std::sync::Arc::new(FaultInjector::new(storm()));
    let workload = Workload::generate(small_workload(), service.registry());
    let mut router = FailoverRouter::new(
        std::sync::Arc::clone(&service),
        std::sync::Arc::clone(&injector),
        policy,
    );
    let outputs = router.run(&workload);
    service.drain();
    RunOutcome { outputs, stats: router.stats().clone() }
}

#[test]
fn failover_on_loses_nothing_and_matches_serial_reference() {
    let outcome = run_with(FailoverPolicy::default());
    let s = &outcome.stats;
    assert_eq!(s.lost, 0, "failover must rescue every job: {s:?}");
    assert!(s.retries >= 1, "storm must force at least one retry: {s:?}");
    assert!(s.failovers >= 1, "outage must force a cross-route failover: {s:?}");
    assert!(!s.quarantined.is_empty(), "outage route must trip the breaker: {s:?}");
    assert!(s.degraded >= 1, "failed-over jobs finish on a worse-rated route: {s:?}");
    assert!(s.backoff_us_total > 0.0, "retries book modeled backoff: {s:?}");

    // Byte identity with the serial, fault-free reference: rescued jobs
    // return exactly the bytes they would have without the storm.
    let registry = mcmm_toolchain::Registry::paper();
    let workload = Workload::generate(small_workload(), &registry);
    let expected = run_serial(&workload, &registry);
    assert_eq!(outcome.outputs.len(), expected.len());
    for (i, (got, want)) in outcome.outputs.iter().zip(&expected).enumerate() {
        assert_eq!(got.as_deref(), Some(want.as_slice()), "job {i} bytes diverged");
    }
}

#[test]
fn failover_off_same_seed_loses_jobs() {
    let outcome = run_with(FailoverPolicy::disabled());
    let s = &outcome.stats;
    assert!(s.lost > 0, "without failover the outage must cost jobs: {s:?}");
    assert_eq!(s.retries, 0, "disabled policy must not retry: {s:?}");
    assert_eq!(s.failovers, 0, "disabled policy must not fail over: {s:?}");
    assert_eq!(
        outcome.outputs.iter().filter(|o| o.is_none()).count() as u64,
        s.lost,
        "every lost job is a None output"
    );
}

#[test]
fn whole_run_replays_from_the_seed() {
    let a = run_with(FailoverPolicy::default());
    let b = run_with(FailoverPolicy::default());
    assert_eq!(a.outputs, b.outputs, "same seed, same bytes");
    assert_eq!(a.stats.retries, b.stats.retries);
    assert_eq!(a.stats.failovers, b.stats.failovers);
    assert_eq!(a.stats.quarantined, b.stats.quarantined);
    assert_eq!(a.stats.degraded, b.stats.degraded);
    assert_eq!(a.stats.backoff_us_total, b.stats.backoff_us_total);
}

#[test]
fn quarantined_routes_are_skipped_at_admission() {
    let service = std::sync::Arc::new(Service::new(ServeConfig::default()));
    let injector = std::sync::Arc::new(FaultInjector::new(storm()));
    let workload = Workload::generate(small_workload(), service.registry());
    let mut router = FailoverRouter::new(
        std::sync::Arc::clone(&service),
        std::sync::Arc::clone(&injector),
        FailoverPolicy::default(),
    );
    router.run(&workload);
    service.drain();

    assert!(router.is_quarantined("CUDA Toolkit (nvcc)", Vendor::Nvidia));
    // Once the breaker has tripped, later CUDA C++ jobs start straight on
    // the fallback route — their traces never touch the dead route again.
    let dead = "CUDA Toolkit (nvcc)";
    let quarantine_trip = router
        .traces()
        .iter()
        .position(|t| {
            t.attempts.iter().filter(|a| a.route == dead && a.error.is_some()).count() > 0
                && t.final_route.as_deref().is_some_and(|r| r.contains("Clang"))
        })
        .expect("some job must have failed over from nvcc to Clang CUDA");
    let later_nvcc_attempts = router.traces()[quarantine_trip + 1..]
        .iter()
        .flat_map(|t| t.attempts.iter())
        .filter(|a| a.route == dead)
        .count();
    assert_eq!(later_nvcc_attempts, 0, "quarantine must keep jobs off the dead route");

    // Rating delta: jobs that finished on the fallback carry the runtime
    // downgrade (Full -> non-vendor good support = positive delta).
    let degraded_trace = router
        .traces()
        .iter()
        .find(|t| t.final_route.as_deref().is_some_and(|r| r.contains("Clang")))
        .expect("a failed-over job exists");
    assert!(degraded_trace.rating_delta > 0, "failover to a worse-rated route must book a delta");
}
