//! Acceptance suite for the serving layer.
//!
//! The headline test replays the canonical seeded 500-job mixed workload
//! (all 9 frontends × 3 devices) through the concurrent service and
//! checks the contract end to end: no job dropped without an explicit
//! rejection, cache hit rate above 80%, and result buffers byte-identical
//! to a serial single-stream execution of the same plan.

use mcmm_core::taxonomy::{Language, Model, Vendor};
use mcmm_gpu_sim::device::KernelArg;
use mcmm_serve::workload::{run_serial, PlannedInput, Workload, WorkloadConfig};
use mcmm_serve::{
    ArgSpec, JobCompletion, JobId, JobSpec, KernelShape, ServeConfig, Service, SubmitError,
};
use mcmm_toolchain::Registry;
use std::collections::VecDeque;

/// Submit a planned workload, retrying admission-control rejections by
/// waiting out the oldest outstanding job. Returns completions in plan
/// order plus the number of explicit rejections absorbed.
fn run_concurrent(service: &Service, workload: &Workload) -> (Vec<JobCompletion>, u64) {
    let mut ids: Vec<JobId> = Vec::with_capacity(workload.jobs.len());
    let mut outstanding: VecDeque<(usize, mcmm_serve::JobHandle)> = VecDeque::new();
    let mut completions: Vec<Option<JobCompletion>> = Vec::new();
    completions.resize_with(workload.jobs.len(), || None);
    let mut rejections = 0u64;
    for (i, planned) in workload.jobs.iter().enumerate() {
        let spec = planned.to_spec(&ids);
        loop {
            match service.submit(spec.clone()) {
                Ok(handle) => {
                    ids.push(handle.id);
                    outstanding.push_back((i, handle));
                    break;
                }
                Err(SubmitError::QueueFull { .. }) => {
                    rejections += 1;
                    // Relieve pressure: retire the oldest outstanding job.
                    let (idx, handle) =
                        outstanding.pop_front().expect("queue full with nothing outstanding");
                    completions[idx] = Some(handle.wait());
                }
                Err(e) => panic!("planned job {i} refused: {e}"),
            }
        }
    }
    for (idx, handle) in outstanding {
        completions[idx] = Some(handle.wait());
    }
    let completions: Vec<JobCompletion> =
        completions.into_iter().map(|c| c.expect("every planned job completes")).collect();
    (completions, rejections)
}

#[test]
fn seeded_500_job_workload_matches_serial_execution_bit_for_bit() {
    let registry = Registry::paper();
    let cfg = WorkloadConfig::default();
    assert_eq!(cfg.jobs, 500);
    let workload = Workload::generate(cfg, &registry);

    // The plan must exercise the whole serving surface.
    let (models, vendors) = workload.coverage();
    assert_eq!(models.len(), Model::ALL.len(), "all 9 frontends");
    assert_eq!(vendors.len(), Vendor::ALL.len(), "all 3 devices");

    let service = Service::new(ServeConfig::default());
    let (completions, _rejections) = run_concurrent(&service, &workload);

    // Zero dropped-without-rejection: every admitted job retired, and the
    // books balance exactly.
    let counts = service.counts();
    assert_eq!(counts.submitted, 500);
    assert_eq!(counts.completed + counts.failed, counts.submitted, "a job vanished");
    assert_eq!(counts.failed, 0, "workload jobs must all succeed");
    assert_eq!(completions.len(), 500);
    for c in &completions {
        assert!(c.is_ok(), "{} failed: {:?}", c.id, c.error);
        assert!(c.output.is_some(), "{} lost its read-back", c.id);
    }

    // Cache: 4 kernel shapes × the routable combos is far below 500, so
    // the content-addressed cache must serve the bulk of submissions.
    let cache = service.cache().stats();
    assert!(
        cache.hit_rate() > 0.80,
        "cache hit rate {:.1}% (hits {}, misses {})",
        cache.hit_rate() * 100.0,
        cache.hits,
        cache.misses
    );

    // Determinism: byte-identical to serial single-stream execution.
    let serial = run_serial(&workload, &registry);
    assert_eq!(serial.len(), completions.len());
    for (i, (expect, got)) in serial.iter().zip(&completions).enumerate() {
        assert_eq!(
            Some(expect),
            got.output.as_ref(),
            "job {i} ({:?} on {}) diverged from serial execution",
            workload.jobs[i].shape,
            workload.jobs[i].vendor
        );
    }

    // Latencies are modeled and sane: non-negative, and queueing means at
    // least some job saw a positive delay.
    assert!(completions.iter().all(|c| c.latency.seconds() >= 0.0));
    assert!(completions.iter().any(|c| c.latency.seconds() > 0.0));
}

#[test]
fn chained_jobs_observe_their_dependency() {
    // A scale chained into a saxpy through ArgSpec::Output must see the
    // scale's result, not the original bytes.
    let service = Service::new(ServeConfig::default());
    let n = 64u64;
    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let y0: Vec<f32> = vec![1.0; n as usize];
    let bytes = |v: &[f32]| -> Vec<u8> { v.iter().flat_map(|f| f.to_le_bytes()).collect() };

    let first = JobSpec {
        kernel: KernelShape::Scale.kernel(),
        model: Model::Cuda,
        language: Language::Cpp,
        vendor: Vendor::Nvidia,
        n,
        block_dim: 32,
        args: vec![
            ArgSpec::Scalar(KernelArg::F32(3.0)),
            ArgSpec::In(bytes(&x)),
            ArgSpec::In(bytes(&y0)),
            ArgSpec::Scalar(KernelArg::I32(n as i32)),
        ],
        after: vec![],
        read_back: Some(2),
    };
    let h1 = service.submit(first).unwrap();
    let id1 = h1.id;

    // saxpy: y2 = 2·(3x) + 5
    let second = JobSpec {
        kernel: KernelShape::Saxpy.kernel(),
        model: Model::Sycl,
        language: Language::Cpp,
        vendor: Vendor::Nvidia,
        n,
        block_dim: 32,
        args: vec![
            ArgSpec::Scalar(KernelArg::F32(2.0)),
            ArgSpec::Output(id1, 2),
            ArgSpec::In(bytes(&vec![5.0f32; n as usize])),
            ArgSpec::Scalar(KernelArg::I32(n as i32)),
        ],
        after: vec![],
        read_back: Some(2),
    };
    let h2 = service.submit(second).unwrap();

    let c1 = h1.wait();
    let c2 = h2.wait();
    assert!(c1.is_ok() && c2.is_ok());
    let out: Vec<f32> = c2
        .output
        .unwrap()
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
        .collect();
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, 2.0 * (3.0 * i as f32) + 5.0, "element {i}");
    }
    service.drain();
}

#[test]
fn admission_control_rejects_rather_than_drops() {
    // Depth 2: the third concurrent submission must be an explicit
    // QueueFull, and after draining, submissions flow again.
    let service = Service::new(ServeConfig {
        streams_per_device: 1,
        queue_depth: 2,
        cache_capacity: 16,
        ..ServeConfig::default()
    });
    let n = 1u64 << 14;
    let spec = |chain: Option<JobId>| {
        let x: Vec<u8> = vec![0u8; n as usize * 4];
        JobSpec {
            kernel: KernelShape::Scale.kernel(),
            model: Model::Hip,
            language: Language::Cpp,
            vendor: Vendor::Amd,
            n,
            block_dim: 256,
            args: vec![
                ArgSpec::Scalar(KernelArg::F32(1.5)),
                match chain {
                    Some(id) => ArgSpec::Output(id, 2),
                    None => ArgSpec::In(x.clone()),
                },
                ArgSpec::In(x),
                ArgSpec::Scalar(KernelArg::I32(n as i32)),
            ],
            after: vec![],
            read_back: None,
        }
    };
    // Two jobs fill the queue; chaining keeps the second behind the first.
    let h1 = service.submit(spec(None)).unwrap();
    let h2 = service.submit(spec(Some(h1.id))).unwrap();
    let mut saw_rejection = false;
    for _ in 0..64 {
        match service.submit(spec(Some(h2.id))) {
            Err(SubmitError::QueueFull { vendor, depth, retry_after_jobs }) => {
                assert_eq!(vendor, Vendor::Amd);
                assert_eq!(depth, 2);
                // Queue exactly at depth → one retirement frees a slot.
                assert_eq!(retry_after_jobs, 1);
                saw_rejection = true;
                break;
            }
            Ok(h) => {
                // The lane drained fast enough to admit — wait and retry.
                h.wait();
            }
            Err(e) => panic!("unexpected refusal: {e}"),
        }
    }
    h1.wait();
    h2.wait();
    service.drain();
    if saw_rejection {
        assert!(service.counts().rejected >= 1);
        // After the rejection, the lane must accept again once idle.
        let h = service.submit(spec(None)).unwrap();
        assert!(h.wait().is_ok());
    }
    let counts = service.counts();
    assert_eq!(counts.completed + counts.failed, counts.submitted, "books must balance");
    assert_eq!(service.in_flight(Vendor::Amd), 0);
}

#[test]
fn resubmissions_after_queue_full_are_counted_separately() {
    // Depth 1: the second submission bounces with a retry hint; coming
    // back with the same spec is a *resubmission*, not a new rejection,
    // and a spec that never returns stays a hard rejection.
    let service = Service::new(ServeConfig {
        streams_per_device: 1,
        queue_depth: 1,
        cache_capacity: 16,
        ..ServeConfig::default()
    });
    let n = 1u64 << 14;
    let spec = |scale: f32| {
        let x: Vec<u8> = vec![0u8; n as usize * 4];
        JobSpec {
            kernel: KernelShape::Scale.kernel(),
            model: Model::Hip,
            language: Language::Cpp,
            vendor: Vendor::Amd,
            n,
            block_dim: 256,
            args: vec![
                ArgSpec::Scalar(KernelArg::F32(scale)),
                ArgSpec::In(x.clone()),
                ArgSpec::In(x),
                ArgSpec::Scalar(KernelArg::I32(n as i32)),
            ],
            after: vec![],
            read_back: None,
        }
    };
    let first = service.submit(spec(1.0)).unwrap();
    // The lane is full: both a comeback spec and a give-up spec bounce.
    let comeback = spec(2.0);
    let Err(SubmitError::QueueFull { retry_after_jobs, .. }) = service.submit(comeback.clone())
    else {
        panic!("depth-1 lane must reject the second submission");
    };
    assert_eq!(retry_after_jobs, 1);
    assert!(matches!(service.submit(spec(3.0)), Err(SubmitError::QueueFull { .. })));
    let counts = service.counts();
    assert_eq!(counts.rejected, 2);
    assert_eq!(counts.rejected_hard, 2, "nothing has come back yet");
    assert_eq!(counts.resubmitted, 0);

    // Heed the hint: wait for one completion, then resubmit the same spec.
    first.wait();
    service.submit(comeback).unwrap().wait();
    service.drain();
    let counts = service.counts();
    assert_eq!(counts.rejected, 2, "rejection events are history, not state");
    assert_eq!(counts.resubmitted, 1, "the comeback spec matched its rejection");
    assert_eq!(counts.rejected_hard, 1, "the give-up spec never returned");
}

#[test]
fn job_failures_stay_job_local() {
    // A job whose launch reads out of bounds fails alone; an unrelated
    // job submitted to the same device afterwards still succeeds.
    let service = Service::new(ServeConfig {
        streams_per_device: 1,
        queue_depth: 8,
        cache_capacity: 16,
        ..ServeConfig::default()
    });
    let n = 32u64;
    let good_bytes: Vec<u8> = vec![0u8; n as usize * 4];

    // The x pointer aims past the end of device memory: the kernel's
    // global load faults at launch time.
    let oob = {
        let dev = service.device(Vendor::Nvidia);
        mcmm_gpu_sim::mem::DevicePtr(dev.spec().mem_bytes)
    };
    let bad = JobSpec {
        kernel: KernelShape::Copy.kernel(),
        model: Model::Cuda,
        language: Language::Cpp,
        vendor: Vendor::Nvidia,
        n,
        block_dim: 32,
        args: vec![
            ArgSpec::Scalar(KernelArg::F32(1.0)),
            ArgSpec::Scalar(KernelArg::Ptr(oob)),
            ArgSpec::In(vec![0u8; n as usize * 4]),
            ArgSpec::Scalar(KernelArg::I32(n as i32)),
        ],
        after: vec![],
        read_back: Some(2),
    };
    let h_bad = service.submit(bad).unwrap();

    let good = JobSpec {
        kernel: KernelShape::Copy.kernel(),
        model: Model::Cuda,
        language: Language::Cpp,
        vendor: Vendor::Nvidia,
        n,
        block_dim: 32,
        args: vec![
            ArgSpec::Scalar(KernelArg::F32(1.0)),
            ArgSpec::In(good_bytes.clone()),
            ArgSpec::In(good_bytes),
            ArgSpec::Scalar(KernelArg::I32(n as i32)),
        ],
        after: vec![],
        read_back: Some(2),
    };
    let h_good = service.submit(good).unwrap();

    let c_bad = h_bad.wait();
    let c_good = h_good.wait();
    assert!(!c_bad.is_ok(), "out-of-bounds job must fail");
    assert!(c_bad.output.is_none(), "failed job must not produce output");
    assert!(c_good.is_ok(), "neighbour job poisoned by another tenant: {:?}", c_good.error);
    assert!(c_good.output.is_some());
    // The streams themselves stay healthy.
    service.drain();
    let counts = service.counts();
    assert_eq!(counts.failed, 1);
    assert_eq!(counts.completed, 1);
}

#[test]
fn bad_submissions_are_refused_up_front() {
    let service = Service::new(ServeConfig::default());
    let n = 16u64;
    let base = JobSpec {
        kernel: KernelShape::Copy.kernel(),
        model: Model::Cuda,
        language: Language::Cpp,
        vendor: Vendor::Nvidia,
        n,
        block_dim: 16,
        args: vec![
            ArgSpec::Scalar(KernelArg::F32(1.0)),
            ArgSpec::In(vec![0u8; n as usize * 4]),
            ArgSpec::In(vec![0u8; n as usize * 4]),
            ArgSpec::Scalar(KernelArg::I32(n as i32)),
        ],
        after: vec![],
        read_back: Some(2),
    };

    // SYCL Fortran has no route anywhere in the paper's matrix.
    let mut no_route = base.clone();
    no_route.model = Model::Sycl;
    no_route.language = Language::Fortran;
    no_route.vendor = Vendor::Intel;
    assert!(matches!(
        service.submit(no_route),
        Err(SubmitError::NoRoute {
            model: Model::Sycl,
            language: Language::Fortran,
            vendor: Vendor::Intel
        })
    ));

    // Unknown dependency.
    let mut unknown = base.clone();
    unknown.after = vec![JobId(999)];
    assert!(matches!(service.submit(unknown), Err(SubmitError::UnknownDependency(JobId(999)))));

    // Cross-device buffer alias.
    let on_nvidia = service.submit(base.clone()).unwrap();
    let mut cross = base.clone();
    cross.model = Model::Hip;
    cross.vendor = Vendor::Amd;
    cross.args[1] = ArgSpec::Output(on_nvidia.id, 2);
    assert!(matches!(
        service.submit(cross),
        Err(SubmitError::CrossDeviceDependency {
            expected: Vendor::Amd,
            found: Vendor::Nvidia,
            ..
        })
    ));

    // Aliasing a scalar slot.
    let mut scalar_alias = base.clone();
    scalar_alias.args[1] = ArgSpec::Output(on_nvidia.id, 0);
    assert!(matches!(service.submit(scalar_alias), Err(SubmitError::BadBuffer { arg: 0, .. })));

    assert!(on_nvidia.wait().is_ok());
    // Refusals must not leak admission slots.
    service.drain();
    assert_eq!(service.in_flight(Vendor::Nvidia), 0);
    assert_eq!(service.in_flight(Vendor::Amd), 0);
}

#[test]
fn two_services_with_the_same_seed_agree() {
    // Service-level determinism: same seed, two independent service
    // instances, identical outputs (and identical cache behaviour).
    let registry = Registry::paper();
    let cfg = WorkloadConfig {
        jobs: 120,
        seed: 0xDEAD_BEEF,
        n: 128,
        chain_percent: 50,
        duplicate_percent: 0,
    };
    let workload = Workload::generate(cfg, &registry);
    // Sanity: the plan contains chains (dependencies), not just islands.
    assert!(
        workload.jobs.iter().any(|j| matches!(j.x, PlannedInput::ChainedFrom(_))),
        "seed produced no chains; determinism test would be trivial"
    );

    let run = || {
        let service = Service::new(ServeConfig::default());
        let (completions, _) = run_concurrent(&service, &workload);
        let stats = service.cache().stats();
        let outputs: Vec<Vec<u8>> =
            completions.into_iter().map(|c| c.output.expect("output")).collect();
        (outputs, stats.misses)
    };
    let (a, a_misses) = run();
    let (b, b_misses) = run();
    assert_eq!(a, b, "two services disagreed on the same seeded plan");
    assert_eq!(a_misses, b_misses, "cache fills must be plan-determined");
}
