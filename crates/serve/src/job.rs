//! Jobs — the unit of work the service schedules.
//!
//! A [`JobSpec`] bundles everything one kernel execution needs: the kernel
//! IR, the (model, language, vendor) route through the executable matrix,
//! the launch shape, argument bindings, and dependency edges. Buffer
//! arguments either carry fresh host data ([`ArgSpec::In`] /
//! [`ArgSpec::Zeroed`]) or alias an earlier job's buffer
//! ([`ArgSpec::Output`]) — the latter is the DAG edge that turns isolated
//! launches into pipelines (launch-after-launch on shared data,
//! transfer-after-launch for read-backs).

use mcmm_core::taxonomy::{Language, Model, Vendor};
use mcmm_gpu_sim::device::KernelArg;
use mcmm_gpu_sim::ir::KernelIr;
use mcmm_gpu_sim::timing::ModeledTime;
use mcmm_gpu_sim::SimError;

/// Identifier of a submitted job, unique within one [`crate::Service`].
/// Monotonically increasing in submission order, which is what makes
/// dependency graphs acyclic by construction: a job can only reference
/// jobs submitted before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// One kernel argument binding.
#[derive(Debug, Clone)]
pub enum ArgSpec {
    /// A scalar passed through unchanged.
    Scalar(KernelArg),
    /// A fresh device buffer uploaded from these host bytes before launch.
    In(Vec<u8>),
    /// A fresh zero-initialised device buffer of this many bytes.
    Zeroed(u64),
    /// Alias the buffer an earlier job bound at `arg` — adds an implicit
    /// execution dependency on that job. Both jobs must target the same
    /// vendor (buffers live on one device).
    Output(JobId, usize),
}

/// A complete job description.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The kernel to execute.
    pub kernel: KernelIr,
    /// Source programming model of the route to compile through.
    pub model: Model,
    /// Source language of the route.
    pub language: Language,
    /// Target vendor; selects the device the job runs on.
    pub vendor: Vendor,
    /// Elements the 1-D launch must cover.
    pub n: u64,
    /// Threads per block.
    pub block_dim: u32,
    /// Argument bindings, in kernel-signature order.
    pub args: Vec<ArgSpec>,
    /// Explicit launch-after-launch dependencies (on top of the implicit
    /// ones [`ArgSpec::Output`] adds).
    pub after: Vec<JobId>,
    /// Index of the buffer argument to read back after the launch
    /// (transfer-after-launch on the job's stream).
    pub read_back: Option<usize>,
}

/// Why a submission was refused. Every rejection is explicit — the
/// service never silently drops a job.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The target device's queue is at its admission-control depth.
    /// Retry after draining some in-flight work.
    QueueFull {
        /// The saturated device's vendor.
        vendor: Vendor,
        /// The configured admission depth that was hit.
        depth: usize,
        /// How many in-flight jobs must retire before a resubmission can
        /// be admitted — the overshoot beyond the depth plus one. A
        /// client that waits for this many completions on the vendor's
        /// lane before retrying will not bounce off admission again
        /// (absent competing submitters).
        retry_after_jobs: usize,
    },
    /// The executable matrix has no viable route for this combination —
    /// the serving-layer face of the paper's empty cells.
    NoRoute {
        /// Requested model.
        model: Model,
        /// Requested language.
        language: Language,
        /// Requested vendor.
        vendor: Vendor,
    },
    /// The route's virtual compiler refused the kernel.
    Compile(mcmm_toolchain::CompileError),
    /// A dependency references a job this service never accepted.
    UnknownDependency(JobId),
    /// An [`ArgSpec::Output`] references a job on a different device.
    CrossDeviceDependency {
        /// The referenced job.
        job: JobId,
        /// Vendor of the submitting job.
        expected: Vendor,
        /// Vendor the referenced job actually ran on.
        found: Vendor,
    },
    /// An [`ArgSpec::Output`] references an argument slot that is not a
    /// buffer (a scalar, or out of range).
    BadBuffer {
        /// The referenced job.
        job: JobId,
        /// The referenced argument index.
        arg: usize,
    },
    /// Device memory could not be allocated for the job's buffers.
    Alloc(SimError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { vendor, depth, retry_after_jobs } => {
                write!(
                    f,
                    "{vendor} queue full (admission depth {depth}; retry after {retry_after_jobs} completions)"
                )
            }
            SubmitError::NoRoute { model, language, vendor } => {
                write!(f, "no viable route for {model} {language} on {vendor}")
            }
            SubmitError::Compile(e) => write!(f, "compile failed: {e}"),
            SubmitError::UnknownDependency(id) => write!(f, "unknown dependency {id}"),
            SubmitError::CrossDeviceDependency { job, expected, found } => {
                write!(f, "{job} is on {found}, not on the requested {expected} device")
            }
            SubmitError::BadBuffer { job, arg } => {
                write!(f, "{job} argument {arg} is not a device buffer")
            }
            SubmitError::Alloc(e) => write!(f, "buffer allocation failed: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The finished state of one job, resolved by [`crate::JobHandle::wait`].
#[derive(Debug, Clone)]
pub struct JobCompletion {
    /// The job's id.
    pub id: JobId,
    /// The device the job ran on.
    pub vendor: Vendor,
    /// Read-back bytes, when the spec requested one and the job succeeded.
    pub output: Option<Vec<u8>>,
    /// The first error any of the job's operations hit; `None` on success.
    /// Errors are job-local — they never poison the stream or the service.
    pub error: Option<SimError>,
    /// Modeled latency: device-clock delta from admission to completion,
    /// so queueing behind other tenants' work is included.
    pub latency: ModeledTime,
    /// Was the compiled artifact served from the compile cache?
    pub cache_hit: bool,
}

impl JobCompletion {
    /// Did every operation of the job succeed?
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}
