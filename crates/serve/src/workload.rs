//! The deterministic load generator and the serial reference executor.
//!
//! A [`Workload`] is a seeded, reproducible mix of jobs over every
//! routable frontend × device combination of the executable matrix: a
//! handful of guarded element-wise kernel shapes, fresh or chained input
//! buffers (chains alias the previous job's output buffer and add a
//! dependency edge), and per-job scalars — everything derived from one
//! seed through a splitmix/xorshift generator, so two runs of the same
//! seed submit byte-identical job streams.
//!
//! [`run_serial`] executes the same plan one job at a time on fresh
//! devices with a single in-order path — the ground truth the concurrent
//! service must match byte-for-byte.

use crate::job::{ArgSpec, JobSpec};
use mcmm_core::taxonomy::{Language, Model, Vendor};
use mcmm_gpu_sim::device::{Device, KernelArg, LaunchConfig};
use mcmm_gpu_sim::ir::{BinOp, CmpOp, KernelBuilder, KernelIr, Space, Type};
use mcmm_gpu_sim::mem::DevicePtr;
use mcmm_toolchain::{vendor_device_spec, CompileCache, Registry};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Deterministic 64-bit generator (splitmix64 seeding + xorshift64*).
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded generator; any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        // splitmix64 scramble so nearby seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self((z ^ (z >> 31)).max(1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (bound ≥ 1).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

/// The kernel shapes the generator mixes. All share the signature
/// `(f32 a, ptr x, ptr y, i32 n)` and the guarded element-wise form that
/// passes every route's lint gate; they differ in the arithmetic, so each
/// shape is a distinct compile-cache entry per route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelShape {
    /// `y[i] = x[i]`
    Copy,
    /// `y[i] = a · x[i]`
    Scale,
    /// `y[i] = a · x[i] + y[i]`
    Saxpy,
    /// `y[i] = x[i] + a · y[i]`
    Triad,
}

impl KernelShape {
    /// Every shape, in generation order.
    pub const ALL: [KernelShape; 4] =
        [KernelShape::Copy, KernelShape::Scale, KernelShape::Saxpy, KernelShape::Triad];

    /// Wire name of the shape (the `shape` field of the gateway's submit
    /// API).
    pub fn name(self) -> &'static str {
        match self {
            KernelShape::Copy => "copy",
            KernelShape::Scale => "scale",
            KernelShape::Saxpy => "saxpy",
            KernelShape::Triad => "triad",
        }
    }

    /// Build the shape's kernel IR.
    pub fn kernel(self) -> KernelIr {
        let name = match self {
            KernelShape::Copy => "serve_copy",
            KernelShape::Scale => "serve_scale",
            KernelShape::Saxpy => "serve_saxpy",
            KernelShape::Triad => "serve_triad",
        };
        let mut k = KernelBuilder::new(name);
        let a = k.param(Type::F32);
        let x = k.param(Type::I64);
        let y = k.param(Type::I64);
        let n = k.param(Type::I32);
        let i = k.global_thread_id_x();
        let ok = k.cmp(CmpOp::Lt, i, n);
        k.if_(ok, |k| {
            let xi = k.ld_elem(Space::Global, Type::F32, x, i);
            let v = match self {
                KernelShape::Copy => xi,
                KernelShape::Scale => k.bin(BinOp::Mul, a, xi),
                KernelShape::Saxpy => {
                    let yi = k.ld_elem(Space::Global, Type::F32, y, i);
                    let ax = k.bin(BinOp::Mul, a, xi);
                    k.bin(BinOp::Add, ax, yi)
                }
                KernelShape::Triad => {
                    let yi = k.ld_elem(Space::Global, Type::F32, y, i);
                    let ay = k.bin(BinOp::Mul, a, yi);
                    k.bin(BinOp::Add, xi, ay)
                }
            };
            k.st_elem(Space::Global, y, i, v);
        });
        k.finish()
    }

    /// Host reference of the shape's arithmetic (for spot checks).
    pub fn apply(self, a: f32, x: f32, y: f32) -> f32 {
        match self {
            KernelShape::Copy => x,
            KernelShape::Scale => a * x,
            KernelShape::Saxpy => a * x + y,
            KernelShape::Triad => x + a * y,
        }
    }
}

impl std::str::FromStr for KernelShape {
    type Err = String;

    /// Parse a wire name (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        KernelShape::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown kernel shape `{s}` (copy, scale, saxpy, triad)"))
    }
}

/// Where a planned job's `x` input comes from.
#[derive(Debug, Clone)]
pub enum PlannedInput {
    /// Fresh host data uploaded for this job.
    Fresh(Vec<f32>),
    /// The output buffer of an earlier planned job (same vendor) — a
    /// dependency edge in the job DAG.
    ChainedFrom(usize),
}

/// One job of the plan, with dependencies as *plan indices* (the runner
/// translates them to service [`crate::JobId`]s at submission time, which
/// keeps the plan valid across admission-control retries).
#[derive(Debug, Clone)]
pub struct PlannedJob {
    /// Kernel shape.
    pub shape: KernelShape,
    /// Route: programming model.
    pub model: Model,
    /// Route: language.
    pub language: Language,
    /// Route: target vendor / device.
    pub vendor: Vendor,
    /// Scalar `a`.
    pub a: f32,
    /// The `x` input.
    pub x: PlannedInput,
    /// Initial contents of the `y` buffer.
    pub y: Vec<f32>,
    /// Elements.
    pub n: u64,
}

impl PlannedJob {
    /// Lower to a service [`JobSpec`], given the service ids already
    /// assigned to earlier plan entries.
    pub fn to_spec(&self, ids: &[crate::JobId]) -> JobSpec {
        let x = match &self.x {
            PlannedInput::Fresh(data) => ArgSpec::In(f32_bytes(data)),
            // y is argument 2 of every shape's signature.
            PlannedInput::ChainedFrom(idx) => ArgSpec::Output(ids[*idx], 2),
        };
        JobSpec {
            kernel: self.shape.kernel(),
            model: self.model,
            language: self.language,
            vendor: self.vendor,
            n: self.n,
            block_dim: 128,
            args: vec![
                ArgSpec::Scalar(KernelArg::F32(self.a)),
                x,
                ArgSpec::In(f32_bytes(&self.y)),
                ArgSpec::Scalar(KernelArg::I32(self.n as i32)),
            ],
            after: Vec::new(),
            read_back: Some(2),
        }
    }
}

/// Workload tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Total jobs to plan.
    pub jobs: usize,
    /// Seed: same seed, same plan, byte for byte.
    pub seed: u64,
    /// Elements per buffer.
    pub n: u64,
    /// Percent (0–100) of jobs that chain onto the previous job on the
    /// same device instead of uploading fresh input.
    pub chain_percent: usize,
    /// Percent (0–100) of jobs that *replay* an earlier fresh-input job
    /// verbatim — identical `(fingerprint, route, args)` down to the byte,
    /// drawn from the last few fresh jobs so replays land close to their
    /// originals in submission order. This is what makes the gateway's
    /// in-flight request coalescing measurable, and because a replay is a
    /// pure re-execution of identical inputs, the serial reference stays
    /// byte-identical. `0` (the default) consumes no generator draws, so
    /// plans with the knob off are bit-identical to pre-knob plans.
    pub duplicate_percent: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self { jobs: 500, seed: 0xC0FFEE, n: 256, chain_percent: 40, duplicate_percent: 0 }
    }
}

/// A planned workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The jobs, in submission order.
    pub jobs: Vec<PlannedJob>,
}

/// Every (model, language, vendor) combination with a viable route in the
/// registry — the serving surface of the matrix. Python routes use the
/// Python language surface, all others C++.
pub fn routable_combos(registry: &Registry) -> Vec<(Model, Language, Vendor)> {
    let mut combos = Vec::new();
    for model in Model::ALL {
        let language = if model == Model::Python { Language::Python } else { Language::Cpp };
        for vendor in Vendor::ALL {
            if registry.select_best(model, language, vendor).is_some() {
                combos.push((model, language, vendor));
            }
        }
    }
    combos
}

impl Workload {
    /// Plan a seeded workload over every routable combination.
    pub fn generate(cfg: WorkloadConfig, registry: &Registry) -> Self {
        let combos = routable_combos(registry);
        assert!(!combos.is_empty(), "registry has no routable combination");
        let mut rng = Rng::new(cfg.seed);
        // The most recent plan index whose output lives on each device.
        let mut last_on: BTreeMap<Vendor, usize> = BTreeMap::new();
        // Plan indices of recent fresh-input jobs — replay candidates.
        let mut recent_fresh: VecDeque<usize> = VecDeque::new();
        let mut jobs: Vec<PlannedJob> = Vec::with_capacity(cfg.jobs);
        for i in 0..cfg.jobs {
            // Short-circuit keeps the draw sequence (and thus every plan)
            // bit-identical to pre-knob generators when the knob is off.
            let duplicate = cfg.duplicate_percent > 0
                && rng.below(100) < cfg.duplicate_percent
                && !recent_fresh.is_empty();
            if duplicate {
                let src = recent_fresh[rng.below(recent_fresh.len())];
                // A verbatim replay: identical route, shape, scalars, and
                // input bytes — the same (fingerprint, route, args) key the
                // coalescer and the compile cache see. Replays do not join
                // the chain topology (`last_on` is left alone), so the DAG
                // is the same with or without them.
                jobs.push(jobs[src].clone());
                continue;
            }
            let (model, language, vendor) = combos[rng.below(combos.len())];
            let shape = KernelShape::ALL[rng.below(KernelShape::ALL.len())];
            let a = 0.25 + rng.below(8) as f32 * 0.25;
            let chain = rng.below(100) < cfg.chain_percent;
            let x = match (chain, last_on.get(&vendor)) {
                (true, Some(&prev)) => PlannedInput::ChainedFrom(prev),
                _ => PlannedInput::Fresh(
                    (0..cfg.n).map(|j| (rng.below(64) as f32 - 32.0) + j as f32 * 0.125).collect(),
                ),
            };
            let y = (0..cfg.n).map(|j| rng.below(16) as f32 + j as f32 * 0.0625).collect();
            if matches!(x, PlannedInput::Fresh(_)) {
                recent_fresh.push_back(i);
                if recent_fresh.len() > 8 {
                    recent_fresh.pop_front();
                }
            }
            last_on.insert(vendor, i);
            jobs.push(PlannedJob { shape, model, language, vendor, a, x, y, n: cfg.n });
        }
        Self { jobs }
    }

    /// Vendors × models the plan actually touches.
    pub fn coverage(&self) -> (Vec<Model>, Vec<Vendor>) {
        let mut models: Vec<Model> = self.jobs.iter().map(|j| j.model).collect();
        let mut vendors: Vec<Vendor> = self.jobs.iter().map(|j| j.vendor).collect();
        models.sort();
        models.dedup();
        vendors.sort();
        vendors.dedup();
        (models, vendors)
    }
}

fn f32_bytes(data: &[f32]) -> Vec<u8> {
    data.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Execute a workload serially — one fresh device per vendor, one job at a
/// time, in plan order, single in-order path — and return each job's
/// read-back bytes. This is the determinism ground truth for the service.
pub fn run_serial(workload: &Workload, registry: &Registry) -> Vec<Vec<u8>> {
    let cache = CompileCache::default();
    let devices: BTreeMap<Vendor, Arc<Device>> =
        Vendor::ALL.iter().map(|&v| (v, Device::new(vendor_device_spec(v)))).collect();
    // Plan index → that job's y buffer (device pointer).
    let mut outputs: Vec<DevicePtr> = Vec::with_capacity(workload.jobs.len());
    let mut results = Vec::with_capacity(workload.jobs.len());
    for job in &workload.jobs {
        let dev = &devices[&job.vendor];
        let compiler = registry
            .select_best(job.model, job.language, job.vendor)
            .expect("planned job lost its route");
        let (module, _) = cache
            .compile(compiler, &job.shape.kernel(), job.model, job.language, job.vendor)
            .expect("planned kernel must compile");
        let x = match &job.x {
            PlannedInput::Fresh(data) => {
                let ptr = dev.alloc(data.len() as u64 * 4).expect("serial x alloc");
                dev.memcpy_h2d(ptr, &f32_bytes(data)).expect("serial x upload");
                ptr
            }
            PlannedInput::ChainedFrom(idx) => outputs[*idx],
        };
        let y = dev.alloc(job.y.len() as u64 * 4).expect("serial y alloc");
        dev.memcpy_h2d(y, &f32_bytes(&job.y)).expect("serial y upload");
        let cfg = LaunchConfig::linear(job.n, 128).with_efficiency(compiler.efficiency());
        dev.launch(
            &module,
            cfg,
            &[
                KernelArg::F32(job.a),
                KernelArg::Ptr(x),
                KernelArg::Ptr(y),
                KernelArg::I32(job.n as i32),
            ],
        )
        .expect("serial launch");
        let (bytes, _) = dev.memcpy_d2h(y, job.n * 4).expect("serial read-back");
        outputs.push(y);
        results.push(bytes);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let reg = Registry::paper();
        let cfg =
            WorkloadConfig { jobs: 40, seed: 7, n: 64, chain_percent: 50, duplicate_percent: 0 };
        let a = Workload::generate(cfg, &reg);
        let b = Workload::generate(cfg, &reg);
        assert_eq!(a.jobs.len(), b.jobs.len());
        for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(ja.shape, jb.shape);
            assert_eq!((ja.model, ja.language, ja.vendor), (jb.model, jb.language, jb.vendor));
            assert_eq!(ja.a, jb.a);
            assert_eq!(ja.y, jb.y);
            match (&ja.x, &jb.x) {
                (PlannedInput::Fresh(da), PlannedInput::Fresh(db)) => assert_eq!(da, db),
                (PlannedInput::ChainedFrom(ia), PlannedInput::ChainedFrom(ib)) => {
                    assert_eq!(ia, ib)
                }
                other => panic!("plans diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let reg = Registry::paper();
        let a = Workload::generate(WorkloadConfig { seed: 1, ..Default::default() }, &reg);
        let b = Workload::generate(WorkloadConfig { seed: 2, ..Default::default() }, &reg);
        let same = a
            .jobs
            .iter()
            .zip(&b.jobs)
            .filter(|(x, y)| x.shape == y.shape && x.vendor == y.vendor && x.a == y.a)
            .count();
        assert!(same < a.jobs.len(), "different seeds produced identical plans");
    }

    #[test]
    fn chains_stay_on_one_device() {
        let reg = Registry::paper();
        let w = Workload::generate(
            WorkloadConfig { jobs: 200, seed: 3, n: 32, chain_percent: 70, duplicate_percent: 0 },
            &reg,
        );
        for (i, job) in w.jobs.iter().enumerate() {
            if let PlannedInput::ChainedFrom(prev) = job.x {
                assert!(prev < i, "chain must reference an earlier job");
                assert_eq!(w.jobs[prev].vendor, job.vendor, "chain crossed devices at {i}");
                assert_eq!(w.jobs[prev].n, job.n, "chain changed buffer size at {i}");
            }
        }
    }

    #[test]
    fn plan_covers_all_models_and_vendors() {
        let reg = Registry::paper();
        let combos = routable_combos(&reg);
        let models: std::collections::BTreeSet<_> = combos.iter().map(|c| c.0).collect();
        assert_eq!(models.len(), 9, "every frontend must have at least one route: {combos:?}");
        let w = Workload::generate(WorkloadConfig::default(), &reg);
        let (m, v) = w.coverage();
        assert_eq!(m.len(), 9, "500 jobs must touch all 9 frontends");
        assert_eq!(v.len(), 3, "500 jobs must touch all 3 devices");
    }

    #[test]
    fn duplicate_knob_replays_jobs_verbatim() {
        let reg = Registry::paper();
        let cfg =
            WorkloadConfig { jobs: 300, seed: 11, n: 32, chain_percent: 30, duplicate_percent: 40 };
        let w = Workload::generate(cfg, &reg);
        // Count exact replays: a later job equal to an earlier one in
        // every submission-visible field.
        let is_dup = |a: &PlannedJob, b: &PlannedJob| {
            a.shape == b.shape
                && (a.model, a.language, a.vendor) == (b.model, b.language, b.vendor)
                && a.a == b.a
                && a.y == b.y
                && a.n == b.n
                && matches!(
                    (&a.x, &b.x),
                    (PlannedInput::Fresh(da), PlannedInput::Fresh(db)) if da == db
                )
        };
        let dups = w
            .jobs
            .iter()
            .enumerate()
            .filter(|(i, job)| w.jobs[..*i].iter().any(|prev| is_dup(prev, job)))
            .count();
        assert!(dups > 30, "40% duplicate rate produced only {dups}/300 replays");
        // Replays must produce identical JobSpecs — same kernel
        // fingerprint, route, and argument bytes (what the coalescer keys
        // on). Spot-check the first replay pair.
        let (i, job) = w
            .jobs
            .iter()
            .enumerate()
            .find(|(i, j)| w.jobs[..*i].iter().any(|p| is_dup(p, j)))
            .unwrap();
        let src = w.jobs[..i].iter().find(|p| is_dup(p, job)).unwrap();
        let ids: Vec<crate::JobId> = Vec::new();
        let (sa, sb) = (src.to_spec(&ids), job.to_spec(&ids));
        assert_eq!(sa.kernel.fingerprint(), sb.kernel.fingerprint());
        assert_eq!((sa.model, sa.language, sa.vendor), (sb.model, sb.language, sb.vendor));
    }

    #[test]
    fn duplicate_knob_off_leaves_plans_bit_identical() {
        // duplicate_percent: 0 must not consume generator draws, so plans
        // match the pre-knob generator for the same seed.
        let reg = Registry::paper();
        let base =
            WorkloadConfig { jobs: 80, seed: 5, n: 16, chain_percent: 40, duplicate_percent: 0 };
        let a = Workload::generate(base, &reg);
        let b = Workload::generate(WorkloadConfig { duplicate_percent: 0, ..base }, &reg);
        assert_eq!(a.jobs.len(), b.jobs.len());
        for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(ja.a, jb.a);
            assert_eq!(ja.shape, jb.shape);
        }
    }

    #[test]
    fn duplicates_replay_deterministically_per_seed() {
        let reg = Registry::paper();
        let cfg =
            WorkloadConfig { jobs: 120, seed: 21, n: 16, chain_percent: 0, duplicate_percent: 50 };
        let a = Workload::generate(cfg, &reg);
        let b = Workload::generate(cfg, &reg);
        for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(ja.a, jb.a);
            assert_eq!((ja.model, ja.vendor), (jb.model, jb.vendor));
        }
    }

    #[test]
    fn shape_names_round_trip() {
        for shape in KernelShape::ALL {
            assert_eq!(shape.name().parse::<KernelShape>().unwrap(), shape);
            assert_eq!(shape.name().to_uppercase().parse::<KernelShape>().unwrap(), shape);
        }
        assert!("stencil".parse::<KernelShape>().is_err());
    }

    #[test]
    fn kernel_shapes_validate_and_match_host_reference() {
        for shape in KernelShape::ALL {
            assert_eq!(shape.kernel().validate(), Ok(()));
        }
        assert_eq!(KernelShape::Saxpy.apply(2.0, 3.0, 4.0), 10.0);
        assert_eq!(KernelShape::Triad.apply(2.0, 3.0, 4.0), 11.0);
    }
}
