//! Matrix-driven route failover over the execution service.
//!
//! The paper's matrix lists *alternative routes* per (model, language,
//! vendor) cell; this module is where the alternatives earn their keep.
//! The [`FailoverRouter`] runs a workload job by job through a
//! [`Service`] while a chaos [`FaultInjector`] breaks attempts, and
//! reacts the way a resilient serving layer should:
//!
//! * **Retry with backoff** — a failed attempt is retried on the same
//!   route up to [`FailoverPolicy::max_retries`] times, with exponential
//!   backoff in *modeled* time (accounted, never slept), jittered by the
//!   workload seed so two runs of one seed book identical backoff.
//! * **Route failover** — when a route keeps failing, the router asks the
//!   matrix for the next-best-rated alternative for the same cell
//!   ([`mcmm_core::query::advise`] + [`Cell::routes_by_rating`]),
//!   health-checks it ([`mcmm_toolchain::probe::route_health`]), and
//!   recompiles the job through the shared [`CompileCache`] on the new
//!   route. Results are byte-identical across routes — only ratings,
//!   efficiency, and failure behaviour differ — which is exactly the
//!   paper's portability argument in executable form.
//! * **Circuit breaking** — a (route, vendor) pair that accumulates
//!   [`FailoverPolicy::breaker_threshold`] consecutive failures is
//!   quarantined: subsequent jobs skip it at admission time, a *runtime*
//!   downgrade of the matrix's static rating. A success resets the
//!   breaker.
//!
//! Every decision is recorded in a per-job [`FailoverTrace`] (route tried
//! → fault observed → fallback chosen → rating delta), and aggregate
//! [`FailoverStats`] feed the serving report.
//!
//! The router executes jobs *sequentially* (submit, wait, react). That is
//! deliberate: the chaos budget is consumed in a deterministic order, so
//! a whole fault storm — which faults fire, which jobs fail over, which
//! routes trip breakers — replays exactly from the seed alone.

use crate::job::{JobCompletion, JobId};
use crate::service::{Service, SubmitOptions};
use crate::workload::Workload;
use mcmm_chaos::{AttemptCtx, FaultInjector};
use mcmm_core::matrix::CompatMatrix;
use mcmm_core::query::{advise, Query};
use mcmm_core::rating::{qualify, Evidence};
use mcmm_core::support::Support;
use mcmm_core::taxonomy::{Language, Model, Vendor};
use mcmm_toolchain::probe::route_health;
use serde::Serialize;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Failover tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct FailoverPolicy {
    /// Master switch: `false` degrades the router to single-attempt
    /// submission (faults still fire — this is the "measure the damage
    /// without the safety net" mode).
    pub enabled: bool,
    /// Retries on the *same* route before failing over to the next one.
    pub max_retries: u32,
    /// Base of the exponential backoff, in modeled microseconds.
    pub backoff_base_us: f64,
    /// Consecutive failures that quarantine a (route, vendor) pair.
    pub breaker_threshold: u32,
    /// Hard cap on attempts per job across all routes — the router's own
    /// termination guarantee under a hostile fault policy.
    pub max_attempts: u32,
}

impl Default for FailoverPolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            max_retries: 2,
            backoff_base_us: 50.0,
            breaker_threshold: 3,
            max_attempts: 12,
        }
    }
}

impl FailoverPolicy {
    /// The no-safety-net policy: one attempt per job, no retries, no
    /// failover, no quarantine.
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::default() }
    }
}

/// Aggregate failover accounting for one run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct FailoverStats {
    /// Re-attempts on the same route.
    pub retries: u64,
    /// Route switches (same cell, next-best-rated alternative).
    pub failovers: u64,
    /// Jobs that exhausted every option and were lost.
    pub lost: u64,
    /// Jobs that finished on a route rated worse than their first choice.
    pub degraded: u64,
    /// Quarantined (route, vendor) pairs, as `"route @ vendor"` labels,
    /// in quarantine order.
    pub quarantined: Vec<String>,
    /// Total modeled backoff booked, in microseconds.
    pub backoff_us_total: f64,
    /// Route health checks performed before adopting failover targets.
    pub health_checks: u64,
}

/// One attempt of one job, as traced.
#[derive(Debug, Clone, Serialize)]
pub struct AttemptRecord {
    /// Toolchain name of the route carrying the attempt.
    pub route: String,
    /// Why the attempt failed (`None` = it succeeded).
    pub error: Option<String>,
    /// Modeled backoff booked after this attempt, in microseconds.
    pub backoff_us: f64,
}

/// The per-job failover trace: route tried → fault → fallback chosen →
/// rating delta.
#[derive(Debug, Clone, Serialize)]
pub struct FailoverTrace {
    /// Plan index of the job.
    pub job: u64,
    /// The matrix's first-choice route for the job's cell (quarantine
    /// ignored — this is the *static* rating's pick).
    pub planned_route: String,
    /// Every attempt, in order.
    pub attempts: Vec<AttemptRecord>,
    /// Route of the successful attempt; `None` if the job was lost.
    pub final_route: Option<String>,
    /// Support-rating positions moved, planned → final: 0 = finished on
    /// the planned rating, positive = finished that many support
    /// categories worse (the runtime downgrade), negative never happens
    /// (the plan starts at the best rating).
    pub rating_delta: i32,
}

/// One route of a job's failover plan.
#[derive(Debug, Clone)]
struct PlanRoute {
    /// Toolchain name (also the [`SubmitOptions::route`] override).
    name: String,
    /// The matrix's static rating of the route.
    support: Support,
}

/// One (route, vendor) circuit breaker, as surfaced by `/healthz`.
#[derive(Debug, Clone, Serialize)]
pub struct BreakerState {
    /// Toolchain name of the route.
    pub route: String,
    /// Target vendor.
    pub vendor: String,
    /// Consecutive failures booked since the last success.
    pub consecutive_failures: u32,
    /// Tripped (quarantined)? Open breakers are skipped at admission.
    pub open: bool,
}

/// The failover router. Shares the service and the injector by `Arc` (so
/// long-lived owners like gateway shards need no borrow lifetime); owns
/// the breaker state, quarantine set, traces, and stats.
pub struct FailoverRouter {
    service: Arc<Service>,
    injector: Arc<FaultInjector>,
    policy: FailoverPolicy,
    matrix: CompatMatrix,
    /// Consecutive-failure counters per (route, vendor).
    breaker: HashMap<(String, Vendor), u32>,
    /// Tripped breakers: skipped at admission by subsequent jobs.
    quarantined: BTreeSet<(String, Vendor)>,
    stats: FailoverStats,
    traces: Vec<FailoverTrace>,
    /// Completion records of the successful final attempts, for reports.
    completions: Vec<JobCompletion>,
    /// Keep per-job traces and completions? Long-running servers turn
    /// this off so memory stays bounded by the breaker table, not the
    /// request count; aggregate [`FailoverStats`] accumulate either way.
    record: bool,
}

impl FailoverRouter {
    /// Build a router over a service and an injector, planning against
    /// the paper's matrix.
    pub fn new(
        service: Arc<Service>,
        injector: Arc<FaultInjector>,
        policy: FailoverPolicy,
    ) -> Self {
        Self {
            service,
            injector,
            policy,
            matrix: CompatMatrix::paper(),
            breaker: HashMap::new(),
            quarantined: BTreeSet::new(),
            stats: FailoverStats::default(),
            traces: Vec::new(),
            completions: Vec::new(),
            record: true,
        }
    }

    /// Toggle per-job trace/completion recording (on by default). With it
    /// off, [`FailoverRouter::traces`] and
    /// [`FailoverRouter::completions`] stay empty.
    pub fn set_record(&mut self, record: bool) {
        self.record = record;
    }

    /// The service this router submits to.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Aggregate stats so far.
    pub fn stats(&self) -> &FailoverStats {
        &self.stats
    }

    /// Per-job traces, in plan order.
    pub fn traces(&self) -> &[FailoverTrace] {
        &self.traces
    }

    /// Completion records of the successful final attempts (lost jobs
    /// have none), for latency reporting.
    pub fn completions(&self) -> &[JobCompletion] {
        &self.completions
    }

    /// Is a (route, vendor) pair currently quarantined?
    pub fn is_quarantined(&self, route: &str, vendor: Vendor) -> bool {
        self.quarantined.contains(&(route.to_owned(), vendor))
    }

    /// Every (route, vendor) breaker with at least one booked failure or
    /// an open quarantine, sorted by (route, vendor) — the `/healthz`
    /// payload of the front-door.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        let mut keys: BTreeSet<(String, Vendor)> = self.breaker.keys().cloned().collect();
        keys.extend(self.quarantined.iter().cloned());
        keys.into_iter()
            .map(|(route, vendor)| BreakerState {
                open: self.quarantined.contains(&(route.clone(), vendor)),
                consecutive_failures: self
                    .breaker
                    .get(&(route.clone(), vendor))
                    .copied()
                    .unwrap_or(0),
                vendor: vendor.to_string(),
                route,
            })
            .collect()
    }

    /// Run a workload job by job, reacting to failures. Returns each
    /// job's read-back bytes (`None` = the job was lost). With failover
    /// enabled and a bounded fault budget, no job should be lost; with it
    /// disabled, every injected fault costs its job.
    pub fn run(&mut self, workload: &Workload) -> Vec<Option<Vec<u8>>> {
        let mut ids: Vec<JobId> = Vec::with_capacity(workload.jobs.len());
        let mut outputs = Vec::with_capacity(workload.jobs.len());
        for (plan_idx, job) in workload.jobs.iter().enumerate() {
            match self.run_job(plan_idx as u64, job, &ids) {
                Some((id, bytes, _route)) => {
                    ids.push(id);
                    outputs.push(Some(bytes));
                }
                None => {
                    self.stats.lost += 1;
                    // JobId(0) is never assigned by the service, so any
                    // dependant of a lost job fails with
                    // UnknownDependency — losses propagate explicitly
                    // down the chain instead of silently reading junk.
                    ids.push(JobId(0));
                    outputs.push(None);
                }
            }
        }
        outputs
    }

    /// The matrix's route plan for a cell: the cell's routes ranked
    /// best-rated first (name tie-break), intersected with the registry's
    /// usable compilers; any usable compiler the cell does not list is
    /// appended in registry order, rated from its own route evidence.
    /// Quarantine is applied by the caller.
    fn plan_for(&self, model: Model, language: Language, vendor: Vendor) -> Vec<PlanRoute> {
        let usable = self.service.registry().ranked(model, language, vendor);
        let query = Query::new().vendors([vendor]).models([model]).languages([language]);
        let advice = advise(&self.matrix, &query);
        let mut plan: Vec<PlanRoute> = advice
            .best()
            .map(|cell| {
                cell.routes_by_rating()
                    .into_iter()
                    .filter(|(r, _)| usable.iter().any(|c| c.name == r.toolchain))
                    .map(|(r, s)| PlanRoute { name: r.toolchain.to_owned(), support: s })
                    .collect()
            })
            .unwrap_or_default();
        for c in &usable {
            if !plan.iter().any(|p| p.name == c.name) {
                plan.push(PlanRoute {
                    name: c.name.to_owned(),
                    support: qualify(Evidence::from_route(&c.route)),
                });
            }
        }
        plan
    }

    /// Deterministic backoff jitter in `[0.5, 1.5)`, derived from the
    /// injector's seed and the attempt identity.
    fn jitter(&self, job: u64, attempt: u32) -> f64 {
        let mut z = self
            .injector
            .config()
            .seed
            .wrapping_add(job.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(u64::from(attempt));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        0.5 + (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Book one failure against a route's breaker; quarantine on trip.
    fn note_failure(&mut self, route: &str, vendor: Vendor) {
        let key = (route.to_owned(), vendor);
        let count = self.breaker.entry(key.clone()).or_insert(0);
        *count += 1;
        if *count >= self.policy.breaker_threshold && self.quarantined.insert(key) {
            self.stats.quarantined.push(format!("{route} @ {vendor}"));
        }
    }

    /// Next plan slot that is not quarantined and passes a health check,
    /// searching from `from`. Falls back to plain "not quarantined" if no
    /// candidate passes, and to `from` itself if everything is
    /// quarantined — the router never deadlocks on an empty choice.
    fn next_route(
        &mut self,
        plan: &[PlanRoute],
        from: usize,
        model: Model,
        language: Language,
        vendor: Vendor,
    ) -> usize {
        for step in 1..=plan.len() {
            let idx = (from + step) % plan.len();
            if self.is_quarantined(&plan[idx].name, vendor) {
                continue;
            }
            let healthy = self
                .service
                .registry()
                .ranked(model, language, vendor)
                .into_iter()
                .find(|c| c.name == plan[idx].name)
                .is_some_and(|c| {
                    self.stats.health_checks += 1;
                    route_health(c, self.service.cache(), model, language, vendor)
                });
            if healthy {
                return idx;
            }
        }
        for step in 1..=plan.len() {
            let idx = (from + step) % plan.len();
            if !self.is_quarantined(&plan[idx].name, vendor) {
                return idx;
            }
        }
        from
    }

    /// Run one *standalone* planned job (no dependencies on earlier jobs)
    /// through the full failover machinery: retries, route switches, and
    /// breakers all apply, and the breaker state persists into the next
    /// call. Returns the read-back bytes plus the toolchain name of the
    /// route that finally served the job, or `None` if it was lost. This
    /// is the gateway's per-request entry point.
    pub fn run_one(
        &mut self,
        plan_idx: u64,
        job: &crate::workload::PlannedJob,
    ) -> Option<(Vec<u8>, String)> {
        if let Some((_, bytes, route)) = self.run_job(plan_idx, job, &[]) {
            Some((bytes, route))
        } else {
            self.stats.lost += 1;
            None
        }
    }

    /// Run one planned job to success or loss.
    fn run_job(
        &mut self,
        plan_idx: u64,
        job: &crate::workload::PlannedJob,
        ids: &[JobId],
    ) -> Option<(JobId, Vec<u8>, String)> {
        let plan = self.plan_for(job.model, job.language, job.vendor);
        if plan.is_empty() {
            if self.record {
                self.traces.push(FailoverTrace {
                    job: plan_idx,
                    planned_route: String::new(),
                    attempts: Vec::new(),
                    final_route: None,
                    rating_delta: 0,
                });
            }
            return None;
        }
        let planned = plan[0].clone();
        // Admission-time quarantine skip: start from the best-rated route
        // that is not quarantined (fall back to the plan head if all are).
        let mut route_idx =
            plan.iter().position(|r| !self.is_quarantined(&r.name, job.vendor)).unwrap_or(0);
        let max_attempts = if self.policy.enabled { self.policy.max_attempts.max(1) } else { 1 };
        let mut tries_on_route = 0u32;
        let mut trace = FailoverTrace {
            job: plan_idx,
            planned_route: planned.name.clone(),
            attempts: Vec::new(),
            final_route: None,
            rating_delta: 0,
        };

        for attempt in 0..max_attempts {
            let route = plan[route_idx].clone();
            let faults = self.injector.decide(&AttemptCtx {
                job: plan_idx,
                attempt,
                model: job.model,
                language: job.language,
                vendor: job.vendor,
                route: &route.name,
            });
            let spec = job.to_spec(ids);
            let submitted =
                self.service.submit_with(spec, SubmitOptions { route: Some(&route.name), faults });
            let error = match submitted {
                Ok(handle) => {
                    let done = handle.wait();
                    match done.error {
                        None => {
                            // Success: reset the breaker, settle the trace.
                            self.breaker.remove(&(route.name.clone(), job.vendor));
                            trace.attempts.push(AttemptRecord {
                                route: route.name.clone(),
                                error: None,
                                backoff_us: 0.0,
                            });
                            trace.final_route = Some(route.name.clone());
                            trace.rating_delta = route.support as i32 - planned.support as i32;
                            if trace.rating_delta > 0 {
                                self.stats.degraded += 1;
                            }
                            let id = done.id;
                            let bytes = done.output.clone().unwrap_or_default();
                            if self.record {
                                self.traces.push(trace);
                                self.completions.push(done);
                            }
                            return Some((id, bytes, route.name));
                        }
                        Some(e) => e.to_string(),
                    }
                }
                Err(e) => e.to_string(),
            };

            // Failure path.
            self.note_failure(&route.name, job.vendor);
            let mut backoff_us = 0.0;
            if self.policy.enabled && attempt + 1 < max_attempts {
                if tries_on_route < self.policy.max_retries {
                    // Retry the same route after exponential backoff.
                    tries_on_route += 1;
                    self.stats.retries += 1;
                    backoff_us = self.policy.backoff_base_us
                        * f64::from(1u32 << tries_on_route.min(16))
                        * self.jitter(plan_idx, attempt);
                    self.stats.backoff_us_total += backoff_us;
                } else {
                    // Route exhausted: fail over to the matrix's next
                    // alternative for the cell.
                    let next =
                        self.next_route(&plan, route_idx, job.model, job.language, job.vendor);
                    if next != route_idx {
                        self.stats.failovers += 1;
                        route_idx = next;
                    }
                    tries_on_route = 0;
                }
            }
            trace.attempts.push(AttemptRecord {
                route: route.name.clone(),
                error: Some(error),
                backoff_us,
            });
        }
        if self.record {
            self.traces.push(trace);
        }
        None
    }
}
