//! The multi-tenant execution service.
//!
//! One [`Service`] owns the three simulated vendor devices, a small fan of
//! streams per device, the shared content-addressed compile cache, and the
//! route registry. [`Service::submit`] resolves a job's route, compiles
//! through the cache (the analyzer lint gate runs once per cache fill, not
//! per launch), applies admission control, and maps the job's dependency
//! edges onto stream/event primitives:
//!
//! * every dependency becomes a [`Stream::wait_event`] on the dependency's
//!   completion event (launch-after-launch, including across streams);
//! * uploads, the launch, and the optional read-back run in stream order
//!   (transfer-after-launch);
//! * a completion event plus a host callback retire the job: the callback
//!   releases the admission slot and classifies the outcome — it fires
//!   even if the job failed, so slots can never leak.
//!
//! Job failures are **job-local**: operation closures route errors into
//! the job's error slot and report success to the stream, so one tenant's
//! out-of-bounds access never poisons the stream for its neighbours.

use crate::job::{ArgSpec, JobCompletion, JobId, JobSpec, SubmitError};
use mcmm_chaos::AttemptFaults;
use mcmm_core::taxonomy::Vendor;
use mcmm_gpu_sim::device::{Device, KernelArg, LaunchConfig};
use mcmm_gpu_sim::event::Event;
use mcmm_gpu_sim::mem::DevicePtr;
use mcmm_gpu_sim::stream::Stream;
use mcmm_gpu_sim::timing::ModeledTime;
use mcmm_gpu_sim::{Module, SimError};
use mcmm_toolchain::{vendor_device_spec, CompileCache, Registry};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Concurrent streams per device (≥ 1).
    pub streams_per_device: usize,
    /// Admission-control bound: jobs in flight per device before
    /// submissions are rejected with [`SubmitError::QueueFull`].
    pub queue_depth: usize,
    /// Compile-cache capacity in artifacts.
    pub cache_capacity: usize,
    /// Whether the devices record memory-access traces, keeping the
    /// per-vendor L1/L2 rows of [`ServeReport`](crate::ServeReport) and
    /// the gateway's `/v1/stats` live on every request. Defaults to
    /// **on**: the streaming replay pipeline keeps the launch overhead
    /// within the budget the memhier bench gates
    /// (`BENCH_memhier.json`).
    pub tracing: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { streams_per_device: 3, queue_depth: 64, cache_capacity: 256, tracing: true }
    }
}

/// Aggregate job accounting. `submitted == completed + failed` once the
/// service is drained; `rejected` counts explicit admission refusals
/// (rejected submissions are not part of `submitted`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounts {
    /// Jobs accepted by admission control.
    pub submitted: u64,
    /// Jobs that finished with no error.
    pub completed: u64,
    /// Jobs that finished with a job-local error.
    pub failed: u64,
    /// Submissions refused with [`SubmitError::QueueFull`].
    pub rejected: u64,
    /// Accepted submissions that matched an earlier [`SubmitError::QueueFull`]
    /// rejection of the same spec — the tenant came back and got in.
    pub resubmitted: u64,
    /// Rejections whose spec was never accepted afterwards — the tenant
    /// gave up (or has not come back yet). `rejected` counts *events*;
    /// this counts the ones still unresolved.
    pub rejected_hard: u64,
}

/// Per-submission options: a route override and injected faults.
///
/// The default (no override, no faults) makes [`Service::submit_with`]
/// behave exactly like [`Service::submit`]. The failover router uses the
/// override to steer a retried job onto an alternative route of the same
/// cell, and threads the chaos injector's decisions through `faults`.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions<'a> {
    /// Compile through the route with this exact toolchain name instead
    /// of [`Registry::select_best`]'s choice. The route must exist,
    /// support the job's (model, language, vendor), and be usable,
    /// otherwise the submission fails with [`SubmitError::NoRoute`].
    pub route: Option<&'a str>,
    /// Faults to inject into this submission's pipeline stages.
    pub faults: AttemptFaults,
}

/// One device plus its scheduling state.
struct Lane {
    device: Arc<Device>,
    streams: Vec<Stream>,
    /// Round-robin cursor over `streams`.
    next_stream: AtomicUsize,
    /// Jobs admitted but not yet retired on this device.
    in_flight: Arc<AtomicUsize>,
}

/// Book-keeping for an accepted job, kept for dependency resolution.
struct JobRecord {
    vendor: Vendor,
    /// Per-argument device buffers: `(ptr, len)` for buffer args, `None`
    /// for scalars.
    buffers: Vec<Option<(DevicePtr, u64)>>,
    /// Retired when the job's last stream operation has run.
    done: Event,
}

/// A handle to one accepted job.
pub struct JobHandle {
    /// The job's service-wide id.
    pub id: JobId,
    /// The device the job was scheduled on.
    pub vendor: Vendor,
    /// Served from the compile cache?
    pub cache_hit: bool,
    done: Event,
    error: Arc<Mutex<Option<SimError>>>,
    output: Arc<Mutex<Option<Vec<u8>>>>,
    admitted_at: ModeledTime,
}

impl JobHandle {
    /// Block until the job retires and return its completion record.
    pub fn wait(self) -> JobCompletion {
        let at = self.done.wait();
        let latency =
            ModeledTime::from_seconds((at.seconds() - self.admitted_at.seconds()).max(0.0));
        JobCompletion {
            id: self.id,
            vendor: self.vendor,
            output: self.output.lock().take(),
            error: self.error.lock().take(),
            latency,
            cache_hit: self.cache_hit,
        }
    }

    /// Has the job retired yet?
    pub fn is_done(&self) -> bool {
        self.done.query()
    }
}

/// The concurrent kernel-execution service over the executable matrix.
pub struct Service {
    registry: Registry,
    cache: Arc<CompileCache>,
    lanes: BTreeMap<Vendor, Lane>,
    jobs: Mutex<HashMap<JobId, JobRecord>>,
    next_id: AtomicU64,
    queue_depth: usize,
    submitted: Arc<AtomicU64>,
    completed: Arc<AtomicU64>,
    failed: Arc<AtomicU64>,
    rejected: AtomicU64,
    resubmitted: AtomicU64,
    /// Spec-content keys of rejected submissions not yet resubmitted:
    /// key → outstanding rejection count. Distinguishes
    /// rejected-then-resubmitted jobs from hard rejections.
    rejected_pending: Mutex<HashMap<u64, u64>>,
}

/// Content key of a job spec, for matching a resubmission to its earlier
/// rejection: kernel fingerprint, route triple, launch shape, argument
/// bindings, dependencies, and read-back slot. Two submissions of the
/// same work hash equal even though they are distinct `JobSpec` values.
fn spec_key(spec: &JobSpec) -> u64 {
    let mut h = DefaultHasher::new();
    spec.kernel.fingerprint().hash(&mut h);
    (spec.model as u8, spec.language as u8, spec.vendor as u8).hash(&mut h);
    (spec.n, spec.block_dim).hash(&mut h);
    for a in &spec.args {
        match a {
            ArgSpec::Scalar(k) => (0u8, format!("{k:?}")).hash(&mut h),
            ArgSpec::In(bytes) => (1u8, bytes).hash(&mut h),
            ArgSpec::Zeroed(len) => (2u8, len).hash(&mut h),
            ArgSpec::Output(id, idx) => (3u8, id.0, idx).hash(&mut h),
        }
    }
    for id in &spec.after {
        id.0.hash(&mut h);
    }
    spec.read_back.hash(&mut h);
    h.finish()
}

impl Service {
    /// Bring up the service: three devices, `streams_per_device` streams
    /// each, a fresh compile cache, and the paper's route registry.
    pub fn new(cfg: ServeConfig) -> Self {
        Self::with_registry(cfg, Registry::paper())
    }

    /// Bring up the service over an arbitrary (e.g. evolved) registry.
    pub fn with_registry(cfg: ServeConfig, registry: Registry) -> Self {
        let cache = Arc::new(CompileCache::new(cfg.cache_capacity));
        Self::with_cache(cfg, registry, cache)
    }

    /// Bring up the service over an externally owned compile cache —
    /// typically one backed by a disk tier
    /// ([`CompileCache::with_disk`](mcmm_toolchain::CompileCache::with_disk))
    /// shared with other services or surviving across process restarts.
    /// `cfg.cache_capacity` is ignored; the injected cache's own capacity
    /// governs.
    pub fn with_cache(cfg: ServeConfig, registry: Registry, cache: Arc<CompileCache>) -> Self {
        let lanes = Vendor::ALL
            .into_iter()
            .map(|v| {
                let device = Device::new(vendor_device_spec(v));
                device.set_tracing(cfg.tracing);
                let streams = (0..cfg.streams_per_device.max(1))
                    .map(|_| Stream::new(Arc::clone(&device)))
                    .collect();
                (
                    v,
                    Lane {
                        device,
                        streams,
                        next_stream: AtomicUsize::new(0),
                        in_flight: Arc::new(AtomicUsize::new(0)),
                    },
                )
            })
            .collect();
        Self {
            registry,
            cache,
            lanes,
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            queue_depth: cfg.queue_depth.max(1),
            submitted: Arc::new(AtomicU64::new(0)),
            completed: Arc::new(AtomicU64::new(0)),
            failed: Arc::new(AtomicU64::new(0)),
            rejected: AtomicU64::new(0),
            resubmitted: AtomicU64::new(0),
            rejected_pending: Mutex::new(HashMap::new()),
        }
    }

    /// The shared compile cache.
    pub fn cache(&self) -> &CompileCache {
        &self.cache
    }

    /// The route registry this service schedules over.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The simulated device serving a vendor.
    pub fn device(&self, vendor: Vendor) -> &Arc<Device> {
        &self.lanes[&vendor].device
    }

    /// Jobs currently admitted but not retired on a vendor's device.
    pub fn in_flight(&self, vendor: Vendor) -> usize {
        self.lanes[&vendor].in_flight.load(Ordering::SeqCst)
    }

    /// Aggregate accounting so far.
    pub fn counts(&self) -> ServiceCounts {
        ServiceCounts {
            submitted: self.submitted.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            failed: self.failed.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            resubmitted: self.resubmitted.load(Ordering::SeqCst),
            rejected_hard: self.rejected_pending.lock().values().sum(),
        }
    }

    /// Submit a job. On success the job is queued on its device and a
    /// [`JobHandle`] tracks it; every refusal is an explicit
    /// [`SubmitError`] — the service never drops work silently.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.submit_with(spec, SubmitOptions::default())
    }

    /// [`Service::submit`] with per-submission [`SubmitOptions`]: an
    /// explicit route override (the failover router steering a retry onto
    /// an alternative route of the same cell) and injected faults.
    pub fn submit_with(
        &self,
        spec: JobSpec,
        opts: SubmitOptions<'_>,
    ) -> Result<JobHandle, SubmitError> {
        let lane = &self.lanes[&spec.vendor];
        let no_route = SubmitError::NoRoute {
            model: spec.model,
            language: spec.language,
            vendor: spec.vendor,
        };

        // 1. Route resolution — the matrix's empty cells surface here. An
        //    explicit override must name a usable route for the cell.
        let compiler = match opts.route {
            None => self.registry.select_best(spec.model, spec.language, spec.vendor),
            Some(name) => self
                .registry
                .ranked(spec.model, spec.language, spec.vendor)
                .into_iter()
                .find(|c| c.name == name),
        }
        .ok_or(no_route)?;

        // 2. Admission control: bounded in-flight jobs per device.
        let admitted = lane.in_flight.fetch_add(1, Ordering::SeqCst);
        if admitted >= self.queue_depth {
            lane.in_flight.fetch_sub(1, Ordering::SeqCst);
            self.rejected.fetch_add(1, Ordering::SeqCst);
            *self.rejected_pending.lock().entry(spec_key(&spec)).or_insert(0) += 1;
            return Err(SubmitError::QueueFull {
                vendor: spec.vendor,
                depth: self.queue_depth,
                retry_after_jobs: admitted - self.queue_depth + 1,
            });
        }
        // Admitted: if this spec bounced off admission earlier, the
        // tenant came back — settle one outstanding rejection.
        {
            let mut pending = self.rejected_pending.lock();
            if let Some(count) = pending.get_mut(&spec_key(&spec)) {
                *count -= 1;
                if *count == 0 {
                    pending.remove(&spec_key(&spec));
                }
                self.resubmitted.fetch_add(1, Ordering::SeqCst);
            }
        }
        // Any refusal below must give the slot back.
        let release_on_err = |e: SubmitError| {
            lane.in_flight.fetch_sub(1, Ordering::SeqCst);
            e
        };

        // 3. Compile through the content-addressed cache. The lint gate
        //    runs once per cache fill; warm submissions skip it entirely.
        //    An injected toolchain fault fails a cold compile only — a
        //    resident artifact rides it out.
        let (module, cache_hit) = self
            .cache
            .compile_faulted(
                compiler,
                &spec.kernel,
                spec.model,
                spec.language,
                spec.vendor,
                opts.faults.compile.as_deref(),
            )
            .map_err(|e| release_on_err(SubmitError::Compile(e)))?;
        let efficiency = compiler.efficiency();

        // 4. Resolve dependencies and bind buffers.
        let resolved = self.bind_args(&spec, &lane.device).map_err(release_on_err)?;

        // 5. Map the job onto a stream.
        let id = JobId(self.next_id.fetch_add(1, Ordering::SeqCst));
        let stream =
            &lane.streams[lane.next_stream.fetch_add(1, Ordering::SeqCst) % lane.streams.len()];
        let done = Event::new();
        let error: Arc<Mutex<Option<SimError>>> = Arc::new(Mutex::new(None));
        let output: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
        let admitted_at = lane.device.modeled_clock();

        for dep in &resolved.wait_on {
            stream.wait_event(dep);
        }
        // An injected upload fault aborts the job's *first* upload; the
        // remaining uploads are skipped via the job-local error slot, the
        // same path an organic transfer failure takes.
        let mut upload_fault = opts.faults.upload;
        for (ptr, bytes) in resolved.uploads {
            let slot = Arc::clone(&error);
            let fault = upload_fault.take();
            stream.exec(move |dev| {
                if slot.lock().is_some() {
                    return Ok(()); // a prior op of *this job* failed
                }
                if let Err(e) = dev.memcpy_h2d_faulted(ptr, &bytes, fault.as_ref()) {
                    slot.lock().get_or_insert(e);
                }
                Ok(()) // job-local error: never poison the stream
            });
        }
        {
            let slot = Arc::clone(&error);
            let module: Arc<Module> = Arc::clone(&module);
            let cfg = LaunchConfig::linear(spec.n, spec.block_dim).with_efficiency(efficiency);
            let args = resolved.args;
            let fault = opts.faults.launch;
            stream.exec(move |dev| {
                if slot.lock().is_some() {
                    return Ok(());
                }
                if let Err(e) = dev.launch_faulted(&module, cfg, &args, fault.as_ref()) {
                    slot.lock().get_or_insert(e);
                }
                Ok(())
            });
        }
        if let Some((ptr, len)) = resolved.read_back {
            let slot = Arc::clone(&error);
            let out = Arc::clone(&output);
            let fault = opts.faults.read_back;
            stream.exec(move |dev| {
                if slot.lock().is_some() {
                    return Ok(());
                }
                match dev.memcpy_d2h_faulted(ptr, len, fault.as_ref()) {
                    Ok((bytes, _)) => *out.lock() = Some(bytes),
                    Err(e) => {
                        slot.lock().get_or_insert(e);
                    }
                }
                Ok(())
            });
        }
        {
            // Retirement: release the admission slot and classify the
            // outcome. Runs even after failures — slots cannot leak. The
            // completion event is recorded *after* this, so by the time a
            // waiter observes `done`, the books already balance.
            let in_flight = Arc::clone(&lane.in_flight);
            let (completed, failed) = (Arc::clone(&self.completed), Arc::clone(&self.failed));
            let slot = Arc::clone(&error);
            stream.callback(move || {
                if slot.lock().is_some() {
                    failed.fetch_add(1, Ordering::SeqCst);
                } else {
                    completed.fetch_add(1, Ordering::SeqCst);
                }
                in_flight.fetch_sub(1, Ordering::SeqCst);
            });
        }
        stream.record(&done);

        self.submitted.fetch_add(1, Ordering::SeqCst);
        self.jobs.lock().insert(
            id,
            JobRecord { vendor: spec.vendor, buffers: resolved.buffers, done: done.clone() },
        );
        Ok(JobHandle { id, vendor: spec.vendor, cache_hit, done, error, output, admitted_at })
    }

    /// Block until every stream on every device has drained.
    pub fn drain(&self) {
        for lane in self.lanes.values() {
            for s in &lane.streams {
                // Serve streams are never poisoned (job errors are local),
                // so a sync error here is a service bug worth surfacing.
                s.synchronize().expect("serve stream poisoned");
            }
        }
    }

    /// Resolve `spec.args` into device pointers, uploads, and dependency
    /// events. Allocates fresh buffers; aliases dependency buffers.
    fn bind_args(&self, spec: &JobSpec, device: &Arc<Device>) -> Result<ResolvedArgs, SubmitError> {
        let jobs = self.jobs.lock();
        let mut wait_on = Vec::new();
        let mut dep_ids: Vec<JobId> = spec.after.clone();
        for a in &spec.args {
            if let ArgSpec::Output(id, _) = a {
                dep_ids.push(*id);
            }
        }
        dep_ids.sort();
        dep_ids.dedup();
        for id in &dep_ids {
            let rec = jobs.get(id).ok_or(SubmitError::UnknownDependency(*id))?;
            if spec.args.iter().any(|a| matches!(a, ArgSpec::Output(d, _) if d == id))
                && rec.vendor != spec.vendor
            {
                return Err(SubmitError::CrossDeviceDependency {
                    job: *id,
                    expected: spec.vendor,
                    found: rec.vendor,
                });
            }
            wait_on.push(rec.done.clone());
        }

        let mut args = Vec::with_capacity(spec.args.len());
        let mut buffers = Vec::with_capacity(spec.args.len());
        let mut uploads = Vec::new();
        let mut fresh: Vec<(DevicePtr, u64)> = Vec::new();
        let mut alloc = |len: u64| -> Result<DevicePtr, SubmitError> {
            let ptr = device.alloc(len).map_err(SubmitError::Alloc)?;
            fresh.push((ptr, len));
            Ok(ptr)
        };
        let mut failed = None;
        for a in &spec.args {
            match a {
                ArgSpec::Scalar(k) => {
                    args.push(*k);
                    buffers.push(None);
                }
                ArgSpec::In(bytes) => match alloc(bytes.len() as u64) {
                    Ok(ptr) => {
                        uploads.push((ptr, bytes.clone()));
                        args.push(KernelArg::Ptr(ptr));
                        buffers.push(Some((ptr, bytes.len() as u64)));
                    }
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                },
                ArgSpec::Zeroed(len) => match alloc(*len) {
                    Ok(ptr) => {
                        uploads.push((ptr, vec![0u8; *len as usize]));
                        args.push(KernelArg::Ptr(ptr));
                        buffers.push(Some((ptr, *len)));
                    }
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                },
                ArgSpec::Output(id, idx) => {
                    let rec = jobs.get(id).ok_or(SubmitError::UnknownDependency(*id))?;
                    let (ptr, len) = rec
                        .buffers
                        .get(*idx)
                        .copied()
                        .flatten()
                        .ok_or(SubmitError::BadBuffer { job: *id, arg: *idx })?;
                    args.push(KernelArg::Ptr(ptr));
                    buffers.push(Some((ptr, len)));
                }
            }
        }
        if let Some(e) = failed {
            // Give back what this job allocated before the failure.
            for (ptr, len) in fresh {
                device.free(ptr, len);
            }
            return Err(e);
        }
        let read_back = match spec.read_back {
            None => None,
            Some(idx) => Some(
                buffers
                    .get(idx)
                    .copied()
                    .flatten()
                    .ok_or(SubmitError::BadBuffer { job: JobId(0), arg: idx })?,
            ),
        };
        Ok(ResolvedArgs { args, buffers, uploads, wait_on, read_back })
    }
}

struct ResolvedArgs {
    /// Kernel arguments in signature order.
    args: Vec<KernelArg>,
    /// Per-argument buffer table (for later jobs' [`ArgSpec::Output`]).
    buffers: Vec<Option<(DevicePtr, u64)>>,
    /// Host data to upload in stream order before the launch.
    uploads: Vec<(DevicePtr, Vec<u8>)>,
    /// Dependency completion events to wait on.
    wait_on: Vec<Event>,
    /// Buffer to read back after the launch.
    read_back: Option<(DevicePtr, u64)>,
}
