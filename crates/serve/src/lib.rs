//! # mcmm-serve — a concurrent kernel-execution service over the matrix
//!
//! The paper's compatibility matrix says which (model, language, vendor)
//! routes *exist*; [`mcmm_toolchain`] makes them *executable*; this crate
//! makes them *servable*: a multi-tenant service that accepts jobs —
//! kernel IR plus a route plus launch configuration plus buffers — and
//! runs them concurrently across the three simulated vendor devices.
//!
//! Three pieces:
//!
//! * **Compile cache** ([`mcmm_toolchain::CompileCache`], shared) —
//!   content-addressed on (kernel-IR fingerprint × route), LRU-evicted,
//!   so the analyzer lint gate and ISA translation run once per distinct
//!   (kernel, route) pair no matter how many tenants submit it.
//! * **Scheduler** ([`Service`]) — per-device stream fans with bounded
//!   admission ([`SubmitError::QueueFull`] is an explicit rejection, never
//!   a silent drop), and dependency-aware job DAGs mapped onto the
//!   simulator's stream/event primitives: launch-after-launch edges become
//!   `wait_event`, read-backs become transfer-after-launch on the job's
//!   stream. Job failures stay job-local.
//! * **Load generator + reports** ([`Workload`], [`ServeReport`]) — a
//!   seeded, deterministic mixed workload over every routable frontend ×
//!   device combination, and a report with throughput, p50/p99 modeled
//!   latency, cache hit rate, and per-device utilization, in both
//!   human-readable and JSON form.
//!
//! The determinism contract, exercised by the integration tests: the
//! concurrent service produces **byte-identical** result buffers to a
//! serial single-stream execution of the same plan ([`run_serial`]).

pub mod failover;
pub mod job;
pub mod report;
pub mod service;
pub mod workload;

pub use failover::{
    AttemptRecord, BreakerState, FailoverPolicy, FailoverRouter, FailoverStats, FailoverTrace,
};
pub use job::{ArgSpec, JobCompletion, JobId, JobSpec, SubmitError};
pub use report::{DeviceReport, LatencyStats, PortabilityRow, ServeReport};
pub use service::{JobHandle, ServeConfig, Service, ServiceCounts, SubmitOptions};
pub use workload::{run_serial, KernelShape, PlannedInput, PlannedJob, Workload, WorkloadConfig};
