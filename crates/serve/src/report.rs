//! Serving reports: latency percentiles, throughput, cache behaviour, and
//! per-device utilization — human-readable and machine-readable (JSON).
//!
//! All times are **modeled** (device-clock) seconds unless a field says
//! `wall`: the point of the report is the analytic performance model, not
//! the host machine the simulation happens to run on.

use crate::failover::FailoverStats;
use crate::job::JobCompletion;
use crate::service::{Service, ServiceCounts};
use mcmm_core::taxonomy::Vendor;
use mcmm_gpu_sim::{MemStats, TransferStats};
use serde::Serialize;

/// Percentile summary over per-job modeled latencies (microseconds).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct LatencyStats {
    /// Median.
    pub p50_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Mean.
    pub mean_us: f64,
    /// Worst observed.
    pub max_us: f64,
}

impl LatencyStats {
    /// Summarise a set of modeled latencies given in seconds.
    pub fn from_seconds(latencies: &[f64]) -> Self {
        if latencies.is_empty() {
            return Self::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency is never NaN"));
        let pct = |p: f64| {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx] * 1e6
        };
        Self {
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            mean_us: sorted.iter().sum::<f64>() / sorted.len() as f64 * 1e6,
            max_us: sorted[sorted.len() - 1] * 1e6,
        }
    }
}

/// One device's share of the workload.
#[derive(Debug, Clone, Serialize)]
pub struct DeviceReport {
    /// Vendor name ("AMD", "Intel", "NVIDIA").
    pub vendor: String,
    /// Simulated device name.
    pub device: String,
    /// Kernel launches the device retired.
    pub launches: u64,
    /// Modeled busy time: the device clock after the run (seconds).
    pub busy_s: f64,
    /// `busy_s / makespan` — the fraction of the run this device was
    /// doing modeled work.
    pub utilization: f64,
    /// Host→device bytes moved over the run.
    pub h2d_bytes: u64,
    /// Device→host bytes moved over the run.
    pub d2h_bytes: u64,
    /// L1 hit rate over traced launches; `None` when nothing was traced
    /// (the default: tracing off, analytic timing).
    pub l1_hit_rate: Option<f64>,
    /// L2 hit rate over traced launches; `None` when nothing was traced.
    pub l2_hit_rate: Option<f64>,
}

/// Compile-cache behaviour over the run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CacheReport {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses (compiles actually performed).
    pub misses: u64,
    /// Artifacts evicted by the LRU policy.
    pub evictions: u64,
    /// Live entries at the end of the run.
    pub entries: usize,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
}

/// Lowered-program cache behaviour, summed over the three devices. The
/// compile cache above deduplicates *route compilations*; this one
/// deduplicates the *lane-vector lowering* the vectorized execution tier
/// performs per distinct kernel per device.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ProgramsReport {
    /// Launches served by an already-lowered program.
    pub hits: u64,
    /// Lowerings actually performed.
    pub misses: u64,
    /// Distinct programs cached across the devices.
    pub entries: usize,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
}

/// Middle-end optimizer activity, summed over the three devices —
/// mirrors [`mcmm_gpu_sim::OptStats`] for serialization. All-zero at the
/// default O0, where the vectorized tier lowers kernels as written.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct OptReport {
    /// Kernels run through the middle-end (per device, per level).
    pub kernels: u64,
    /// Instruction count entering the pass pipeline.
    pub instrs_before: u64,
    /// Instruction count after the pipeline (reconstructed form).
    pub instrs_after: u64,
    /// Individual pass executions across all pass-manager sweeps.
    pub pass_runs: u64,
    /// Operations replaced by constants or copies (constant folding).
    pub folded: u64,
    /// Dead operations removed.
    pub dce_removed: u64,
    /// Redundant expressions merged (CSE, loads included).
    pub cse_merged: u64,
    /// Loop-invariant operations hoisted.
    pub licm_hoisted: u64,
    /// Operations rewritten to cheaper forms (strength reduction).
    pub strength_reduced: u64,
    /// Rewrites by the vendor-parameterized passes (divergence
    /// flattening, address-chain folding).
    pub vendor_rewrites: u64,
}

impl From<mcmm_gpu_sim::OptStats> for OptReport {
    fn from(s: mcmm_gpu_sim::OptStats) -> Self {
        OptReport {
            kernels: s.kernels,
            instrs_before: s.instrs_before,
            instrs_after: s.instrs_after,
            pass_runs: s.pass_runs,
            folded: s.folded,
            dce_removed: s.dce_removed,
            cse_merged: s.cse_merged,
            licm_hoisted: s.licm_hoisted,
            strength_reduced: s.strength_reduced,
            vendor_rewrites: s.vendor_rewrites,
        }
    }
}

/// Job accounting, mirrored from [`ServiceCounts`] for serialization.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct JobsReport {
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs that retired cleanly.
    pub completed: u64,
    /// Jobs that retired with a job-local error.
    pub failed: u64,
    /// Submissions explicitly refused by admission control.
    pub rejected: u64,
    /// Accepted submissions that matched an earlier rejection — the
    /// tenant heeded the `retry_after_jobs` hint and got in.
    pub resubmitted: u64,
    /// Rejections never followed by an accepted resubmission.
    pub rejected_hard: u64,
}

/// One workload kernel's portability verdict on one vendor device, as
/// computed by the caller. The serving layer itself stays free of the
/// static analyzer — the `serve` bench binary feeds these rows from
/// `mcmm-analyze`'s per-device portability suite (MCA006–MCA010) so the
/// report can show, next to the throughput numbers, *which* of the served
/// kernels would survive a move to another vendor's hardware.
#[derive(Debug, Clone, Serialize)]
pub struct PortabilityRow {
    /// Kernel name.
    pub kernel: String,
    /// Simulated device name (`DeviceSpec::name`).
    pub device: String,
    /// Warp/wavefront/sub-group width of that device.
    pub warp_width: u32,
    /// No gating finding (MCA006–MCA009) on this device; informational
    /// MCA010 drift does not clear this flag to `false`.
    pub gate_clean: bool,
    /// Distinct diagnostic codes present for this kernel on this device.
    pub codes: Vec<String>,
}

/// The full serving report.
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// Workload seed, for reproduction.
    pub seed: u64,
    /// Job accounting.
    pub jobs: JobsReport,
    /// Compile-cache behaviour.
    pub cache: CacheReport,
    /// Lowered-program cache behaviour (vectorized execution tier).
    pub programs: ProgramsReport,
    /// Middle-end optimizer activity (all-zero at the default O0).
    pub opt: OptReport,
    /// Modeled latency summary (admission → retirement, queueing included).
    pub latency: LatencyStats,
    /// Modeled makespan: the slowest device clock (seconds).
    pub makespan_s: f64,
    /// Jobs per modeled second over the makespan.
    pub throughput_jobs_per_s: f64,
    /// Host wall-clock of the run (milliseconds) — reported for context,
    /// not part of the performance model.
    pub wall_ms: f64,
    /// Per-device breakdown.
    pub devices: Vec<DeviceReport>,
    /// Failover accounting, when the run went through the
    /// [`crate::FailoverRouter`].
    pub failover: Option<FailoverStats>,
    /// Per-kernel, per-device portability verdicts for the served
    /// workload shapes (empty unless the caller attached them with
    /// [`ServeReport::with_portability`]).
    pub portability: Vec<PortabilityRow>,
}

impl ServeReport {
    /// Assemble the report from a drained service and its completions.
    pub fn collect(
        service: &Service,
        completions: &[JobCompletion],
        seed: u64,
        wall_ms: f64,
    ) -> Self {
        let counts: ServiceCounts = service.counts();
        let cache = service.cache().stats();
        let programs = Vendor::ALL
            .into_iter()
            .map(|v| service.device(v).program_cache_stats())
            .fold(mcmm_gpu_sim::ProgramCacheStats::default(), |acc, s| acc.merged(s));
        let opt = Vendor::ALL
            .into_iter()
            .map(|v| service.device(v).opt_stats())
            .fold(mcmm_gpu_sim::OptStats::default(), |acc, s| acc.merged(s));
        let latencies: Vec<f64> = completions.iter().map(|c| c.latency.seconds()).collect();

        let clocks: Vec<(Vendor, f64, u64, String, TransferStats, Option<MemStats>)> = Vendor::ALL
            .into_iter()
            .map(|v| {
                let dev = service.device(v);
                let mem = (dev.mem_launches() > 0).then(|| dev.mem_stats());
                (
                    v,
                    dev.modeled_clock().seconds(),
                    dev.launches(),
                    dev.spec().name.to_string(),
                    dev.transfer_stats(),
                    mem,
                )
            })
            .collect();
        let makespan = clocks.iter().map(|c| c.1).fold(0.0f64, f64::max);
        let devices = clocks
            .into_iter()
            .map(|(v, busy, launches, device, xfer, mem)| DeviceReport {
                vendor: v.to_string(),
                device,
                launches,
                busy_s: busy,
                utilization: if makespan > 0.0 { busy / makespan } else { 0.0 },
                h2d_bytes: xfer.h2d_bytes,
                d2h_bytes: xfer.d2h_bytes,
                l1_hit_rate: mem.map(|m| m.l1_hit_rate()),
                l2_hit_rate: mem.map(|m| m.l2_hit_rate()),
            })
            .collect();

        Self {
            seed,
            jobs: JobsReport {
                submitted: counts.submitted,
                completed: counts.completed,
                failed: counts.failed,
                rejected: counts.rejected,
                resubmitted: counts.resubmitted,
                rejected_hard: counts.rejected_hard,
            },
            cache: CacheReport {
                hits: cache.hits,
                misses: cache.misses,
                evictions: cache.evictions,
                entries: cache.entries,
                hit_rate: cache.hit_rate(),
            },
            programs: ProgramsReport {
                hits: programs.hits,
                misses: programs.misses,
                entries: programs.entries,
                hit_rate: programs.hit_rate(),
            },
            opt: OptReport::from(opt),
            latency: LatencyStats::from_seconds(&latencies),
            makespan_s: makespan,
            throughput_jobs_per_s: if makespan > 0.0 {
                completions.len() as f64 / makespan
            } else {
                0.0
            },
            wall_ms,
            devices,
            failover: None,
            portability: Vec::new(),
        }
    }

    /// Attach a failover run's accounting (builder style).
    pub fn with_failover(mut self, stats: FailoverStats) -> Self {
        self.failover = Some(stats);
        self
    }

    /// Attach per-kernel portability verdicts (builder style).
    pub fn with_portability(mut self, rows: Vec<PortabilityRow>) -> Self {
        self.portability = rows;
        self
    }

    /// Machine-readable JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("serve report (seed {:#x})\n", self.seed));
        out.push_str(&format!(
            "  jobs       {} submitted, {} completed, {} failed, {} rejected ({} resubmitted, {} hard)\n",
            self.jobs.submitted,
            self.jobs.completed,
            self.jobs.failed,
            self.jobs.rejected,
            self.jobs.resubmitted,
            self.jobs.rejected_hard
        ));
        out.push_str(&format!(
            "  cache      {:.1}% hit rate ({} hits / {} misses, {} evictions, {} live)\n",
            self.cache.hit_rate * 100.0,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.entries
        ));
        out.push_str(&format!(
            "  programs   {:.1}% hit rate ({} hits / {} misses, {} lowered programs)\n",
            self.programs.hit_rate * 100.0,
            self.programs.hits,
            self.programs.misses,
            self.programs.entries
        ));
        out.push_str(&format!(
            "  latency    p50 {:.1} us, p99 {:.1} us, mean {:.1} us, max {:.1} us (modeled)\n",
            self.latency.p50_us, self.latency.p99_us, self.latency.mean_us, self.latency.max_us
        ));
        out.push_str(&format!(
            "  throughput {:.0} jobs per modeled second (makespan {:.3} ms, wall {:.0} ms)\n",
            self.throughput_jobs_per_s,
            self.makespan_s * 1e3,
            self.wall_ms
        ));
        for d in &self.devices {
            let caches = match (d.l1_hit_rate, d.l2_hit_rate) {
                (Some(l1), Some(l2)) => {
                    format!(", L1 {:.0}% / L2 {:.0}% hit", l1 * 100.0, l2 * 100.0)
                }
                _ => String::new(),
            };
            out.push_str(&format!(
                "  {:<7} {:<22} {:>4} launches, busy {:.3} ms, {:>5.1}% utilized, \
                 xfer {:.2} MB in / {:.2} MB out{}\n",
                d.vendor,
                d.device,
                d.launches,
                d.busy_s * 1e3,
                d.utilization * 100.0,
                d.h2d_bytes as f64 / 1e6,
                d.d2h_bytes as f64 / 1e6,
                caches
            ));
        }
        if let Some(f) = &self.failover {
            out.push_str(&format!(
                "  failover   {} retries, {} failovers, {} degraded, {} lost, backoff {:.0} us\n",
                f.retries, f.failovers, f.degraded, f.lost, f.backoff_us_total
            ));
            out.push_str(&format!(
                "  breaker    {} quarantined route(s): [{}] ({} health checks)\n",
                f.quarantined.len(),
                f.quarantined.join(", "),
                f.health_checks
            ));
        }
        if !self.portability.is_empty() {
            let broken = self.portability.iter().filter(|r| !r.gate_clean).count();
            out.push_str(&format!(
                "  portability {} kernel-device verdicts, {} gate-breaking\n",
                self.portability.len(),
                broken
            ));
            for r in &self.portability {
                let codes =
                    if r.codes.is_empty() { "clean".to_string() } else { r.codes.join(",") };
                out.push_str(&format!(
                    "    {:<18} {:<26} w{:<3} {} [{}]\n",
                    r.kernel,
                    r.device,
                    r.warp_width,
                    if r.gate_clean { "ok    " } else { "BREAKS" },
                    codes
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_a_known_distribution() {
        // 1..=100 microseconds.
        let lat: Vec<f64> = (1..=100).map(|v| v as f64 * 1e-6).collect();
        let s = LatencyStats::from_seconds(&lat);
        assert!((s.p50_us - 51.0).abs() < 1.5, "p50 {}", s.p50_us);
        assert!((s.p99_us - 99.0).abs() < 1.5, "p99 {}", s.p99_us);
        assert!((s.mean_us - 50.5).abs() < 0.1, "mean {}", s.mean_us);
        assert!((s.max_us - 100.0).abs() < 1e-9, "max {}", s.max_us);
    }

    #[test]
    fn empty_latencies_are_zero() {
        let s = LatencyStats::from_seconds(&[]);
        assert_eq!(s.p50_us, 0.0);
        assert_eq!(s.max_us, 0.0);
    }
}
