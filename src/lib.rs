//! # many-models — Many Cores, Many Models
//!
//! Umbrella crate for the reproduction of *"Many Cores, Many Models: GPU
//! Programming Model vs. Vendor Compatibility Overview"* (Herten, SC'23
//! workshops). Re-exports every workspace crate under one roof:
//!
//! * [`core`] — the compatibility knowledge base (the paper's
//!   contribution): taxonomy, six-category ratings, the 51-cell dataset,
//!   the rating engine, renderers, statistics.
//! * [`gpu_sim`] — the simulated GPU substrate: kernel IR, vendor-style
//!   virtual ISAs, SIMT interpreter, devices, streams, timing model.
//! * [`toolchain`] — virtual compilers realising every dataset route, and
//!   the probe that regenerates the matrix from observed behaviour.
//! * [`frontend`] — the shared execution spine: `ExecutionSession`,
//!   the `Element` transfer trait, the `FrontendError` taxonomy, and the
//!   `Frontend` registry every benchmark iterates.
//! * [`cuda`], [`hip`], [`sycl`], [`openmp`], [`openacc`], [`stdpar`],
//!   [`kokkos`], [`alpaka`], [`python`] — one frontend per surveyed
//!   programming model, each a thin surface over the spine.
//! * [`translate`] — HIPIFY, SYCLomatic, GPUFORT, the OpenACC→OpenMP
//!   migration tool, chipStar.
//! * [`serve`] — the concurrent kernel-execution service: content-
//!   addressed compile cache, admission-controlled per-device scheduling,
//!   dependency-aware job DAGs on streams/events, seeded load generator.
//! * [`babelstream`] — the five STREAM kernels through every frontend on
//!   every vendor.
//!
//! See the repository README for the quickstart, DESIGN.md for the system
//! inventory, and EXPERIMENTS.md for paper-vs-measured results.

pub use mcmm_babelstream as babelstream;
pub use mcmm_core as core;
pub use mcmm_frontend as frontend;
pub use mcmm_gpu_sim as gpu_sim;
pub use mcmm_model_alpaka as alpaka;
pub use mcmm_model_cuda as cuda;
pub use mcmm_model_hip as hip;
pub use mcmm_model_kokkos as kokkos;
pub use mcmm_model_openacc as openacc;
pub use mcmm_model_openmp as openmp;
pub use mcmm_model_python as python;
pub use mcmm_model_raja as raja;
pub use mcmm_model_stdpar as stdpar;
pub use mcmm_model_sycl as sycl;
pub use mcmm_serve as serve;
pub use mcmm_toolchain as toolchain;
pub use mcmm_translate as translate;
