//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Strategy producing vectors with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.len.gen_value(rng);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// Generate vectors of `element` draws with a length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty vec length range");
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Just;

    #[test]
    fn lengths_respect_the_range() {
        let s = vec(Just(7u8), 2..5);
        let mut rng = TestRng::deterministic("vec-len");
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 7));
        }
    }
}
