//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace pins
//! `proptest` to this path shim. It keeps proptest's surface — the
//! [`Strategy`] trait with `prop_map`/`prop_recursive`/`boxed`, range and
//! tuple strategies, [`collection::vec`], `any::<T>()`, and the
//! `proptest!` / `prop_compose!` / `prop_oneof!` / `prop_assert*` macros —
//! but drops shrinking: each test function runs `ProptestConfig::cases`
//! deterministic random cases (seeded from the test's module path and
//! name, so failures reproduce across runs) and `prop_assert*` panics like
//! `assert*` on the first counterexample.

use std::ops::Range;
use std::rc::Rc;

pub mod collection;

/// Everything test modules conventionally glob-import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test function runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Deterministic xorshift64* generator seeding each property test from its
/// name, so runs are reproducible without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a).
    pub fn deterministic(seed: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in seed.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h.max(1) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, n)`; `n` must be non-zero.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves, and `expand`
    /// wraps an inner strategy into the next nesting level, applied
    /// `depth` times. (`desired_size`/`expected_branch_size` are accepted
    /// for source compatibility; recursion depth alone bounds the output
    /// here.)
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut tower = self.boxed();
        for _ in 0..depth {
            tower = expand(tower).boxed();
        }
        tower
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cloneable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_value(rng)
    }
}

/// Strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy applying a function to another strategy's output
/// (see [`Strategy::prop_map`]).
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.gen_value(rng))
    }
}

/// Strategy choosing uniformly among alternatives (see [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternative strategies; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one alternative");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.index(self.arms.len());
        self.arms[idx].gen_value(rng)
    }
}

/// Strategy backed by a plain generation function; used by
/// [`prop_compose!`] and [`Arbitrary`] impls.
pub struct FnStrategy<T> {
    f: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> FnStrategy<T> {
    /// Wrap a generation function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Self { f: Rc::new(f) }
    }
}

impl<T> Clone for FnStrategy<T> {
    fn clone(&self) -> Self {
        Self { f: Rc::clone(&self.f) }
    }
}

impl<T> Strategy for FnStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Types with a canonical strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (uniform over the whole type).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = FnStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        FnStrategy::new(|rng| rng.next_u64() & 1 == 1)
    }
}

macro_rules! arbitrary_uniform_int {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                type Strategy = FnStrategy<$t>;
                fn arbitrary() -> Self::Strategy {
                    FnStrategy::new(|rng| rng.next_u64() as $t)
                }
            }
        )*
    };
}
arbitrary_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    let off = u128::from(rng.next_u64()) % span;
                    (lo + off as i128) as $t
                }
            }
        )*
    };
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let frac = rng.next_f64() as $t;
                    self.start + frac * (self.end - self.start)
                }
            }
        )*
    };
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*
    };
}
tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert a condition inside a property test (panics on failure, like
/// `assert!`; this shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define a function returning a composite strategy, proptest-style:
/// the second parameter list binds strategy draws, the body combines them.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)
        ($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy::new(move |__rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::gen_value(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// Define property-test functions. Each `fn name(binding in strategy, ...)`
/// runs `ProptestConfig::cases` times with fresh draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident
        ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::gen_value(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let v = (3u64..17).gen_value(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0..2.0f64).gen_value(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (-5i32..6).gen_value(&mut rng);
            assert!((-5..6).contains(&i));
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("seed");
        let mut b = TestRng::deterministic("seed");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn oneof_covers_every_arm() {
        let s = prop_oneof![Just(1), Just(2), Just(3)];
        let mut rng = TestRng::deterministic("arms");
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.gen_value(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = Just(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            prop_oneof![
                Just(Tree::Leaf),
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(a.into(), b.into())),
            ]
        });
        let mut rng = TestRng::deterministic("trees");
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&s.gen_value(&mut rng)));
        }
        assert!(max_depth > 0, "recursion never produced a node");
        assert!(max_depth <= 4, "depth bound exceeded: {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_draws_every_binding(x in 0usize..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flag;
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0i32..5, b in 10i32..15) -> (i32, i32) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed_strategies_draw_each_part(pair in arb_pair()) {
            prop_assert!((0..5).contains(&pair.0));
            prop_assert!((10..15).contains(&pair.1));
        }
    }
}
