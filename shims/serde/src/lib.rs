//! Workspace-local stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace pins
//! `serde` to this path shim. Instead of serde's visitor architecture it
//! serializes through an owned JSON-like [`Value`] tree: `Serialize`
//! converts a type *to* a `Value`, `Deserialize` reads it back *from* one,
//! and the accompanying `serde_json` shim renders/parses the tree as JSON
//! text. The derive macros (from the sibling `serde_derive` shim) emit the
//! same external representation real serde would: structs become objects
//! in field order, unit enum variants become strings, and newtype variants
//! become single-entry objects.

pub use serde_derive::{Deserialize, Serialize};

mod impls;
mod value;

pub use value::Value;

/// Error produced when a [`Value`] cannot be decoded into the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Create an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Decode an instance from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}
