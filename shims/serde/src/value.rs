//! The JSON-like value tree all (de)serialization goes through, plus its
//! text rendering. Object entries keep insertion order, which for derived
//! structs is declaration order — the same shape real serde_json produces.

use crate::DeError;

/// An owned JSON-like value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number without a fractional part.
    Int(i64),
    /// JSON number with a fractional part (or out of `i64` range).
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow the string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The number as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Borrow the elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Look up an object entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Value::get`] but yielding `null` for missing keys — the
    /// lookup the derived `Deserialize` impls use, so `Option` fields read
    /// absent keys as `None`.
    pub fn get_field(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }

    /// The key and value of a single-entry object — the external
    /// representation of a newtype enum variant.
    pub fn as_single_entry(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(o) if o.len() == 1 => Some((o[0].0.as_str(), &o[0].1)),
            _ => None,
        }
    }

    /// Render as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Render as pretty JSON (two-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, always with a decimal point or exponent.
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                    items[i].write_json(out, indent, level + 1);
                });
            }
            Value::Object(entries) => {
                write_seq(out, indent, level, '{', '}', entries.len(), |out, i| {
                    let (k, v) = &entries[i];
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, level + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get_field(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {
        $(
            impl PartialEq<$t> for Value {
                fn eq(&self, other: &$t) -> bool {
                    match self {
                        Value::Int(i) => i128::from(*i) == i128::from(*other),
                        _ => false,
                    }
                }
            }
        )*
    };
}
value_eq_int!(i8, i16, i32, i64, u8, u16, u32, u64);

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        match self {
            Value::Int(i) => i128::from(*i) == *other as i128,
            _ => false,
        }
    }
}

impl From<DeError> for String {
    fn from(e: DeError) -> String {
        e.to_string()
    }
}
