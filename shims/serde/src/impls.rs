//! `Serialize`/`Deserialize` implementations for the std types the
//! workspace serializes.

use crate::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected a boolean"))
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    Value::Int(*self as i64)
                }
            }

            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<Self, DeError> {
                    let i = v
                        .as_i64()
                        .ok_or_else(|| DeError::custom("expected an integer"))?;
                    <$t>::try_from(i)
                        .map_err(|_| DeError::custom("integer out of range"))
                }
            }
        )*
    };
}
int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected a number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_owned).ok_or_else(|| DeError::custom("expected a string"))
    }
}

impl Deserialize for &'static str {
    /// Deserializing into `&'static str` leaks the decoded string. The
    /// workspace only does this in tests round-tripping small structs with
    /// `&'static str` fields; real serde would borrow from the input.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(|s| &*s.leak())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::custom("expected a string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected a single character")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected an array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

/// Render a map key the way serde_json does: strings stay themselves,
/// other scalars use their JSON text.
fn key_string(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        other => other.to_json(),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (key_string(&k.to_value()), v.to_value())).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn to_value(&self) -> Value {
                    Value::Array(vec![$(self.$idx.to_value()),+])
                }
            }

            impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
                fn from_value(v: &Value) -> Result<Self, DeError> {
                    let items = v
                        .as_array()
                        .ok_or_else(|| DeError::custom("expected a tuple array"))?;
                    let expected = [$($idx),+].len();
                    if items.len() != expected {
                        return Err(DeError::custom("tuple length mismatch"));
                    }
                    Ok(($($name::from_value(&items[$idx])?,)+))
                }
            }
        )*
    };
}
tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
