//! Workspace-local stand-in for the `crossbeam-deque` crate.
//!
//! The build environment has no crates.io access, so the workspace pins
//! `crossbeam-deque` to this path shim. It provides the same
//! [`Worker`]/[`Stealer`]/[`Injector`]/[`Steal`] API the thread pool uses,
//! implemented with mutex-protected `VecDeque`s instead of lock-free
//! deques. Semantics (FIFO order, batch stealing, `Steal` composition)
//! match; only the synchronization strategy differs.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// How many jobs `steal_batch_and_pop` moves to the destination worker at
/// most (beyond the one it returns).
const BATCH: usize = 4;

fn locked<T>(m: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The attempt lost a race and should be retried.
    Retry,
}

impl<T> Steal<T> {
    /// Is this `Success`?
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// Is this `Empty`?
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// Is this `Retry`?
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// If this is not `Success`, try the fallback `f`; `Retry` from either
    /// side is sticky so callers know to spin again.
    pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
        match self {
            Steal::Success(t) => Steal::Success(t),
            Steal::Empty => f(),
            Steal::Retry => match f() {
                Steal::Success(t) => Steal::Success(t),
                _ => Steal::Retry,
            },
        }
    }
}

impl<T> FromIterator<Steal<T>> for Steal<T> {
    /// Collect steal attempts: the first `Success` wins; otherwise `Retry`
    /// if any attempt needs retrying; otherwise `Empty`.
    fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
        let mut retry = false;
        for s in iter {
            match s {
                Steal::Success(t) => return Steal::Success(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if retry {
            Steal::Retry
        } else {
            Steal::Empty
        }
    }
}

/// A worker-owned FIFO queue.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Create a new FIFO worker queue.
    pub fn new_fifo() -> Self {
        Self { queue: Arc::new(Mutex::new(VecDeque::new())) }
    }

    /// Push a task onto the queue.
    pub fn push(&self, task: T) {
        locked(&self.queue).push_back(task);
    }

    /// Pop the next task in FIFO order.
    pub fn pop(&self) -> Option<T> {
        locked(&self.queue).pop_front()
    }

    /// Is the queue currently empty?
    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }

    /// Create a stealer handle sharing this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Self::new_fifo()
    }
}

/// A shareable handle that steals tasks from a [`Worker`].
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Steal one task from the front of the worker's queue.
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Is the observed queue currently empty?
    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self { queue: Arc::clone(&self.queue) }
    }
}

/// A global FIFO injector queue shared by all workers.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// Create an empty injector.
    pub fn new() -> Self {
        Self { queue: Mutex::new(VecDeque::new()) }
    }

    /// Push a task into the global queue.
    pub fn push(&self, task: T) {
        locked(&self.queue).push_back(task);
    }

    /// Steal one task.
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steal a batch of tasks, moving all but the first into `dest` and
    /// returning the first.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = locked(&self.queue);
        let first = match q.pop_front() {
            Some(t) => t,
            None => return Steal::Empty,
        };
        for _ in 0..BATCH {
            match q.pop_front() {
                Some(t) => dest.push(t),
                None => break,
            }
        }
        Steal::Success(first)
    }

    /// Is the queue currently empty?
    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_fifo() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_from_worker() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(7);
        assert_eq!(s.steal(), Steal::Success(7));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn batch_steal_moves_extra_work() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        // A batch beyond the popped task landed in the worker, in order.
        assert_eq!(w.pop(), Some(1));
        assert!(!inj.is_empty());
    }

    #[test]
    fn collect_prefers_success_and_remembers_retry() {
        let all: Steal<i32> = [Steal::Empty, Steal::Retry, Steal::Success(3)].into_iter().collect();
        assert_eq!(all, Steal::Success(3));
        let none: Steal<i32> = [Steal::Empty, Steal::Retry].into_iter().collect();
        assert_eq!(none, Steal::Retry);
        let empty: Steal<i32> = [Steal::<i32>::Empty; 2].into_iter().collect();
        assert_eq!(empty, Steal::Empty);
    }

    #[test]
    fn or_else_falls_through() {
        assert_eq!(Steal::Success(1).or_else(|| Steal::Success(2)), Steal::Success(1));
        assert_eq!(Steal::Empty.or_else(|| Steal::Success(2)), Steal::Success(2));
        assert_eq!(Steal::<i32>::Retry.or_else(|| Steal::Empty), Steal::Retry);
    }
}
