//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace pins
//! `criterion` to this path shim. It keeps the bench-definition API
//! (`Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`) but replaces the
//! statistical engine with a fixed warmup-plus-measure loop that prints
//! one mean-time line per benchmark. This keeps `cargo test`/`cargo bench`
//! runs fast while still exercising every bench body.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations used to warm up before timing.
const WARMUP_ITERS: u32 = 2;
/// Timed iterations whose mean is reported.
const MEASURE_ITERS: u32 = 5;

/// Entry point handed to bench functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), f);
        self
    }
}

/// A named collection of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim's iteration counts are
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Run a parameterized benchmark inside this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// A benchmark identifier combining a name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier rendered as `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self { id: format!("{name}/{parameter}") }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    mean: Option<Duration>,
}

impl Bencher {
    /// Run `routine` repeatedly and record its mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / MEASURE_ITERS);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => println!("bench {id}: {mean:?} (mean of {MEASURE_ITERS})"),
        None => println!("bench {id}: no measurement"),
    }
}

/// Collect bench functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        let mut ran = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| ran += 1);
        });
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &v| {
            b.iter(|| v * 2);
        });
        g.finish();
        assert_eq!(ran, WARMUP_ITERS + MEASURE_ITERS);
    }
}
