//! Workspace-local stand-in for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so the workspace pins
//! `parking_lot` to this path shim. It reimplements the small API surface
//! the workspace uses — a non-poisoning [`Mutex`] and a [`Condvar`] whose
//! wait functions take the guard by `&mut` — on top of `std::sync`.

use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex`, `lock()`
/// returns the guard directly (poisoning is swallowed, matching
/// parking_lot's non-poisoning semantics).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is an implementation detail letting [`Condvar`]
/// temporarily move the std guard out while blocking.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Did the wait end because the timeout elapsed?
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`]. Wait functions take the
/// guard by `&mut` (parking_lot style) rather than by value.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (std_guard, result) =
            self.inner.wait_timeout(std_guard, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(r.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait_for(&mut g, Duration::from_millis(50));
            }
        });
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
