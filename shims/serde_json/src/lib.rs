//! Workspace-local stand-in for the `serde_json` crate.
//!
//! The build environment has no crates.io access, so the workspace pins
//! `serde_json` to this path shim. It renders and parses JSON text over
//! the `serde` shim's [`Value`] tree: `to_string` walks a `Serialize`
//! type's value tree, `from_str` parses text into a tree and decodes it
//! with `Deserialize`. Output shape matches real serde_json (compact with
//! no spaces; pretty with two-space indent; struct fields in declaration
//! order).

pub use serde::Value;

/// Error from serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serialize a value as compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Serialize a value as pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Serialize a value into a JSON [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserialize a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser { bytes: s.as_bytes(), pos: 0 }.parse_document()?;
    Ok(T::from_value(&value)?)
}

/// Deserialize a value from a JSON [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::new(format!("trailing characters at byte {}", self.pos)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_keyword("null").map(|()| Value::Null),
            b't' => self.eat_keyword("true").map(|()| Value::Bool(true)),
            b'f' => self.eat_keyword("false").map(|()| Value::Bool(false)),
            b'"' => self.parse_string().map(Value::String),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            c => Err(Error::new(format!("unexpected `{}` at byte {}", c as char, self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.bytes.get(self.pos).ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            // Combine a UTF-16 surrogate pair if present.
                            let code = if (0xD800..0xDC00).contains(&unit) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(Error::new("lone surrogate"));
                                }
                            } else {
                                unit
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        c => return Err(Error::new(format!("invalid escape `\\{}`", c as char))),
                    }
                }
                _ => {
                    // Copy the full UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "42", "-7", "2.5", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(v.to_json(), text, "round-tripping {text}");
        }
    }

    #[test]
    fn nested_structures_parse() {
        let v: Value = from_str(r#" { "a": [1, 2.0, {"b": null}], "c": "x\n\"y\"" } "#).unwrap();
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
        assert_eq!(v["a"][1], 2.0);
        assert!(v["a"][2]["b"].is_null());
        assert_eq!(v["c"], "x\n\"y\"");
    }

    #[test]
    fn unicode_escapes_decode() {
        // A BMP escape, a surrogate pair, and raw multi-byte UTF-8.
        let v: Value = from_str("\"\\u00e9 \\ud83d\\ude00 é\"").unwrap();
        assert_eq!(v, "é 😀 é");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![
            ("n".to_string(), Value::Int(1)),
            ("list".to_string(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"n\": 1"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}
