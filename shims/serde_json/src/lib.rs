//! Workspace-local stand-in for the `serde_json` crate.
//!
//! The build environment has no crates.io access, so the workspace pins
//! `serde_json` to this path shim. It renders and parses JSON text over
//! the `serde` shim's [`Value`] tree: `to_string` walks a `Serialize`
//! type's value tree, `from_str` parses text into a tree and decodes it
//! with `Deserialize`. Output shape matches real serde_json (compact with
//! no spaces; pretty with two-space indent; struct fields in declaration
//! order).
//!
//! The reader is hardened for **network input** (the gateway feeds it raw
//! HTTP bodies): trailing garbage after the document is rejected, nesting
//! depth is capped at [`MAX_DEPTH`] so a hostile `[[[[…` body cannot blow
//! the stack, and every error carries the byte offset it was detected at
//! ([`Error::position`]) — including truncated bodies, which report the
//! end-of-input offset instead of a positionless "unexpected end".

pub use serde::Value;

/// Maximum nesting depth (arrays + objects) the parser accepts. Deeper
/// documents are rejected with a positioned error rather than recursing
/// toward a stack overflow — this parser runs on untrusted network bodies.
pub const MAX_DEPTH: usize = 64;

/// Error from serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    pos: Option<usize>,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into(), pos: None }
    }

    fn at(msg: impl Into<String>, pos: usize) -> Self {
        Self { msg: msg.into(), pos: Some(pos) }
    }

    /// Byte offset in the input where the error was detected, when the
    /// error came from parsing (decode errors from `Deserialize` have no
    /// position). For truncated input this is the input length — the
    /// point where more bytes were expected.
    pub fn position(&self) -> Option<usize> {
        self.pos
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pos {
            Some(p) => write!(f, "{} at byte {p}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serialize a value as compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Serialize a value as pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Serialize a value into a JSON [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserialize a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 }.parse_document()?;
    Ok(T::from_value(&value)?)
}

/// Deserialize a value from a JSON [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current array/object nesting depth, capped at [`MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::at("trailing characters after document", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Truncated-input error, positioned at the end of the bytes.
    fn truncated(&self, what: &str) -> Error {
        Error::at(format!("unexpected end of input ({what})"), self.bytes.len())
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| self.truncated("expected a value"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::at("invalid literal", self.pos))
        }
    }

    /// Enter one nesting level, rejecting documents deeper than
    /// [`MAX_DEPTH`]. The caller must pair it with a `depth -= 1`.
    fn descend(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::at(format!("nesting deeper than {MAX_DEPTH} levels"), self.pos));
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_keyword("null").map(|()| Value::Null),
            b't' => self.eat_keyword("true").map(|()| Value::Bool(true)),
            b'f' => self.eat_keyword("false").map(|()| Value::Bool(false)),
            b'"' => self.parse_string().map(Value::String),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            c => Err(Error::at(format!("unexpected `{}`", c as char), self.pos)),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                c => {
                    return Err(Error::at(
                        format!("expected `,` or `]`, found `{}`", c as char),
                        self.pos,
                    ))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.descend()?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(entries));
                }
                c => {
                    return Err(Error::at(
                        format!("expected `,` or `}}`, found `{}`", c as char),
                        self.pos,
                    ))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c =
                *self.bytes.get(self.pos).ok_or_else(|| self.truncated("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.truncated("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            // Combine a UTF-16 surrogate pair if present.
                            let code = if (0xD800..0xDC00).contains(&unit) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(Error::at("lone surrogate", self.pos));
                                }
                            } else {
                                unit
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::at("invalid \\u escape", self.pos))?,
                            );
                        }
                        c => {
                            return Err(Error::at(
                                format!("invalid escape `\\{}`", c as char),
                                self.pos - 1,
                            ))
                        }
                    }
                }
                _ => {
                    // Copy the full UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::at("invalid UTF-8 in string", start))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.truncated("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| Error::at("invalid \\u escape", self.pos))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::at("invalid \\u escape", self.pos))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::at(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "42", "-7", "2.5", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(v.to_json(), text, "round-tripping {text}");
        }
    }

    #[test]
    fn nested_structures_parse() {
        let v: Value = from_str(r#" { "a": [1, 2.0, {"b": null}], "c": "x\n\"y\"" } "#).unwrap();
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
        assert_eq!(v["a"][1], 2.0);
        assert!(v["a"][2]["b"].is_null());
        assert_eq!(v["c"], "x\n\"y\"");
    }

    #[test]
    fn unicode_escapes_decode() {
        // A BMP escape, a surrogate pair, and raw multi-byte UTF-8.
        let v: Value = from_str("\"\\u00e9 \\ud83d\\ude00 é\"").unwrap();
        assert_eq!(v, "é 😀 é");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![
            ("n".to_string(), Value::Int(1)),
            ("list".to_string(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"n\": 1"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected_with_position() {
        for (text, at) in [("1 2", 2), ("{} x", 3), ("[1],", 3), ("true false", 5)] {
            let err = from_str::<Value>(text).unwrap_err();
            assert!(err.to_string().contains("trailing characters"), "{text}: {err}");
            assert_eq!(err.position(), Some(at), "{text}");
        }
    }

    #[test]
    fn truncated_bodies_report_end_of_input_position() {
        // Each prefix is a legal JSON prefix cut mid-document: the error
        // must be positioned at the input length (where bytes ran out).
        for text in ["{\"a\": 1", "[1, 2", "\"abc", "{\"key", "[{\"x\": ", "\"esc\\"] {
            let err = from_str::<Value>(text).unwrap_err();
            assert!(err.to_string().contains("unexpected end of input"), "{text}: {err}");
            assert_eq!(err.position(), Some(text.len()), "{text}: {err}");
        }
    }

    #[test]
    fn depth_cap_rejects_hostile_nesting() {
        // MAX_DEPTH levels parse; MAX_DEPTH + 1 is rejected, not recursed.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(from_str::<Value>(&ok).is_ok());
        let deep = format!("{}1{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        let err = from_str::<Value>(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting deeper"), "{err}");
        // Positioned just past the bracket that exceeded the budget.
        assert_eq!(err.position(), Some(MAX_DEPTH + 1));
        // Mixed arrays/objects share one depth budget.
        let mixed =
            "{\"a\":".repeat(40) + &"[".repeat(40) + "1" + &"]".repeat(40) + &"}".repeat(40);
        assert!(from_str::<Value>(&mixed).is_err());
    }

    #[test]
    fn depth_resets_between_siblings() {
        // Wide-but-shallow documents are fine: depth tracks nesting, not
        // element count.
        let wide = format!("[{}]", vec!["[1]"; 200].join(","));
        assert!(from_str::<Value>(&wide).is_ok());
    }

    #[test]
    fn invalid_numbers_are_positioned() {
        let err = from_str::<Value>("[1, -]").unwrap_err();
        assert_eq!(err.position(), Some(4), "{err}");
        let err = from_str::<Value>("[1e]").unwrap_err();
        assert_eq!(err.position(), Some(1), "{err}");
    }
}
