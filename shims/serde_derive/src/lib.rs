//! Workspace-local stand-in for the `serde_derive` proc-macro crate.
//!
//! With no crates.io access there is no `syn`/`quote`, so the macros here
//! parse the item declaration directly from the `proc_macro` token stream
//! and render the generated impl as source text. They support exactly the
//! shapes this workspace derives on:
//!
//! * structs with named fields (optionally with lifetime parameters),
//!   serialized as JSON objects in field-declaration order;
//! * enums whose variants are unit or newtype, serialized externally
//!   tagged like real serde: unit variants as strings, newtype variants as
//!   single-entry objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    /// Generic parameter list including angle brackets (e.g. `<'m>`), or
    /// empty.
    generics: String,
    kind: ItemKind,
}

enum ItemKind {
    /// Named fields of a struct, in declaration order.
    Struct(Vec<String>),
    /// Variants of an enum with a flag for a newtype payload.
    Enum(Vec<(String, bool)>),
}

/// Derive the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item).parse().expect("generated Serialize impl must parse")
}

/// Derive the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`) and visibility up to `struct`/`enum`.
    let is_enum = loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                let word = id.to_string();
                i += 1;
                if word == "struct" {
                    break false;
                }
                if word == "enum" {
                    break true;
                }
            }
            _ => i += 1,
        }
    };

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;

    let mut generics = String::new();
    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '<') {
        let mut depth = 0usize;
        loop {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                _ => {}
            }
            push_token(&mut generics, &tokens[i]);
            i += 1;
            if depth == 0 {
                break;
            }
        }
    }

    let body = loop {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break g.stream(),
            _ => i += 1,
        }
    };

    let kind = if is_enum {
        ItemKind::Enum(parse_variants(body))
    } else {
        ItemKind::Struct(parse_fields(body))
    };
    Item { name, generics, kind }
}

/// Append a token's text, spacing tokens apart except after a lifetime
/// tick (`' m` would not re-lex as a lifetime).
fn push_token(out: &mut String, token: &TokenTree) {
    out.push_str(&token.to_string());
    if !matches!(token, TokenTree::Punct(p) if p.as_char() == '\'') {
        out.push(' ');
    }
}

/// Field names of a struct body: for each comma-separated entry (tracking
/// `<...>` depth so generic argument commas don't split fields), the first
/// identifier after attributes and visibility.
fn parse_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut angle_depth = 0usize;
    let mut at_field_start = true;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' && at_field_start => {
                i += 2;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                at_field_start = true;
                i += 1;
                continue;
            }
            TokenTree::Ident(id) if at_field_start => {
                let word = id.to_string();
                if word != "pub" {
                    fields.push(word);
                    at_field_start = false;
                }
            }
            _ => {}
        }
        i += 1;
    }
    fields
}

/// Variants of an enum body: name plus whether a `( ... )` payload follows.
fn parse_variants(body: TokenStream) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants: Vec<(String, bool)> = Vec::new();
    let mut at_variant_start = true;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' && at_variant_start => {
                i += 2;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => at_variant_start = true,
            TokenTree::Ident(id) if at_variant_start => {
                variants.push((id.to_string(), false));
                at_variant_start = false;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                if let Some(last) = variants.last_mut() {
                    last.1 = true;
                }
            }
            _ => {}
        }
        i += 1;
    }
    variants
}

fn render_serialize(item: &Item) -> String {
    let Item { name, generics, kind } = item;
    let body = match kind {
        ItemKind::Struct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        ItemKind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, has_payload)| {
                    if *has_payload {
                        format!(
                            "{name}::{v}(__field0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Serialize::to_value(__field0))]),"
                        )
                    } else {
                        format!(
                            "{name}::{v} => \
                             ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl {generics} ::serde::Serialize for {name} {generics} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn render_deserialize(item: &Item) -> String {
    let Item { name, generics, kind } = item;
    let body = match kind {
        ItemKind::Struct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__v.get_field(\"{f}\"))?,"))
                .collect();
            format!("::std::result::Result::Ok(Self {{ {entries} }})")
        }
        ItemKind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, has_payload)| !has_payload)
                .map(|(v, _)| format!("\"{v}\" => return ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|(_, has_payload)| *has_payload)
                .map(|(v, _)| {
                    format!(
                        "\"{v}\" => return ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__val)?)),"
                    )
                })
                .collect();
            let unit_block = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                     match __s {{ {unit_arms} _ => {{}} }}\n\
                     }}"
                )
            };
            let payload_block = if payload_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::std::option::Option::Some((__k, __val)) = \
                     __v.as_single_entry() {{\n\
                     match __k {{ {payload_arms} _ => {{}} }}\n\
                     }}"
                )
            };
            format!(
                "{unit_block}\n{payload_block}\n\
                 ::std::result::Result::Err(::serde::DeError::custom(\
                 \"invalid value for enum {name}\"))"
            )
        }
    };
    format!(
        "impl {generics} ::serde::Deserialize for {name} {generics} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
