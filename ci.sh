#!/usr/bin/env bash
# The full local CI gate: everything a PR must pass.
set -euo pipefail
cd "$(dirname "$0")"

echo "── build ──────────────────────────────────────────"
cargo build --workspace --release

echo "── tests ──────────────────────────────────────────"
cargo test --workspace -q

echo "── benches compile ────────────────────────────────"
cargo bench --workspace --no-run

echo "── serve smoke ────────────────────────────────────"
cargo run --release -p mcmm-bench --bin serve -- --smoke

echo "── chaos smoke ────────────────────────────────────"
# Small fault storm: asserts zero lost jobs and ≥1 successful failover.
cargo run --release -p mcmm-bench --bin chaos -- --smoke

echo "── clippy (warnings are errors) ───────────────────"
cargo clippy --workspace --all-targets -- -D warnings

echo "── rustfmt ────────────────────────────────────────"
cargo fmt --all --check

echo "── analyzer report ────────────────────────────────"
cargo run --release -p mcmm-bench --bin analyze

echo "CI PASSED"
