#!/usr/bin/env bash
# The full local CI gate: everything a PR must pass.
set -euo pipefail
cd "$(dirname "$0")"

echo "── build ──────────────────────────────────────────"
cargo build --workspace --release

echo "── tests ──────────────────────────────────────────"
cargo test --workspace -q

echo "── benches compile ────────────────────────────────"
cargo bench --workspace --no-run

echo "── serve smoke ────────────────────────────────────"
cargo run --release -p mcmm-bench --bin serve -- --smoke

echo "── chaos smoke ────────────────────────────────────"
# Small fault storm: asserts zero lost jobs and ≥1 successful failover.
cargo run --release -p mcmm-bench --bin chaos -- --smoke

echo "── exec tier smoke ────────────────────────────────"
# Scalar vs vectorized execution tiers at O0 and O2: asserts the
# vectorized tier is at least as fast in aggregate, buffers are
# byte-identical between tiers AND optimization levels, O2 keeps the O0
# speedup (monotonicity, with a smoke-size noise allowance), the O2 runs
# actually went through the SSA middle-end, and repeat launches hit the
# lowered-program cache at every level.
cargo run --release -p mcmm-bench --bin exec -- --smoke

echo "── memory-hierarchy smoke ─────────────────────────"
# Six kernel shapes × three vendor devices through the traced memory
# hierarchy: asserts buffers are byte-identical with tracing on/off and
# under trace-driven timing, the streaming per-block replay is
# bit-identical to the buffered serial reference, coalesced copies fill
# ≥95% of their sectors while the 128B-strided gather does not, the
# per-vendor L1 hit rates genuinely diverge, and streaming tracing
# wall-clock overhead stays under budget (1.5×/3× full/smoke on ≥4
# cores; a 12× serial-replay backstop on narrower hosts).
cargo run --release -p mcmm-bench --bin memhier -- --smoke

echo "── http front-door smoke ──────────────────────────"
# Seeded duplicate-heavy workload through the gateway's real HTTP surface
# (loopback client pool), twice over one artifact directory: asserts every
# response byte-identical to serial execution, >0 coalesced submissions,
# a warm-restart hit rate strictly above cold with zero warm compiles,
# and /v1/stats reporting live memory rows (mem_traced_launches > 0 —
# default-on tracing really runs under load). Full runs additionally
# gate p99 against the pre-tracing baseline.
cargo run --release -p mcmm-bench --bin serve-http -- --smoke

echo "── adapter boilerplate guard ──────────────────────"
# The blanket FrontendAdapter replaced nine hand-written BabelStream
# adapters (1321 lines pre-refactor). Fail if per-model adapter
# boilerplate creeps back in.
adapter_lines=$(find crates/babelstream/src/adapters -name '*.rs' -print0 | xargs -0 cat | wc -l)
if [ "$adapter_lines" -ge 1321 ]; then
  echo "FAIL: crates/babelstream/src/adapters/ is ${adapter_lines} lines (>= pre-refactor 1321)."
  echo "      Route new backends through the Frontend trait instead of a bespoke adapter."
  exit 1
fi
echo "adapters/ is ${adapter_lines} lines (< 1321) — OK"

echo "── clippy (warnings are errors) ───────────────────"
cargo clippy --workspace --all-targets -- -D warnings

echo "── rustfmt ────────────────────────────────────────"
cargo fmt --all --check

echo "── analyzer report + portability differential ─────"
# --smoke additionally executes the portability corpus on all three
# simulated vendor devices under both execution tiers and fails on any
# static/dynamic disagreement (MCA006–MCA010 differential validation).
cargo run --release -p mcmm-bench --bin analyze -- --smoke

echo "CI PASSED"
