//! Migration paths: one CUDA code, three vendors — the §6 story executed.
//!
//! ```text
//! cargo run --example migration_paths
//! ```
//!
//! Takes a CUDA SAXPY host program, shows it failing on AMD, then walks
//! every translator route the paper describes: HIPIFY to AMD (and the
//! same HIP source back to NVIDIA), SYCLomatic to Intel (and everywhere),
//! chipStar compiling the *untranslated* CUDA for Intel, and GPUFORT for
//! the Fortran variant — including the constructs it refuses.

use many_models::gpu_sim::Device;
use many_models::toolchain::vendor_device_spec;
use many_models::translate::ast::{cuda_fortran_program_with_async, cuda_saxpy_program};
use many_models::translate::exec::run_program;
use many_models::translate::{acc2mp, chipstar, gpufort, hipify, syclomatic};
use mcmm_core::taxonomy::Vendor;

fn main() {
    let n = 4096;
    let cuda = cuda_saxpy_program(n, 2.0);
    let check = |name: &str, y: &[f32]| {
        let ok = y.iter().enumerate().all(|(i, &v)| v == 2.0 * i as f32 + 1.0);
        println!("  {name}: {} ({} elements)", if ok { "correct" } else { "WRONG" }, y.len());
        assert!(ok, "{name} produced wrong results");
    };

    println!("── The starting point: CUDA C++ ──");
    let nvidia = Device::new(vendor_device_spec(Vendor::Nvidia));
    let out = run_program(&cuda, &nvidia).expect("CUDA runs on NVIDIA");
    check("CUDA on NVIDIA", &out["y"]);

    let amd = Device::new(vendor_device_spec(Vendor::Amd));
    match run_program(&cuda, &amd) {
        Err(e) => println!("  CUDA on AMD: refused as expected — {e}"),
        Ok(_) => panic!("CUDA must not run on AMD directly"),
    }

    println!("\n── Route 1: HIPIFY (description 18) ──");
    let hip = hipify::hipify(&cuda).expect("hipify");
    println!("  APIs after translation: {:?}", &hip.api_names()[..3]);
    check("HIP on AMD", &run_program(&hip, &amd).expect("hip on amd")["y"]);
    // §6: "NVIDIA and AMD GPUs can be used from the same source code."
    check("same HIP source on NVIDIA", &run_program(&hip, &nvidia).expect("hip on nvidia")["y"]);

    println!("\n── Route 2: SYCLomatic (description 31) ──");
    let migration = syclomatic::syclomatic(&cuda).expect("syclomatic");
    for w in &migration.dpct_warnings {
        println!("  warning: {w}");
    }
    let intel = Device::new(vendor_device_spec(Vendor::Intel));
    check("SYCL on Intel", &run_program(&migration.program, &intel).expect("sycl on intel")["y"]);
    for vendor in [Vendor::Nvidia, Vendor::Amd] {
        let dev = Device::new(vendor_device_spec(vendor));
        check(
            &format!("same SYCL source on {vendor}"),
            &run_program(&migration.program, &dev).expect("sycl everywhere")["y"],
        );
    }

    println!("\n── Route 3: chipStar — untranslated CUDA on Intel (description 31) ──");
    let run = chipstar::run_on_intel(&cuda, &intel).expect("chipstar");
    check("CUDA via chipStar on Intel", &run.outputs["y"]);
    println!("  (research-grade route: efficiency factor {:.2})", run.efficiency);

    println!("\n── Route 4: GPUFORT for the Fortran variant (description 19) ──");
    let fortran = cuda_fortran_program_with_async(n);
    match gpufort::gpufort(&fortran, gpufort::GpufortMode::OpenMp) {
        Err(e) => println!("  with async copies: refused — {e}"),
        Ok(_) => panic!("GPUFORT must refuse the async construct"),
    }
    let mut simple = fortran.clone();
    simple.steps.retain(|s| !s.api.contains("Async"));
    let omp = gpufort::gpufort(&simple, gpufort::GpufortMode::OpenMp).expect("gpufort");
    check("Fortran→OpenMP on AMD", &run_program(&omp, &amd).expect("gpufort output runs")["y"]);

    println!("\n── Route 5: OpenACC → OpenMP migration (description 36) ──");
    let acc = many_models::translate::ast::openacc_scale_program(n, 3.0);
    match run_program(&acc, &intel) {
        Err(e) => println!("  OpenACC on Intel: refused as expected — {e}"),
        Ok(_) => panic!("OpenACC must not run on Intel"),
    }
    let omp2 = acc2mp::acc_to_omp(&acc).expect("acc2mp");
    let out = run_program(&omp2, &intel).expect("migrated openmp on intel");
    assert!(out["x"].iter().enumerate().all(|(i, &v)| v == 3.0 * i as f32));
    println!("  migrated OpenMP on Intel: correct ({} elements)", out["x"].len());

    println!("\nAll migration paths behaved exactly as the paper describes.");
}
