//! Portability audit: the paper's introductory scenario as a tool.
//!
//! ```text
//! cargo run --example portability_audit
//! ```
//!
//! "It is hard for scientific programmers to navigate this abundance of
//! choices and limits" (§1). Given an application's constraints — its
//! language, the platforms its HPC centre operates, its tolerance for
//! unmaintained toolchains — the audit lists the viable combinations and
//! flags lock-in risks.

use many_models::core::prelude::*;
use many_models::core::query::advise;

struct Application {
    name: &'static str,
    language: Language,
    /// Target machines (e.g. applying for Frontier + JUPITER time).
    platforms: Vec<Vendor>,
    /// Minimum acceptable support tier.
    bar: Support,
}

fn audit(matrix: &CompatMatrix, app: &Application) {
    println!(
        "══ {} ({}; platforms {:?}; bar: {}) ══",
        app.name,
        app.language,
        app.platforms.iter().map(|v| v.name()).collect::<Vec<_>>(),
        app.bar
    );

    // Which models clear the bar on *every* requested platform?
    let mut portable = Vec::new();
    for model in Model::ALL {
        if !model.languages().contains(&app.language) {
            continue;
        }
        let everywhere = app.platforms.iter().all(|&v| {
            matrix
                .cell(v, model, app.language)
                .map(|c| c.best_support() <= app.bar && c.viable_routes().next().is_some())
                .unwrap_or(false)
        });
        if everywhere {
            portable.push(model);
        }
    }
    if portable.is_empty() {
        println!("  NO model clears the bar on every platform — consider per-platform");
        println!("  backends or a translator pipeline (see the migration_paths example).");
    } else {
        for model in portable {
            println!("  ✓ {model} works on all requested platforms:");
            for &v in &app.platforms {
                let cell = matrix.cell(v, model, app.language).unwrap();
                let best = cell.viable_routes().next().unwrap();
                println!("      {v}: {} via {}", cell.support, best.toolchain);
            }
        }
    }

    // Best single option per platform, for the per-platform-backend route.
    println!("  per-platform best choices:");
    for &v in &app.platforms {
        let q = Query::new().vendors([v]).languages([app.language]).viable_route();
        let advice = advise(matrix, &q);
        if let Some(best) = advice.best() {
            println!("      {v}: {} ({})", best.id.model, best.support);
        }
    }
    println!();
}

fn main() {
    let matrix = CompatMatrix::paper();

    // A C++ code applying for time on all three exascale-class platforms.
    audit(
        &matrix,
        &Application {
            name: "C++ plasma code, wants one portable backend",
            language: Language::Cpp,
            platforms: vec![Vendor::Amd, Vendor::Intel, Vendor::Nvidia],
            bar: Support::NonVendorGood,
        },
    );

    // The Fortran climate code of the paper's motivation.
    audit(
        &matrix,
        &Application {
            name: "Fortran climate model (Frontier + Aurora + JUPITER)",
            language: Language::Fortran,
            platforms: vec![Vendor::Amd, Vendor::Intel, Vendor::Nvidia],
            bar: Support::Some,
        },
    );

    // A Python analysis pipeline that only targets the NVIDIA partition.
    audit(
        &matrix,
        &Application {
            name: "Python analysis pipeline (NVIDIA partition only)",
            language: Language::Python,
            platforms: vec![Vendor::Nvidia],
            bar: Support::NonVendorGood,
        },
    );

    // A CUDA-locked code wondering about an AMD procurement.
    audit(
        &matrix,
        &Application {
            name: "legacy CUDA C++ code eyeing an AMD machine",
            language: Language::Cpp,
            platforms: vec![Vendor::Amd],
            bar: Support::IndirectGood,
        },
    );
}
