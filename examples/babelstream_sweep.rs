//! BabelStream across all nine models and three vendors — the performance
//! overview the paper defers to future work (§5), as a runnable example.
//!
//! ```text
//! cargo run --release --example babelstream_sweep
//! ```
//!
//! All numbers are *modeled* GB/s (analytic timing model over public-spec
//! device attributes). Matrix holes show up as `--`: CUDA runs only on
//! NVIDIA, HIP skips Intel, OpenACC skips Intel.

use many_models::babelstream::report::{kernel_series, sweep_table};
use many_models::babelstream::runner::{sweep, unsupported_count, verified_count};

fn main() {
    let n = 1 << 15;
    let iters = 2;
    eprintln!("sweeping 9 models × 3 vendors, n = {n}, iters = {iters}…");
    let entries = sweep(n, iters);

    println!("{}", sweep_table(&entries));
    println!(
        "verified: {}/27 cells; matrix holes: {}",
        verified_count(&entries),
        unsupported_count(&entries)
    );
    println!();
    println!("{}", kernel_series(&entries, "SYCL"));
    println!("{}", kernel_series(&entries, "OpenMP"));

    // A few shape checks a reviewer would eyeball:
    let triad = |model: &str, vendor: mcmm_core::taxonomy::Vendor| {
        entries
            .iter()
            .find(|e| e.model == model && e.vendor == vendor)
            .and_then(|e| e.outcome.as_ref().ok())
            .map(|r| r.triad_gbps())
    };
    use mcmm_core::taxonomy::Vendor::*;
    if let (Some(cuda), Some(hip)) = (triad("CUDA", Nvidia), triad("HIP", Nvidia)) {
        println!(
            "shape check: CUDA {cuda:.0} GB/s ≥ HIP-on-NVIDIA {hip:.0} GB/s (translated route)"
        );
        assert!(cuda >= hip);
    }
    if let (Some(nv), Some(py)) = (triad("SYCL", Nvidia), triad("etc (Python)", Nvidia)) {
        println!("shape check: SYCL {nv:.0} GB/s ≥ Python {py:.0} GB/s (temporaries)");
        assert!(nv >= py);
    }
    println!("per-kernel Dot rates trail Copy (atomic reduction cost) — see tables above.");
}
