//! Portable physics: one simulation, three models — the paper's §5 cites
//! Lin et al. comparing a physics simulation between Kokkos, SYCL, and
//! OpenMP; this example reruns that comparison shape on the simulator.
//!
//! ```text
//! cargo run --release --example portable_physics
//! ```
//!
//! The workload is an explicit 1-D heat-diffusion stencil
//! `u'[i] = u[i] + α (u[i-1] - 2 u[i] + u[i+1])` stepped `STEPS` times
//! with ping-pong buffers. Each model implements it through its own API
//! on its best-supported device; results must agree bit-for-bit with the
//! host reference, and the modeled runtimes show the per-route overheads.

use many_models::core::prelude::*;
use many_models::gpu_sim::ir::{KernelBuilder, Reg, Space, Type};
use many_models::gpu_sim::{Device, DeviceSpec};
use many_models::toolchain::vendor_device_spec;

const N: usize = 4096;
const STEPS: usize = 20;
const ALPHA: f64 = 0.1;

/// Host reference.
fn host_reference(mut u: Vec<f64>) -> Vec<f64> {
    let mut next = u.clone();
    for _ in 0..STEPS {
        for i in 0..N {
            let left = if i == 0 { u[i] } else { u[i - 1] };
            let right = if i == N - 1 { u[i] } else { u[i + 1] };
            // Grouped exactly as the device kernel computes it —
            // (left + right) - 2u — so the comparison can be bit-exact.
            next[i] = u[i] + ALPHA * ((left + right) - 2.0 * u[i]);
        }
        std::mem::swap(&mut u, &mut next);
    }
    u
}

fn initial() -> Vec<f64> {
    // A hot spot in the middle.
    (0..N).map(|i| if (N / 2 - 32..N / 2 + 32).contains(&i) { 100.0 } else { 0.0 }).collect()
}

/// Build the stencil body (shared across frontends — the IR is the common
/// currency, like real portable codes sharing the math).
fn stencil_body(b: &mut KernelBuilder, i: Reg, src: Reg, dst: Reg) {
    use many_models::gpu_sim::ir::{BinOp, CmpOp, Value};
    let u = b.ld_elem(Space::Global, Type::F64, src, i);
    // left = i == 0 ? u : src[i-1]
    let is_first = b.cmp(CmpOp::Eq, i, Value::I32(0));
    let im1 = b.bin(BinOp::Sub, i, Value::I32(1));
    let zero = b.imm(Value::I32(0));
    let safe_im1 = b.sel(is_first, zero, im1);
    let left_raw = b.ld_elem(Space::Global, Type::F64, src, safe_im1);
    let left = b.sel(is_first, u, left_raw);
    // right = i == N-1 ? u : src[i+1]
    let is_last = b.cmp(CmpOp::Eq, i, Value::I32((N - 1) as i32));
    let ip1 = b.bin(BinOp::Add, i, Value::I32(1));
    let safe_ip1 = b.sel(is_last, i, ip1);
    let right_raw = b.ld_elem(Space::Global, Type::F64, src, safe_ip1);
    let right = b.sel(is_last, u, right_raw);
    // u + alpha * (left - 2u + right)
    let two_u = b.bin(BinOp::Mul, u, Value::F64(2.0));
    let lr = b.bin(BinOp::Add, left, right);
    let lap = b.bin(BinOp::Sub, lr, two_u);
    let scaled = b.bin(BinOp::Mul, lap, Value::F64(ALPHA));
    let out = b.bin(BinOp::Add, u, scaled);
    b.st_elem(Space::Global, dst, i, out);
}

fn main() {
    let reference = host_reference(initial());
    println!("1-D heat diffusion, n = {N}, {STEPS} steps, α = {ALPHA}\n");
    println!("{:<28} {:>10} {:>14} {:>10}", "model · device", "steps", "modeled µs", "match");

    // ── Kokkos on AMD (its strongest non-NVIDIA platform) ──────────────
    {
        use many_models::kokkos::ExecSpace;
        let device = Device::new(DeviceSpec::amd_mi250x());
        let dev = device.clone();
        let space = ExecSpace::new(device).expect("kokkos");
        let a = space.view_from_host("u", &initial()).expect("view");
        let b_view = space.view_from_host("u_next", &vec![0.0; N]).expect("view");
        let t0 = dev.modeled_clock().seconds();
        let mut views = [&a, &b_view];
        for _ in 0..STEPS {
            space
                .parallel_for(N, &[views[0], views[1]], |b, i, p| stencil_body(b, i, p[0], p[1]))
                .expect("step");
            views.swap(0, 1);
        }
        let dt = (dev.modeled_clock().seconds() - t0) * 1e6;
        let out = space.deep_copy_to_host(views[0]).expect("copy back");
        report("Kokkos · MI250X", dt, &out, &reference);
    }

    // ── SYCL on Intel (its native platform) ────────────────────────────
    {
        use many_models::sycl::Queue;
        let device = Device::new(DeviceSpec::intel_pvc());
        let dev = device.clone();
        let queue = Queue::new(device).expect("sycl");
        let a = queue.malloc_device::<f64>(N).expect("usm");
        let b_buf = queue.malloc_device::<f64>(N).expect("usm");
        queue.memcpy_to_device(a, &initial()).expect("h2d");
        let t0 = dev.modeled_clock().seconds();
        let mut bufs = [a, b_buf];
        for _ in 0..STEPS {
            queue
                .parallel_for_usm(N, &bufs, |b, i, p| stencil_body(b, i, p[0], p[1]))
                .expect("step");
            bufs.swap(0, 1);
        }
        let dt = (dev.modeled_clock().seconds() - t0) * 1e6;
        let out = queue.memcpy_from_device::<f64>(bufs[0], N).expect("d2h");
        report("SYCL · PVC Max", dt, &out, &reference);
    }

    // ── OpenMP on all three (the §6 universal model) ────────────────────
    for vendor in Vendor::ALL {
        use many_models::openmp::OmpDevice;
        let device = Device::new(vendor_device_spec(vendor));
        let dev = device.clone();
        let omp = OmpDevice::new(device).expect("openmp");
        let mut region = omp.target_data();
        let a = region.map_to(&initial()).expect("map");
        let b_idx = region.map_alloc(N).expect("map");
        let t0 = dev.modeled_clock().seconds();
        let mut idx = [a, b_idx];
        for _ in 0..STEPS {
            let (src, dst) = (idx[0], idx[1]);
            region.parallel_for(N, |b, i, p| stencil_body(b, i, p[src], p[dst])).expect("step");
            idx.swap(0, 1);
        }
        let dt = (dev.modeled_clock().seconds() - t0) * 1e6;
        let out = region.update_from(idx[0]).expect("read back");
        region.close();
        report(&format!("OpenMP · {vendor}"), dt, &out, &reference);
    }

    println!("\nAll models agree with the host reference bit-for-bit — the");
    println!("portability story of Lin et al. [52], reproduced on the simulator.");
}

fn report(label: &str, modeled_us: f64, out: &[f64], reference: &[f64]) {
    let exact = out.iter().zip(reference).all(|(a, b)| a.to_bits() == b.to_bits());
    println!(
        "{label:<28} {STEPS:>10} {modeled_us:>14.1} {:>10}",
        if exact { "exact" } else { "DIFFERS" }
    );
    assert!(exact, "{label} diverged from the host reference");
}
