//! Quickstart: the compatibility matrix in five minutes.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the paper's Figure 1, looks up a few cells, asks the §6-style
//! questions, and runs one SAXPY end-to-end on a simulated A100.

use many_models::core::prelude::*;
use many_models::core::{render, stats};
use many_models::gpu_sim::prelude::*;

fn main() {
    // ── 1. The matrix ──────────────────────────────────────────────────
    let matrix = CompatMatrix::paper();
    println!("{}", render::ascii::render(&matrix));

    // ── 2. Point lookups ───────────────────────────────────────────────
    for (v, m, l) in [
        (Vendor::Nvidia, Model::Cuda, Language::Cpp),
        (Vendor::Amd, Model::Standard, Language::Cpp),
        (Vendor::Intel, Model::OpenAcc, Language::Fortran),
    ] {
        let cell = matrix.cell(v, m, l).expect("cell exists");
        println!("{v} · {m} · {l}: {}", cell.support);
        println!("  why: {}", cell.rationale);
        for route in cell.viable_routes() {
            println!("  viable route: {route}");
        }
    }

    // ── 3. §6-style questions ──────────────────────────────────────────
    println!();
    println!("most comprehensive vendor: {}", stats::most_comprehensive_vendor(&matrix));
    let fortran_everywhere = stats::models_vendor_supported_everywhere(&matrix, Language::Fortran);
    println!(
        "vendor-supported Fortran models on all platforms: {:?}",
        fortran_everywhere.iter().map(|m| m.name()).collect::<Vec<_>>()
    );

    // ── 4. One kernel on the simulated substrate ───────────────────────
    let mut k = KernelBuilder::new("saxpy");
    let a = k.param(Type::F32);
    let x = k.param(Type::I64);
    let y = k.param(Type::I64);
    let n = k.param(Type::I32);
    let i = k.global_thread_id_x();
    let ok = k.cmp(CmpOp::Lt, i, n);
    k.if_(ok, |k| {
        let xi = k.ld_elem(Space::Global, Type::F32, x, i);
        let yi = k.ld_elem(Space::Global, Type::F32, y, i);
        let ax = k.bin(BinOp::Mul, a, xi);
        let s = k.bin(BinOp::Add, ax, yi);
        k.st_elem(Space::Global, y, i, s);
    });
    let kernel = k.finish();

    let device = Device::new(DeviceSpec::nvidia_a100());
    let module = assemble(&kernel, IsaKind::PtxLike).expect("assemble");
    let n_elems = 1 << 16;
    let dx = device.alloc_copy_f32(&vec![1.0; n_elems]).expect("alloc x");
    let dy = device.alloc_copy_f32(&vec![2.0; n_elems]).expect("alloc y");
    let report = device
        .launch(
            &module,
            LaunchConfig::linear(n_elems as u64, 256),
            &[
                KernelArg::F32(3.0),
                KernelArg::Ptr(dx),
                KernelArg::Ptr(dy),
                KernelArg::I32(n_elems as i32),
            ],
        )
        .expect("launch");
    let out = device.read_f32(dy, n_elems).expect("read back");
    assert!(out.iter().all(|&v| v == 5.0));
    println!();
    println!(
        "SAXPY on {}: {} blocks, {:.1} µs modeled, {:.0} GB/s effective",
        device.spec().name,
        report.stats.blocks,
        report.time.micros(),
        report.time.bandwidth_gbps(report.stats.bytes_total())
    );
}
